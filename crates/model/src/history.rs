//! One patient's validated, time-ordered history.
//!
//! Since the columnar refactor a history no longer owns a `Vec<Entry>`:
//! it views a contiguous row span of a (possibly shared) [`EventStore`]
//! arena. Reads go through the zero-copy [`Entries`]/[`EntryRef`] views;
//! mutation detaches the history onto its own store (sharing the code
//! interner, so [`crate::CodeId`]s stay compatible) when the arena is
//! shared with other histories.

use crate::store::{Entries, EntryRef, EventStore};
use crate::{Entry, PatientId};
use pastas_time::{Date, DateTime, Duration};
use std::sync::Arc;

/// Patient sex as registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Female.
    Female,
    /// Male.
    Male,
}

/// Demographic facts about a patient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patient {
    /// The database identifier.
    pub id: PatientId,
    /// Date of birth — the validation boundary: entries before it are
    /// "clearly invalid" and dropped (§IV).
    pub birth_date: Date,
    /// Registered sex.
    pub sex: Sex,
}

/// What happened while inserting entries into a history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Entries accepted.
    pub accepted: usize,
    /// Entries dropped because they predate the patient's birth.
    pub dropped_pre_birth: usize,
}

impl ValidationReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: &ValidationReport) {
        self.accepted += other.accepted;
        self.dropped_pre_birth += other.dropped_pre_birth;
    }
}

/// One patient's history: demographics plus a row span of an
/// [`EventStore`], kept sorted by start time (ties broken by end time,
/// keeping interleaved sources stable).
#[derive(Debug, Clone)]
pub struct History {
    patient: Patient,
    store: Arc<EventStore>,
    lo: u32,
    hi: u32,
}

impl History {
    /// An empty history for `patient` (its own store until it joins a
    /// shared arena via [`crate::CollectionBuilder`]).
    pub fn new(patient: Patient) -> History {
        History { patient, store: Arc::new(EventStore::new()), lo: 0, hi: 0 }
    }

    /// A history viewing rows `[lo, hi)` of a shared arena.
    pub(crate) fn from_span(
        patient: Patient,
        store: Arc<EventStore>,
        lo: u32,
        hi: u32,
    ) -> History {
        History { patient, store, lo, hi }
    }

    /// The patient's demographics.
    pub fn patient(&self) -> &Patient {
        &self.patient
    }

    /// The patient id.
    pub fn id(&self) -> PatientId {
        self.patient.id
    }

    /// The backing arena (shared when this history came out of a
    /// [`crate::CollectionBuilder`] — the query layer keys its per-store
    /// code-id translations on this pointer).
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the row span lies inside the arena and its entries
    /// are sorted by `(start, end)`. Does *not* re-validate the backing
    /// store — arenas are shared, so callers validate each distinct store
    /// once (see `Snapshot::debug_validate` in `pastas-serve`).
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        assert!(
            self.lo <= self.hi,
            "history {}: span [{}, {}) is reversed",
            self.patient.id,
            self.lo,
            self.hi
        );
        assert!(
            self.hi <= self.store.len_u32(),
            "history {}: span end {} outside arena (len {})",
            self.patient.id,
            self.hi,
            self.store.len()
        );
        let entries = self.entries();
        for i in 1..entries.len() {
            let (a, b) = (entries.get(i - 1), entries.get(i));
            assert!(
                (a.start(), a.end()) <= (b.start(), b.end()),
                "history {}: rows {} and {} out of (start, end) order",
                self.patient.id,
                i - 1,
                i
            );
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}

    /// Insert one entry, enforcing the §IV validation rule: entries dated
    /// before the patient's birth are ignored. Returns `true` if accepted.
    pub fn insert(&mut self, entry: Entry) -> bool {
        if entry.start().date() < self.patient.birth_date {
            return false;
        }
        let key = (entry.start(), entry.end());
        let at = self.store.partition_point_le(self.lo, self.hi, key);
        // Fast path: sole owner of a store we span entirely — splice the
        // columns in place.
        let whole = self.lo == 0 && self.hi as usize == self.store.len();
        if whole {
            if let Some(store) = Arc::get_mut(&mut self.store) {
                store.insert_at(at as usize, &entry);
                self.hi += 1;
                return true;
            }
        }
        // Detach: rebuild a private store for this history, sharing the
        // interner so code ids stay compatible with the old arena.
        let mut entries = self.entries().to_vec();
        entries.insert((at - self.lo) as usize, entry);
        let mut store = EventStore::with_interner(Arc::clone(self.store.interner_arc()));
        for e in &entries {
            store.push(e);
        }
        self.lo = 0;
        self.hi = store.len_u32();
        self.store = Arc::new(store);
        true
    }

    /// Insert many entries; returns a [`ValidationReport`]. One store
    /// rebuild regardless of the batch size (the stable sort by
    /// `(start, end)` reproduces the order repeated [`Self::insert`]
    /// calls would have produced).
    pub fn insert_all<I: IntoIterator<Item = Entry>>(&mut self, entries: I) -> ValidationReport {
        let mut report = ValidationReport::default();
        let mut accepted: Vec<Entry> = Vec::new();
        for e in entries {
            if e.start().date() < self.patient.birth_date {
                report.dropped_pre_birth += 1;
            } else {
                report.accepted += 1;
                accepted.push(e);
            }
        }
        if accepted.is_empty() {
            return report;
        }
        let mut all = self.entries().to_vec();
        all.extend(accepted);
        all.sort_by_key(|e| (e.start(), e.end()));
        let mut store = EventStore::with_interner(Arc::clone(self.store.interner_arc()));
        for e in &all {
            store.push(e);
        }
        self.lo = 0;
        self.hi = store.len_u32();
        self.store = Arc::new(store);
        report
    }

    /// The entries, sorted by (start, end) — a zero-copy view over the
    /// columnar store.
    pub fn entries(&self) -> Entries<'_> {
        Entries::new(&self.store, self.lo, self.hi)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// True if the history has no entries.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// First entry start, if any.
    pub fn first_time(&self) -> Option<DateTime> {
        self.entries().first().map(|e| e.start())
    }

    /// Latest entry end, if any (an early long interval may end after later
    /// entries start, so this scans — one contiguous column read).
    pub fn last_time(&self) -> Option<DateTime> {
        self.entries().iter().map(|e| e.end()).max()
    }

    /// The observed span of the history.
    pub fn span(&self) -> Option<Duration> {
        Some(self.last_time()? - self.first_time()?)
    }

    /// Entries overlapping the closed window `[from, to]`, in order.
    pub fn entries_in(
        &self,
        from: DateTime,
        to: DateTime,
    ) -> impl Iterator<Item = EntryRef<'_>> {
        self.entries().iter().filter(move |e| e.overlaps(from, to))
    }

    /// The patient's age in whole years at `date`.
    pub fn age_at(&self, date: Date) -> i32 {
        date.months_between(self.patient.birth_date).div_euclid(12)
    }

    /// The first entry accepted by `pred`, in time order. This is the
    /// primitive behind alignment ("the first occurrence of the diabetes
    /// code, T90").
    pub fn first_matching<F: Fn(EntryRef<'_>) -> bool>(&self, pred: F) -> Option<EntryRef<'_>> {
        self.entries().iter().find(|e| pred(*e))
    }

    /// The diagnosis code sequence in time order — NSEPter's input ("the
    /// only information from the EHR that was utilized, was the diagnosis
    /// codes for each patient"). Borrowed from the interner; no clones.
    pub fn diagnosis_sequence(&self) -> Vec<&pastas_codes::Code> {
        self.entries()
            .iter()
            .filter_map(|e| match e.payload() {
                crate::PayloadRef::Diagnosis(c) => Some(c),
                _ => None,
            })
            .collect()
    }
}

impl PartialEq for History {
    fn eq(&self, other: &History) -> bool {
        self.patient == other.patient
            && self.len() == other.len()
            && self.entries().iter().zip(other.entries()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpisodeKind, Payload, SourceKind};
    use pastas_codes::Code;

    fn patient() -> Patient {
        Patient {
            id: PatientId(42),
            birth_date: Date::new(1950, 6, 15).unwrap(),
            sex: Sex::Female,
        }
    }

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn diag(y: i32, m: u32, d: u32, code: &str) -> Entry {
        Entry::event(t(y, m, d), Payload::Diagnosis(Code::icpc(code)), SourceKind::PrimaryCare)
    }

    #[test]
    fn entries_stay_sorted_regardless_of_insert_order() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 6, 1, "K74"));
        h.insert(diag(2014, 1, 1, "T90"));
        h.insert(diag(2016, 2, 2, "R95"));
        h.insert(diag(2014, 6, 1, "A01"));
        let starts: Vec<_> = h.entries().iter().map(|e| e.start()).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn pre_birth_entries_are_dropped() {
        let mut h = History::new(patient());
        let report = h.insert_all(vec![
            diag(1949, 1, 1, "A01"), // before 1950-06-15 birth
            diag(1950, 6, 15, "A01"), // birth day itself is valid
            diag(2000, 1, 1, "T90"),
        ]);
        assert_eq!(report, ValidationReport { accepted: 2, dropped_pre_birth: 1 });
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn span_accounts_for_long_intervals() {
        let mut h = History::new(patient());
        h.insert(Entry::interval(
            t(2015, 1, 1),
            t(2015, 12, 31),
            Payload::Episode(EpisodeKind::HomeCare),
            SourceKind::Municipal,
        ));
        h.insert(diag(2015, 3, 1, "T90"));
        assert_eq!(h.first_time(), Some(t(2015, 1, 1)));
        assert_eq!(h.last_time(), Some(t(2015, 12, 31))); // not the March event
        assert_eq!(h.span(), Some(Duration::days(364)));
    }

    #[test]
    fn entries_in_window() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 1, 1, "A01"));
        h.insert(diag(2015, 6, 1, "T90"));
        h.insert(diag(2015, 12, 1, "K74"));
        let hits: Vec<_> = h.entries_in(t(2015, 5, 1), t(2015, 7, 1)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].code().unwrap().value, "T90");
    }

    #[test]
    fn age_calculation() {
        let h = History::new(patient()); // born 1950-06-15
        assert_eq!(h.age_at(Date::new(2015, 6, 14).unwrap()), 64);
        assert_eq!(h.age_at(Date::new(2015, 6, 15).unwrap()), 65);
        assert_eq!(h.age_at(Date::new(1950, 6, 15).unwrap()), 0);
        assert_eq!(h.age_at(Date::new(1949, 1, 1).unwrap()), -2); // pre-birth dates
    }

    #[test]
    fn first_matching_finds_alignment_anchor() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 1, 1, "A01"));
        h.insert(diag(2015, 6, 1, "T90"));
        h.insert(diag(2016, 1, 1, "T90"));
        let anchor = h
            .first_matching(|e| e.code().is_some_and(|c| c.value == "T90"))
            .expect("anchor");
        assert_eq!(anchor.start(), t(2015, 6, 1));
    }

    #[test]
    fn diagnosis_sequence_skips_other_payloads() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 1, 1, "A01"));
        h.insert(Entry::event(
            t(2015, 2, 1),
            Payload::Medication(Code::atc("C07AB02")),
            SourceKind::Prescription,
        ));
        h.insert(diag(2015, 3, 1, "T90"));
        let seq: Vec<_> = h.diagnosis_sequence().iter().map(|c| c.value.clone()).collect();
        assert_eq!(seq, vec!["A01", "T90"]);
    }

    #[test]
    fn empty_history_edge_cases() {
        let h = History::new(patient());
        assert!(h.is_empty());
        assert_eq!(h.first_time(), None);
        assert_eq!(h.last_time(), None);
        assert_eq!(h.span(), None);
    }

    #[test]
    fn insert_detaches_a_shared_span_without_disturbing_it() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 1, 1, "A01"));
        let shared = h.clone(); // both now point at the same store
        h.insert(diag(2015, 6, 1, "T90"));
        assert_eq!(h.len(), 2);
        assert_eq!(shared.len(), 1, "the shared clone is untouched");
        assert!(!Arc::ptr_eq(h.store(), shared.store()), "detached onto a new store");
        assert!(
            Arc::ptr_eq(h.store().interner_arc(), shared.store().interner_arc())
                || h.store().interner().len() >= shared.store().interner().len(),
            "interner stays compatible"
        );
    }

    #[test]
    fn equal_keys_preserve_insertion_order() {
        let mut h = History::new(patient());
        h.insert(diag(2015, 1, 1, "A01"));
        h.insert(diag(2015, 1, 1, "T90"));
        h.insert(diag(2015, 1, 1, "K74"));
        let codes: Vec<_> =
            h.entries().iter().map(|e| e.code().unwrap().value.clone()).collect();
        assert_eq!(codes, vec!["A01", "T90", "K74"], "ties append after existing");
    }
}
