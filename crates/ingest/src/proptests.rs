//! Robustness properties: the aggregation pipeline is total over arbitrary
//! byte soup, and its accounting always balances.

use crate::aggregate::{aggregate, SourceTexts};
use crate::csv::split_line;
use crate::json::Json;
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Lines of printable junk mixed with plausible field separators.
    proptest::collection::vec("[ -~;|,\tæøå]{0,40}", 0..12)
        .prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregation never panics on garbage and its report balances.
    #[test]
    fn aggregate_is_total_over_garbage(
        persons in arb_text(),
        claims in arb_text(),
        hospital in arb_text(),
        municipal in arb_text(),
        prescriptions in arb_text(),
    ) {
        let (collection, report) = aggregate(SourceTexts {
            persons: &persons,
            claims: &claims,
            hospital: &hospital,
            municipal: &municipal,
            prescriptions: &prescriptions,
        });
        // Accounting invariants.
        prop_assert!(report.parse_errors + report.unlinked_rows <= report.rows_read);
        prop_assert!(collection.stats().entries == report.entries_loaded);
        let y = report.yield_fraction();
        prop_assert!((0.0..=1.0).contains(&y) || report.rows_read == 0);
    }

    /// The CSV splitter is the left inverse of our own field quoting.
    #[test]
    fn csv_split_inverts_quoting(fields in proptest::collection::vec("[ -~]{0,12}", 1..6)) {
        let quoted: Vec<String> = fields
            .iter()
            .map(|f| {
                if f.contains(';') || f.contains('"') {
                    format!("\"{}\"", f.replace('"', "\"\""))
                } else {
                    f.clone()
                }
            })
            .collect();
        let line = quoted.join(";");
        let got = split_line(&line, ';');
        prop_assert_eq!(got, fields);
    }

    /// The JSON parser is total (never panics) over arbitrary input.
    #[test]
    fn json_parse_is_total(input in "\\PC{0,60}") {
        let _ = Json::parse(&input);
    }

    /// Parsed JSON documents re-parse from their own structure (sanity on
    /// simple generated objects).
    #[test]
    fn json_numbers_round_trip(n in -1.0e12f64..1.0e12) {
        let text = format!("{{\"v\": {n}}}");
        let v = Json::parse(&text).unwrap();
        let got = v.get("v").and_then(Json::as_f64).unwrap();
        prop_assert!((got - n).abs() <= n.abs() * 1e-12 + 1e-9);
    }
}
