//! One adapter per source file.
//!
//! Adapters are *tolerant*: a malformed row becomes a [`ParseIssue`], never
//! a panic or a failed import — registry extracts at 168k-patient scale
//! always contain junk, and the workbench must load what it can while
//! accounting for what it could not.

use crate::csv;
use pastas_codes::Code;
use pastas_model::{EpisodeKind, Sex};
use pastas_time::{Date, DateTime};

/// A row that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIssue {
    /// 1-based line number in the source file.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

/// Parsed person-register row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonRow {
    /// Canonical numeric id.
    pub id: u64,
    /// Date of birth.
    pub birth_date: Date,
    /// Registered sex.
    pub sex: Sex,
}

/// Parsed claims row (GP / out-of-hours / specialist).
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimRow {
    /// Raw patient identifier (NIN scheme).
    pub raw_patient: String,
    /// Contact date.
    pub date: Date,
    /// Provider tag: `GP`, `OOH` or `SPEC`.
    pub provider: String,
    /// ICPC-2 diagnosis.
    pub icpc: Code,
    /// Free-text note (may be empty).
    pub note: String,
}

/// Parsed hospital-episode row.
#[derive(Debug, Clone, PartialEq)]
pub struct HospitalRow {
    /// Raw patient identifier (zero-padded scheme).
    pub raw_patient: String,
    /// Admission date.
    pub admitted: Date,
    /// Discharge date.
    pub discharged: Date,
    /// Main ICD-10 diagnosis.
    pub icd10: Code,
    /// Episode kind.
    pub kind: EpisodeKind,
}

/// Parsed municipal-care row.
#[derive(Debug, Clone, PartialEq)]
pub struct MunicipalRow {
    /// Raw patient identifier (`M` scheme).
    pub raw_patient: String,
    /// Service kind.
    pub kind: EpisodeKind,
    /// Service start date.
    pub from: Date,
    /// Service end date.
    pub to: Date,
}

/// Parsed dispensing row.
#[derive(Debug, Clone, PartialEq)]
pub struct PrescriptionRow {
    /// Raw patient identifier (plain digits).
    pub raw_patient: String,
    /// Dispensing time.
    pub time: DateTime,
    /// ATC code.
    pub atc: Code,
    /// Defined daily doses dispensed.
    pub ddd: f64,
}

/// Parse the Norwegian `DD.MM.YYYY` date form used by the claims extract.
pub fn parse_norwegian_date(s: &str) -> Option<Date> {
    let mut parts = s.trim().splitn(3, '.');
    let d: u32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let y: i32 = parts.next()?.parse().ok()?;
    Date::new(y, m, d)
}

fn issue(line: usize, reason: impl Into<String>) -> ParseIssue {
    ParseIssue { line, reason: reason.into() }
}

/// Parse the person register (`nin;birth_date;sex`).
pub fn parse_persons(text: &str) -> (Vec<PersonRow>, Vec<ParseIssue>) {
    let mut rows = Vec::new();
    let mut issues = Vec::new();
    for (line, f) in csv::rows(text, ';') {
        if f.len() != 3 {
            issues.push(issue(line, format!("expected 3 fields, got {}", f.len())));
            continue;
        }
        let Some(id) = crate::linkage::IdentityRegistry::parse_raw(&f[0]) else {
            issues.push(issue(line, format!("bad person id {:?}", f[0])));
            continue;
        };
        let Ok(birth_date) = Date::parse_iso(f[1].trim()) else {
            issues.push(issue(line, format!("bad birth date {:?}", f[1])));
            continue;
        };
        let sex = match f[2].trim() {
            "F" => Sex::Female,
            "M" => Sex::Male,
            other => {
                issues.push(issue(line, format!("bad sex {other:?}")));
                continue;
            }
        };
        rows.push(PersonRow { id, birth_date, sex });
    }
    (rows, issues)
}

/// Parse the claims file (`claim_id;patient;date;provider;icpc;note`,
/// Norwegian dates).
pub fn parse_claims(text: &str) -> (Vec<ClaimRow>, Vec<ParseIssue>) {
    let mut rows = Vec::new();
    let mut issues = Vec::new();
    for (line, f) in csv::rows(text, ';') {
        if f.len() != 6 {
            issues.push(issue(line, format!("expected 6 fields, got {}", f.len())));
            continue;
        }
        let Some(date) = parse_norwegian_date(&f[2]) else {
            issues.push(issue(line, format!("bad date {:?}", f[2])));
            continue;
        };
        let icpc = Code::icpc(&f[4]);
        if !icpc.is_valid() {
            issues.push(issue(line, format!("bad ICPC code {:?}", f[4])));
            continue;
        }
        rows.push(ClaimRow {
            raw_patient: f[1].clone(),
            date,
            provider: f[3].trim().to_owned(),
            icpc,
            note: f[5].clone(),
        });
    }
    (rows, issues)
}

/// Parse the hospital file
/// (`episode_id,patient,admitted,discharged,icd10_main,care_level`).
pub fn parse_hospital(text: &str) -> (Vec<HospitalRow>, Vec<ParseIssue>) {
    let mut rows = Vec::new();
    let mut issues = Vec::new();
    for (line, f) in csv::rows(text, ',') {
        if f.len() != 6 {
            issues.push(issue(line, format!("expected 6 fields, got {}", f.len())));
            continue;
        }
        let (Ok(admitted), Ok(discharged)) =
            (Date::parse_iso(f[2].trim()), Date::parse_iso(f[3].trim()))
        else {
            issues.push(issue(line, format!("bad dates {:?}/{:?}", f[2], f[3])));
            continue;
        };
        let icd10 = Code::icd10(&f[4]);
        if !icd10.is_valid() {
            issues.push(issue(line, format!("bad ICD-10 code {:?}", f[4])));
            continue;
        }
        let kind = match f[5].trim() {
            "inpatient" => EpisodeKind::Inpatient,
            "outpatient" => EpisodeKind::Outpatient,
            "day" => EpisodeKind::DayTreatment,
            other => {
                issues.push(issue(line, format!("bad care level {other:?}")));
                continue;
            }
        };
        rows.push(HospitalRow { raw_patient: f[1].clone(), admitted, discharged, icd10, kind });
    }
    (rows, issues)
}

/// Parse the municipal file (`patient|service|from|to`).
pub fn parse_municipal(text: &str) -> (Vec<MunicipalRow>, Vec<ParseIssue>) {
    let mut rows = Vec::new();
    let mut issues = Vec::new();
    for (line, f) in csv::rows(text, '|') {
        if f.len() != 4 {
            issues.push(issue(line, format!("expected 4 fields, got {}", f.len())));
            continue;
        }
        let kind = match f[1].trim() {
            "home_care" => EpisodeKind::HomeCare,
            "nursing_home" => EpisodeKind::NursingHome,
            other => {
                issues.push(issue(line, format!("bad service {other:?}")));
                continue;
            }
        };
        let (Ok(from), Ok(to)) = (Date::parse_iso(f[2].trim()), Date::parse_iso(f[3].trim()))
        else {
            issues.push(issue(line, format!("bad dates {:?}/{:?}", f[2], f[3])));
            continue;
        };
        rows.push(MunicipalRow { raw_patient: f[0].clone(), kind, from, to });
    }
    (rows, issues)
}

/// Parse the prescription file (`patient\tdispensed\tatc\tddd`).
pub fn parse_prescriptions(text: &str) -> (Vec<PrescriptionRow>, Vec<ParseIssue>) {
    let mut rows = Vec::new();
    let mut issues = Vec::new();
    for (line, f) in csv::rows(text, '\t') {
        if f.len() != 4 {
            issues.push(issue(line, format!("expected 4 fields, got {}", f.len())));
            continue;
        }
        let Ok(time) = DateTime::parse_iso(f[1].trim()) else {
            issues.push(issue(line, format!("bad time {:?}", f[1])));
            continue;
        };
        let atc = Code::atc(&f[2]);
        if !atc.is_valid() {
            issues.push(issue(line, format!("bad ATC code {:?}", f[2])));
            continue;
        }
        let Ok(ddd) = f[3].trim().parse::<f64>() else {
            issues.push(issue(line, format!("bad DDD {:?}", f[3])));
            continue;
        };
        rows.push(PrescriptionRow { raw_patient: f[0].clone(), time, atc, ddd });
    }
    (rows, issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norwegian_dates() {
        assert_eq!(parse_norwegian_date("04.05.2016"), Date::new(2016, 5, 4));
        assert_eq!(parse_norwegian_date(" 1.2.1999 "), Date::new(1999, 2, 1));
        assert_eq!(parse_norwegian_date("29.02.2015"), None);
        assert_eq!(parse_norwegian_date("2016-05-04"), None);
        assert_eq!(parse_norwegian_date(""), None);
    }

    #[test]
    fn persons_parse_and_report() {
        let text = "nin;birth_date;sex\nNIN-0000001;1950-06-15;F\nbad;row\nNIN-0000002;1940-01-01;M\nNIN-0000003;1950-13-01;F\n";
        let (rows, issues) = parse_persons(text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, 1);
        assert_eq!(rows[1].sex, Sex::Male);
        assert_eq!(issues.len(), 2);
        assert_eq!(issues[0].line, 3);
        assert!(issues[1].reason.contains("birth date"));
    }

    #[test]
    fn claims_parse() {
        let text = "claim_id;patient;date;provider;icpc;note\nK000000001;NIN-0000001;04.05.2013;GP;T90;HbA1c 7.2 %\nK000000002;NIN-0000001;05.05.2013;SPEC;K74;\nK000000003;NIN-0000001;32.05.2013;GP;T90;\nK000000004;NIN-0000001;05.05.2013;GP;Q99;\n";
        let (rows, issues) = parse_claims(text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].icpc.value, "T90");
        assert_eq!(rows[0].note, "HbA1c 7.2 %");
        assert_eq!(rows[1].provider, "SPEC");
        assert_eq!(issues.len(), 2, "bad date and bad code");
    }

    #[test]
    fn hospital_parse() {
        let text = "episode_id,patient,admitted,discharged,icd10_main,care_level\nE00000001,00000001,2013-05-01,2013-05-06,I50,inpatient\nE00000002,00000001,2013-06-01,2013-06-01,J44,day\nE00000003,00000001,2013-06-01,2013-06-01,J44,weird\n";
        let (rows, issues) = parse_hospital(text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, EpisodeKind::Inpatient);
        assert_eq!(rows[1].kind, EpisodeKind::DayTreatment);
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn municipal_parse() {
        let text = "patient|service|from|to\nM1|home_care|2013-02-01|2013-08-01\nM1|nursing_home|2014-01-01|2014-12-31\n";
        let (rows, issues) = parse_municipal(text);
        assert_eq!(rows.len(), 2);
        assert!(issues.is_empty());
        assert_eq!(rows[1].kind, EpisodeKind::NursingHome);
    }

    #[test]
    fn prescriptions_parse() {
        let text = "patient\tdispensed\tatc\tddd\n1\t2013-03-04T12:30:00\tC07AB02\t50.0\n1\t2013-03-04T12:30:00\tBAD\t50.0\n";
        let (rows, issues) = parse_prescriptions(text);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].atc.value, "C07AB02");
        assert_eq!(issues.len(), 1);
    }
}
