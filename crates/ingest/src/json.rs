//! A minimal JSON parser — the import half of cohort save/load.
//!
//! `pastas-core`'s extraction task exports cohorts as JSON; research
//! workflows bring them back ("get ideas for the best analysis strategies,"
//! then return to the visualization). The parser is a strict recursive-
//! descent RFC 8259 reader: objects, arrays, strings with escapes
//! (including `\uXXXX` and surrogate pairs), numbers, booleans, null.
//! No serde, same as every other codec in the workspace.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the formats we read stay in range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys, deterministic iteration).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// anything else is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }

    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element access.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(v) => v.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A JSON syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), position: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(s).map_err(|_| self.err("bad UTF-8"))?;
                    // lint:allow(transitive-no-panic-hot-path) peek() returned Some, so the slice has at least one byte
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else { return Err(self.err("short \\u escape")) };
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Number).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.25e2").unwrap(), Json::Number(-325.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(|a| a.at(0)).and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("a").and_then(|a| a.at(1)).and_then(|o| o.get("b")), Some(&Json::Null));
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn surrogate_pairs() {
        // 😀 U+1F600 = 😀
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\uD83D""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\uD83Dx""#).is_err());
    }

    #[test]
    fn unicode_pass_through() {
        let v = Json::parse("\"tromsø — æøå\"").unwrap();
        assert_eq!(v.as_str(), Some("tromsø — æøå"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(BTreeMap::new()));
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(Vec::new()));
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Array(Vec::new()));
    }

    #[test]
    fn errors_with_positions() {
        for bad in ["", "{", "[1,", "{\"a\"}", "[1 2]", "tru", "\"abc", "01x", "{}{}", "[1,]"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.position, 4);
    }

    #[test]
    fn whitespace_tolerance() {
        let v = Json::parse("  {\n\t\"a\" : 1 ,\r\n \"b\":2 }  ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn control_chars_rejected_raw_but_fine_escaped() {
        assert!(Json::parse("\"a\nb\"").is_err());
        assert_eq!(Json::parse(r#""a\nb""#).unwrap().as_str(), Some("a\nb"));
    }
}
