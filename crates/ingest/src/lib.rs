//! Aggregation of heterogeneous clinical sources.
//!
//! The paper's title promise — "patient histories **aggregated from
//! heterogeneous sources**" — lives here. Four registries arrive in four
//! CSV dialects with four patient-identifier schemes and assorted data-
//! quality problems (duplicates, "clearly invalid" dates, free text with
//! "differing conventions and many typing errors"). This crate turns them
//! into one validated [`HistoryCollection`]:
//!
//! * [`csv`] — a small delimiter-configurable line parser;
//! * [`adapters`] — one adapter per source file, each tolerant of bad rows
//!   (errors are *counted*, not fatal);
//! * [`linkage`] — identity resolution across the four id schemes, anchored
//!   in the person register;
//! * [`extract`] — regex extraction of measurements from free-text notes
//!   (`"BT 150/90"` → systolic + diastolic entries), per §IV.A;
//! * [`aggregate`] — the pipeline: parse → link → merge → dedup →
//!   validate, with a [`QualityReport`] accounting for every dropped row;
//! * [`delta`] — the same dialects arriving incrementally: one-format
//!   increments parse into per-patient entry deltas for the streaming
//!   ingest path, reusing the adapters, linkage and entry conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod aggregate;
pub mod csv;
pub mod delta;
pub mod extract;
pub mod json;
pub mod linkage;

pub use aggregate::{aggregate, entry_fingerprint, EntryFingerprint, QualityReport, SourceTexts};
pub use delta::{parse_delta, DeltaBatch, DeltaFormat, PatientDelta};
pub use linkage::IdentityRegistry;

#[cfg(test)]
mod proptests;
