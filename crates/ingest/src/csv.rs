//! A minimal, delimiter-configurable CSV reader.
//!
//! The source dialects here use `;`, `,`, `|` and `\t` and never quote
//! fields, but registry extracts occasionally wrap free text in double
//! quotes, so basic RFC-4180 quoting is supported. No external dependency.

/// Split one line into fields on `delim`, honouring double-quoted fields
/// (with `""` as the escaped quote).
pub fn split_line(line: &str, delim: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            in_quotes = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

/// Iterate a file's data rows: skips the header line and blank lines,
/// yielding `(line_number, fields)` with 1-based line numbers.
pub fn rows(text: &str, delim: char) -> impl Iterator<Item = (usize, Vec<String>)> + '_ {
    text.lines()
        .enumerate()
        .skip(1)
        .filter(|(_, l)| !l.trim().is_empty())
        .map(move |(i, l)| (i + 1, split_line(l, delim)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_each_dialect() {
        assert_eq!(split_line("a;b;c", ';'), vec!["a", "b", "c"]);
        assert_eq!(split_line("a,b,c", ','), vec!["a", "b", "c"]);
        assert_eq!(split_line("a|b|c", '|'), vec!["a", "b", "c"]);
        assert_eq!(split_line("a\tb\tc", '\t'), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_fields_are_preserved() {
        assert_eq!(split_line("a;;c;", ';'), vec!["a", "", "c", ""]);
        assert_eq!(split_line("", ';'), vec![""]);
    }

    #[test]
    fn quoted_fields() {
        assert_eq!(split_line("a;\"b;c\";d", ';'), vec!["a", "b;c", "d"]);
        assert_eq!(split_line("\"say \"\"hi\"\"\";x", ';'), vec!["say \"hi\"", "x"]);
    }

    #[test]
    fn rows_skip_header_and_blanks() {
        let text = "h1;h2\na;b\n\nc;d\n";
        let got: Vec<_> = rows(text, ';').collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (2, vec!["a".to_owned(), "b".to_owned()]));
        assert_eq!(got[1], (4, vec!["c".to_owned(), "d".to_owned()]));
    }
}
