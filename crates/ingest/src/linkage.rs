//! Identity resolution across the four source id schemes.
//!
//! The person register keys patients by national id (`NIN-0000123`); the
//! other sources use their own forms of the same underlying number:
//! zero-padded digits (hospital), `M`-prefixed (municipal), and plain
//! digits (prescriptions). The registry canonicalizes all of them to
//! [`PatientId`] and records demographics for validation.

use pastas_model::{Patient, PatientId, Sex};
use pastas_time::Date;
use std::collections::HashMap;

/// The linkage anchor: canonical ids plus demographics.
#[derive(Debug, Default, Clone)]
pub struct IdentityRegistry {
    by_id: HashMap<u64, Patient>,
}

impl IdentityRegistry {
    /// An empty registry.
    pub fn new() -> IdentityRegistry {
        IdentityRegistry::default()
    }

    /// Register a person under their canonical numeric id.
    pub fn register(&mut self, id: u64, birth_date: Date, sex: Sex) {
        self.by_id.insert(id, Patient { id: PatientId(id), birth_date, sex });
    }

    /// Number of registered persons.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no persons are registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Demographics for a canonical id.
    pub fn patient(&self, id: PatientId) -> Option<&Patient> {
        self.by_id.get(&id.0)
    }

    /// All registered patients (arbitrary order).
    pub fn patients(&self) -> impl Iterator<Item = &Patient> {
        self.by_id.values()
    }

    /// Resolve a raw identifier in any of the four schemes:
    ///
    /// * `NIN-0000123` (claims / person register)
    /// * `00000123` (hospital, zero-padded)
    /// * `M123` (municipal)
    /// * `123` (prescriptions)
    ///
    /// Whitespace is tolerated. Returns `None` for malformed ids or ids
    /// not present in the register (an unlinked row).
    pub fn resolve(&self, raw: &str) -> Option<PatientId> {
        let raw = raw.trim();
        let digits = raw
            .strip_prefix("NIN-")
            .or_else(|| raw.strip_prefix('M'))
            .unwrap_or(raw);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let id: u64 = digits.parse().ok()?;
        self.by_id.contains_key(&id).then_some(PatientId(id))
    }

    /// Parse a raw id without register membership (used by tests and
    /// by sources loaded before the person register).
    pub fn parse_raw(raw: &str) -> Option<u64> {
        let raw = raw.trim();
        let digits = raw
            .strip_prefix("NIN-")
            .or_else(|| raw.strip_prefix('M'))
            .unwrap_or(raw);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> IdentityRegistry {
        let mut r = IdentityRegistry::new();
        r.register(123, Date::new(1950, 1, 1).unwrap(), Sex::Female);
        r.register(7, Date::new(1940, 6, 1).unwrap(), Sex::Male);
        r
    }

    #[test]
    fn resolves_all_four_schemes() {
        let r = registry();
        for raw in ["NIN-0000123", "00000123", "M123", "123", " 123 "] {
            assert_eq!(r.resolve(raw), Some(PatientId(123)), "{raw:?}");
        }
    }

    #[test]
    fn unknown_and_malformed_ids_fail() {
        let r = registry();
        assert_eq!(r.resolve("999"), None, "not registered");
        assert_eq!(r.resolve("NIN-"), None);
        assert_eq!(r.resolve("M12x"), None);
        assert_eq!(r.resolve(""), None);
        assert_eq!(r.resolve("PAT-123"), None);
    }

    #[test]
    fn demographics_lookup() {
        let r = registry();
        let p = r.patient(PatientId(7)).unwrap();
        assert_eq!(p.birth_date, Date::new(1940, 6, 1).unwrap());
        assert_eq!(p.sex, Sex::Male);
        assert!(r.patient(PatientId(999)).is_none());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parse_raw_is_scheme_agnostic() {
        assert_eq!(IdentityRegistry::parse_raw("NIN-0000042"), Some(42));
        assert_eq!(IdentityRegistry::parse_raw("M42"), Some(42));
        assert_eq!(IdentityRegistry::parse_raw("0042"), Some(42));
        assert_eq!(IdentityRegistry::parse_raw("x42"), None);
    }
}
