//! Regex extraction from free text.
//!
//! §IV.A: "Regular expressions are also used for extraction of some of the
//! available free text data … However, this extraction is limited because
//! of differing conventions and many typing errors in the text." We extract
//! the patterns that round-trip losslessly: blood-pressure readings in the
//! Norwegian shorthand `BT 150/90` and explicit measurement phrases like
//! `systolic BP 142 mmHg`, using the workspace's own regex engine.

use pastas_model::MeasurementKind;
use pastas_regex::Regex;
use std::sync::OnceLock;

/// One extracted measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractedMeasurement {
    /// What was measured.
    pub kind: MeasurementKind,
    /// The numeric value.
    pub value: f64,
}

fn bp_regex() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    // "BT 150/90", "bt 150 / 90", "BP: 150/90"
    RE.get_or_init(|| {
        // lint:allow(transitive-no-panic-hot-path) compile-time literal pattern, covered by extraction unit tests
        Regex::with_options(r"B[TP]:? ?(\d{2,3}) ?/ ?(\d{2,3})", true).expect("static pattern")
    })
}

fn labelled_regex() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    // "systolic BP 142 mmHg", "HbA1c 7.4 %", "weight 83 kg", "peak flow 390"
    RE.get_or_init(|| {
        Regex::with_options(
            r"(systolic BP|diastolic BP|HbA1c|weight|peak flow|cholesterol) (\d+\.?\d*)",
            true,
        )
        // lint:allow(transitive-no-panic-hot-path) compile-time literal pattern, covered by extraction unit tests
        .expect("static pattern")
    })
}

/// Extract every recognizable measurement from a free-text note.
pub fn extract_measurements(note: &str) -> Vec<ExtractedMeasurement> {
    let mut out = Vec::new();
    for m in bp_regex().find_iter(note) {
        let (Some(sys), Some(dia)) = (m.group(1, note), m.group(2, note)) else {
            continue;
        };
        if let (Ok(sys), Ok(dia)) = (sys.parse::<f64>(), dia.parse::<f64>()) {
            // Reject obviously transposed/typo readings rather than
            // aggregating garbage.
            if sys > dia && (60.0..280.0).contains(&sys) && (30.0..160.0).contains(&dia) {
                out.push(ExtractedMeasurement { kind: MeasurementKind::SystolicBp, value: sys });
                out.push(ExtractedMeasurement { kind: MeasurementKind::DiastolicBp, value: dia });
            }
        }
    }
    for m in labelled_regex().find_iter(note) {
        let (Some(label), Some(value)) = (m.group(1, note), m.group(2, note)) else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else { continue };
        let kind = match label.to_ascii_lowercase().as_str() {
            "systolic bp" => MeasurementKind::SystolicBp,
            "diastolic bp" => MeasurementKind::DiastolicBp,
            "hba1c" => MeasurementKind::Hba1c,
            "weight" => MeasurementKind::Weight,
            "peak flow" => MeasurementKind::PeakFlow,
            "cholesterol" => MeasurementKind::Cholesterol,
            _ => continue,
        };
        out.push(ExtractedMeasurement { kind, value });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_norwegian_bp_shorthand() {
        let got = extract_measurements("kontroll, BT 150/90, ellers fint");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], ExtractedMeasurement { kind: MeasurementKind::SystolicBp, value: 150.0 });
        assert_eq!(got[1], ExtractedMeasurement { kind: MeasurementKind::DiastolicBp, value: 90.0 });
    }

    #[test]
    fn tolerates_convention_variants() {
        for note in ["bt 128/82", "BP: 128/82", "BT 128 / 82"] {
            let got = extract_measurements(note);
            assert_eq!(got.len(), 2, "{note:?}");
            assert_eq!(got[0].value, 128.0);
        }
    }

    #[test]
    fn rejects_implausible_readings() {
        assert!(extract_measurements("BT 90/150").is_empty(), "transposed");
        assert!(extract_measurements("BT 500/90").is_empty(), "typo systolic");
    }

    #[test]
    fn extracts_labelled_measurements() {
        let got = extract_measurements("HbA1c 7.4 at follow-up; weight 83");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], ExtractedMeasurement { kind: MeasurementKind::Hba1c, value: 7.4 });
        assert_eq!(got[1], ExtractedMeasurement { kind: MeasurementKind::Weight, value: 83.0 });
    }

    #[test]
    fn case_insensitive_labels() {
        let got = extract_measurements("PEAK FLOW 410");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, MeasurementKind::PeakFlow);
    }

    #[test]
    fn plain_text_yields_nothing() {
        assert!(extract_measurements("patient feeling better").is_empty());
        assert!(extract_measurements("").is_empty());
        // The paper's point: typo-ridden text resists extraction — and must
        // not produce junk values.
        assert!(extract_measurements("BTT 150//90 maybe").is_empty());
    }

    #[test]
    fn multiple_readings_in_one_note() {
        let got = extract_measurements("BT 150/90 before, BT 140/85 after");
        assert_eq!(got.len(), 4);
        assert_eq!(got[2].value, 140.0);
    }
}
