//! The aggregation pipeline: parse → link → merge → dedup → validate.

use crate::adapters;
use crate::extract;
use crate::linkage::IdentityRegistry;
use pastas_model::{CollectionBuilder, Entry, HistoryCollection, Patient, Payload, SourceKind};
use std::collections::HashSet;

/// The five raw source texts.
#[derive(Debug, Clone, Copy)]
pub struct SourceTexts<'a> {
    /// Person register.
    pub persons: &'a str,
    /// GP/specialist claims.
    pub claims: &'a str,
    /// Hospital episodes.
    pub hospital: &'a str,
    /// Municipal care.
    pub municipal: &'a str,
    /// Dispensings.
    pub prescriptions: &'a str,
}

/// Accounting for everything the pipeline read, loaded and dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QualityReport {
    /// Data rows seen across all files (excluding headers/blanks).
    pub rows_read: usize,
    /// Rows rejected by the adapters (malformed fields).
    pub parse_errors: usize,
    /// Rows whose patient id did not resolve against the register.
    pub unlinked_rows: usize,
    /// Exact duplicate entries dropped.
    pub duplicates_dropped: usize,
    /// Entries dropped by the §IV pre-birth validation rule.
    pub dropped_pre_birth: usize,
    /// Measurements recovered from free-text notes by regex.
    pub measurements_extracted: usize,
    /// Entries that made it into the collection.
    pub entries_loaded: usize,
}

impl QualityReport {
    /// Fraction of read rows that produced at least their primary entry.
    pub fn yield_fraction(&self) -> f64 {
        if self.rows_read == 0 {
            return 0.0;
        }
        1.0 - (self.parse_errors + self.unlinked_rows) as f64 / self.rows_read as f64
    }
}

/// The dedup identity of one entry: patient, time extent, payload and
/// source. Entries agreeing on all five are exact duplicates.
pub type EntryFingerprint = (u64, i64, i64, u8, String);

/// A dedup fingerprint: exact duplicates (same patient, time extent,
/// payload identity and source) collapse to one entry. Public because
/// the streaming path ([`crate::delta`] consumers) must dedup incoming
/// deltas against already-loaded histories with the *same* identity, so
/// streamed and batch-loaded collections agree entry for entry.
pub fn entry_fingerprint(patient: u64, e: &Entry) -> EntryFingerprint {
    let payload_tag = match e.payload() {
        Payload::Diagnosis(c) => (0u8, c.to_string()),
        Payload::Medication(c) => (1, c.to_string()),
        Payload::Measurement { kind, value } => (2, format!("{kind:?}:{value:.3}")),
        Payload::Episode(k) => (3, format!("{k:?}")),
        Payload::Note(t) => (4, t.clone()),
    };
    (
        patient,
        e.start().second_number(),
        e.end().second_number(),
        payload_tag.0 + 10 * e.source() as u8,
        payload_tag.1,
    )
}

/// Run the full pipeline.
pub fn aggregate(src: SourceTexts<'_>) -> (HistoryCollection, QualityReport) {
    let mut report = QualityReport::default();

    // Parsing the five sources is independent, read-only work — fan it out
    // on the parallel layer. Linkage and merge below consume the results
    // in the fixed source order, so the pipeline output is identical to
    // the serial one at every thread count.
    let (persons_parsed, (claims_parsed, (hospital_parsed, (municipal_parsed, rx_parsed)))) =
        pastas_par::join(
            || adapters::parse_persons(src.persons),
            || {
                pastas_par::join(
                    || adapters::parse_claims(src.claims),
                    || {
                        pastas_par::join(
                            || adapters::parse_hospital(src.hospital),
                            || {
                                pastas_par::join(
                                    || adapters::parse_municipal(src.municipal),
                                    || adapters::parse_prescriptions(src.prescriptions),
                                )
                            },
                        )
                    },
                )
            },
        );

    // 1. The person register anchors linkage.
    let (persons, person_issues) = persons_parsed;
    report.rows_read += persons.len() + person_issues.len();
    report.parse_errors += person_issues.len();
    let mut registry = IdentityRegistry::new();
    for p in &persons {
        registry.register(p.id, p.birth_date, p.sex);
    }

    // Deduplicated entries accumulate per patient; the columnar arena is
    // built once at the end so every history shares one allocation.
    let mut histories: std::collections::HashMap<u64, (Patient, Vec<Entry>)> = registry
        .patients()
        .map(|p| (p.id.0, (*p, Vec::new())))
        .collect();
    let mut seen: HashSet<(u64, i64, i64, u8, String)> = HashSet::new();

    let mut push = |patient: u64,
                    entry: Entry,
                    histories: &mut std::collections::HashMap<u64, (Patient, Vec<Entry>)>,
                    report: &mut QualityReport| {
        let fp = entry_fingerprint(patient, &entry);
        if !seen.insert(fp) {
            report.duplicates_dropped += 1;
            return;
        }
        let slot = histories.get_mut(&patient).expect("resolved patients have histories");
        slot.1.push(entry);
    };

    // 2. Claims: diagnosis event + free-text measurement extraction.
    let (claims, issues) = claims_parsed;
    report.rows_read += claims.len() + issues.len();
    report.parse_errors += issues.len();
    for row in claims {
        let Some(pid) = registry.resolve(&row.raw_patient) else {
            report.unlinked_rows += 1;
            continue;
        };
        let source = if row.provider == "SPEC" {
            SourceKind::Specialist
        } else {
            SourceKind::PrimaryCare
        };
        let time = row.date.at_midnight() + pastas_time::Duration::hours(12);
        push(pid.0, Entry::event(time, Payload::Diagnosis(row.icpc), source), &mut histories, &mut report);
        for m in extract::extract_measurements(&row.note) {
            report.measurements_extracted += 1;
            push(
                pid.0,
                Entry::event(time, Payload::Measurement { kind: m.kind, value: m.value }, source),
                &mut histories,
                &mut report,
            );
        }
    }

    // 3. Hospital: interval + main diagnosis at admission.
    let (episodes, issues) = hospital_parsed;
    report.rows_read += episodes.len() + issues.len();
    report.parse_errors += issues.len();
    for row in episodes {
        let Some(pid) = registry.resolve(&row.raw_patient) else {
            report.unlinked_rows += 1;
            continue;
        };
        let start = row.admitted.at_midnight();
        let end = row.discharged.at_midnight();
        push(
            pid.0,
            Entry::interval(start, end, Payload::Episode(row.kind), SourceKind::Hospital),
            &mut histories,
            &mut report,
        );
        push(
            pid.0,
            Entry::event(start, Payload::Diagnosis(row.icd10), SourceKind::Hospital),
            &mut histories,
            &mut report,
        );
    }

    // 4. Municipal care periods.
    let (services, issues) = municipal_parsed;
    report.rows_read += services.len() + issues.len();
    report.parse_errors += issues.len();
    for row in services {
        let Some(pid) = registry.resolve(&row.raw_patient) else {
            report.unlinked_rows += 1;
            continue;
        };
        push(
            pid.0,
            Entry::interval(
                row.from.at_midnight(),
                row.to.at_midnight(),
                Payload::Episode(row.kind),
                SourceKind::Municipal,
            ),
            &mut histories,
            &mut report,
        );
    }

    // 5. Dispensings.
    let (rx, issues) = rx_parsed;
    report.rows_read += rx.len() + issues.len();
    report.parse_errors += issues.len();
    for row in rx {
        let Some(pid) = registry.resolve(&row.raw_patient) else {
            report.unlinked_rows += 1;
            continue;
        };
        push(
            pid.0,
            Entry::event(row.time, Payload::Medication(row.atc), SourceKind::Prescription),
            &mut histories,
            &mut report,
        );
    }

    // One shared columnar arena, patients in ascending id order for a
    // stable default display order. The builder applies the §IV pre-birth
    // validation rule and the canonical (start, end) sort per patient.
    let mut hs: Vec<(Patient, Vec<Entry>)> = histories.into_values().collect();
    hs.sort_by_key(|(p, _)| p.id);
    let mut builder = CollectionBuilder::new();
    for (patient, entries) in hs {
        let r = builder.add_patient(patient, entries);
        report.entries_loaded += r.accepted;
        report.dropped_pre_birth += r.dropped_pre_birth;
    }
    let (collection, _) = builder.build();
    (collection, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_synth::emit::{emit, MessConfig};
    use pastas_synth::{generate_population, SynthConfig};

    fn sources(s: &pastas_synth::emit::RawSources) -> SourceTexts<'_> {
        SourceTexts {
            persons: &s.persons,
            claims: &s.claims,
            hospital: &s.hospital,
            municipal: &s.municipal,
            prescriptions: &s.prescriptions,
        }
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        let pop = generate_population(SynthConfig::with_patients(120), 11);
        let raw = emit(&pop, MessConfig::default());
        let (c1, r1) = pastas_par::with_threads(1, || aggregate(sources(&raw)));
        for threads in [2, 8] {
            let (c2, r2) = pastas_par::with_threads(threads, || aggregate(sources(&raw)));
            assert_eq!(r1, r2, "threads {threads}");
            assert_eq!(c1.len(), c2.len());
            for (a, b) in c1.iter().zip(c2.iter()) {
                assert_eq!(a, b, "threads {threads}");
            }
        }
    }

    #[test]
    fn round_trips_a_clean_population() {
        let pop = generate_population(SynthConfig::with_patients(200), 31);
        let raw = emit(&pop, MessConfig { duplicate_prob: 0.0, invalid_date_prob: 0.0, note_prob: 0.0 });
        let (collection, report) = aggregate(sources(&raw));

        assert_eq!(collection.len(), 200);
        assert_eq!(report.parse_errors, 0);
        assert_eq!(report.unlinked_rows, 0);
        assert_eq!(report.dropped_pre_birth, 0);

        // Entry counts match the direct construction: every contact,
        // admission (2 entries), dispensing and municipal period, plus one
        // measurement entry per claims row whose note carried one — except
        // that claims carry only a *date*, so two same-day contacts with
        // the same code legitimately collapse in the round trip. The
        // quality report accounts for exactly those.
        let direct: usize = (0..200).map(|i| pop.history_for(i).len()).sum();
        let loaded = collection.stats().entries;
        assert_eq!(
            loaded + report.duplicates_dropped,
            direct,
            "round-trip entry accounting mismatch"
        );
        assert!(
            (report.duplicates_dropped as f64) < 0.01 * direct as f64,
            "same-day collapses should be rare: {} of {direct}",
            report.duplicates_dropped
        );
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let pop = generate_population(SynthConfig::with_patients(300), 37);
        let clean = emit(&pop, MessConfig { duplicate_prob: 0.0, invalid_date_prob: 0.0, note_prob: 0.0 });
        let messy = emit(&pop, MessConfig { duplicate_prob: 0.25, invalid_date_prob: 0.0, note_prob: 0.0 });
        let (cc, _) = aggregate(sources(&clean));
        let (mc, mr) = aggregate(sources(&messy));
        assert!(mr.duplicates_dropped > 0, "expected injected duplicates");
        assert_eq!(cc.stats().entries, mc.stats().entries, "dedup restores the clean count");
    }

    #[test]
    fn pre_birth_dates_are_dropped_per_the_paper() {
        let pop = generate_population(SynthConfig::with_patients(400), 41);
        let messy = emit(&pop, MessConfig { duplicate_prob: 0.0, invalid_date_prob: 0.05, note_prob: 0.0 });
        let (_, report) = aggregate(sources(&messy));
        assert!(report.dropped_pre_birth > 0, "expected §IV validation drops");
    }

    #[test]
    fn note_measurements_are_recovered() {
        let pop = generate_population(SynthConfig::with_patients(300), 43);
        let raw = emit(&pop, MessConfig { duplicate_prob: 0.0, invalid_date_prob: 0.0, note_prob: 0.5 });
        let (collection, report) = aggregate(sources(&raw));
        assert!(report.measurements_extracted > 0);
        let measured = collection
            .iter()
            .flat_map(|h| h.entries())
            .filter(|e| matches!(e.payload(), pastas_model::PayloadRef::Measurement { .. }))
            .count();
        assert!(measured >= report.measurements_extracted);
    }

    #[test]
    fn unlinked_rows_are_counted() {
        let src = SourceTexts {
            persons: "nin;birth_date;sex\nNIN-0000001;1950-01-01;F\n",
            claims: "claim_id;patient;date;provider;icpc;note\nK1;NIN-0000001;04.05.2013;GP;T90;\nK2;NIN-0000099;04.05.2013;GP;T90;\n",
            hospital: "episode_id,patient,admitted,discharged,icd10_main,care_level\n",
            municipal: "patient|service|from|to\n",
            prescriptions: "patient\tdispensed\tatc\tddd\n",
        };
        let (collection, report) = aggregate(src);
        assert_eq!(collection.len(), 1);
        assert_eq!(report.unlinked_rows, 1);
        assert_eq!(report.entries_loaded, 1);
        assert!((report.yield_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cross_source_alignment_lands_in_one_history() {
        // The same person appears under all four id schemes.
        let src = SourceTexts {
            persons: "nin;birth_date;sex\nNIN-0000042;1950-01-01;M\n",
            claims: "claim_id;patient;date;provider;icpc;note\nK1;NIN-0000042;04.05.2013;GP;T90;\n",
            hospital: "episode_id,patient,admitted,discharged,icd10_main,care_level\nE1,00000042,2013-06-01,2013-06-05,E11,inpatient\n",
            municipal: "patient|service|from|to\nM42|home_care|2013-07-01|2013-09-01\n",
            prescriptions: "patient\tdispensed\tatc\tddd\n42\t2013-05-04T12:00:00\tA10BA02\t30\n",
        };
        let (collection, report) = aggregate(src);
        assert_eq!(collection.len(), 1);
        assert_eq!(report.unlinked_rows, 0);
        let h = collection.get(pastas_model::PatientId(42)).unwrap();
        // 1 claim + (interval + diagnosis) + 1 municipal + 1 rx = 5 entries.
        assert_eq!(h.len(), 5);
        let sources_seen: std::collections::HashSet<_> =
            h.entries().iter().map(|e| e.source()).collect();
        assert_eq!(sources_seen.len(), 4, "all four sources aligned");
    }

    #[test]
    fn empty_sources_give_empty_collection() {
        let src = SourceTexts {
            persons: "nin;birth_date;sex\n",
            claims: "h\n",
            hospital: "h\n",
            municipal: "h\n",
            prescriptions: "h\n",
        };
        let (collection, report) = aggregate(src);
        assert!(collection.is_empty());
        assert_eq!(report.entries_loaded, 0);
        assert_eq!(report.yield_fraction(), 0.0);
    }
}
