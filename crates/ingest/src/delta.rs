//! Streaming delta parsing: the four source dialects, arriving
//! incrementally.
//!
//! The batch pipeline ([`crate::aggregate`]) reads five complete files
//! and builds a collection from scratch. A live registry feed instead
//! delivers *increments* — a page of new claims, today's discharges, a
//! fresh person-register extract — one source format at a time. This
//! module parses one such increment into per-patient entry deltas
//! ([`PatientDelta`]) using **exactly** the batch pipeline's adapters,
//! linkage, measurement extraction and entry conventions, so a
//! collection grown from deltas converges to what a batch build of the
//! same rows produces (the serve layer's convergence e2e asserts this).
//!
//! Linkage is stateful across deltas: `persons` increments register new
//! patients into the caller's [`IdentityRegistry`]; rows of the other
//! formats resolve against everything registered so far, and rows that
//! do not resolve are counted (`unlinked_rows`), never fatal — the same
//! tolerance as the batch path.

use crate::adapters;
use crate::extract;
use crate::linkage::IdentityRegistry;
use pastas_model::{Entry, Patient, Payload, SourceKind};
use std::collections::HashMap;

/// Which source dialect a delta payload is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaFormat {
    /// Person register (`nin;birth_date;sex`).
    Persons,
    /// GP/specialist claims (`claim_id;patient;date;provider;icpc;note`).
    Claims,
    /// Hospital episodes
    /// (`episode_id,patient,admitted,discharged,icd10_main,care_level`).
    Hospital,
    /// Municipal care (`patient|service|from|to`).
    Municipal,
    /// Dispensings (`patient\tdispensed\tatc\tddd`).
    Prescriptions,
}

impl DeltaFormat {
    /// Every format, in the batch pipeline's source order.
    pub const ALL: [DeltaFormat; 5] = [
        DeltaFormat::Persons,
        DeltaFormat::Claims,
        DeltaFormat::Hospital,
        DeltaFormat::Municipal,
        DeltaFormat::Prescriptions,
    ];

    /// Parse a format name (the serve layer's `?format=` value).
    pub fn from_name(name: &str) -> Option<DeltaFormat> {
        match name {
            "persons" => Some(DeltaFormat::Persons),
            "claims" => Some(DeltaFormat::Claims),
            "hospital" => Some(DeltaFormat::Hospital),
            "municipal" => Some(DeltaFormat::Municipal),
            "prescriptions" => Some(DeltaFormat::Prescriptions),
            _ => None,
        }
    }

    /// The canonical format name.
    pub fn name(self) -> &'static str {
        match self {
            DeltaFormat::Persons => "persons",
            DeltaFormat::Claims => "claims",
            DeltaFormat::Hospital => "hospital",
            DeltaFormat::Municipal => "municipal",
            DeltaFormat::Prescriptions => "prescriptions",
        }
    }
}

/// One patient's share of a parsed delta: demographics (so a receiver
/// can create the patient if this is their first appearance) plus the
/// new entries, in row order. Entries are *not* yet deduplicated
/// against the receiving collection — that is the applier's job, using
/// [`crate::aggregate::entry_fingerprint`].
#[derive(Debug, Clone)]
pub struct PatientDelta {
    /// Who the entries belong to.
    pub patient: Patient,
    /// New entries, in source-row order (empty for persons-only rows).
    pub entries: Vec<Entry>,
}

/// A parsed increment: per-patient deltas (first-appearance order) plus
/// the same accounting the batch [`crate::QualityReport`] keeps.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// Per-patient deltas, one per distinct patient, in the order
    /// patients first appear in the payload.
    pub deltas: Vec<PatientDelta>,
    /// Data rows seen (excluding headers/blanks).
    pub rows_read: usize,
    /// Rows rejected by the adapters (malformed fields).
    pub parse_errors: usize,
    /// Rows whose patient id did not resolve against the register.
    pub unlinked_rows: usize,
    /// Measurements recovered from free-text notes by regex.
    pub measurements_extracted: usize,
}

impl DeltaBatch {
    /// Total entries across every delta.
    pub fn entries(&self) -> usize {
        self.deltas.iter().map(|d| d.entries.len()).sum()
    }
}

/// Accumulates entries per patient, preserving first-appearance order.
#[derive(Default)]
struct Grouper {
    slots: HashMap<u64, usize>,
    deltas: Vec<PatientDelta>,
}

impl Grouper {
    fn push(&mut self, patient: Patient, entry: Option<Entry>) {
        let slot = *self.slots.entry(patient.id.0).or_insert_with(|| {
            self.deltas.push(PatientDelta { patient, entries: Vec::new() });
            self.deltas.len() - 1
        });
        if let Some(e) = entry {
            // lint:allow(no-panic-hot-path) slot indexes self.deltas by construction
            self.deltas[slot].entries.push(e);
        }
    }
}

/// Parse one increment of `format` into per-patient deltas.
///
/// Entry construction matches [`crate::aggregate`] convention for
/// convention: claims become a noon diagnosis event (plus one
/// measurement event per extracted note reading) attributed to
/// `Specialist` for `SPEC` providers and `PrimaryCare` otherwise;
/// hospital rows become an episode interval plus an admission-day
/// diagnosis, both `Hospital`; municipal rows an episode interval;
/// dispensings a medication event. `persons` rows register (or
/// re-register) patients in `registry` and emit an entry-less delta so
/// a demographics-only arrival still creates the patient downstream.
pub fn parse_delta(
    format: DeltaFormat,
    text: &str,
    registry: &mut IdentityRegistry,
) -> DeltaBatch {
    let mut batch = DeltaBatch::default();
    let mut grouped = Grouper::default();
    match format {
        DeltaFormat::Persons => {
            let (rows, issues) = adapters::parse_persons(text);
            batch.rows_read = rows.len() + issues.len();
            batch.parse_errors = issues.len();
            for row in rows {
                registry.register(row.id, row.birth_date, row.sex);
                let patient = *registry
                    .patient(pastas_model::PatientId(row.id))
                    // lint:allow(transitive-no-panic-hot-path) register() on the line above inserts this id
                    .expect("just registered");
                grouped.push(patient, None);
            }
        }
        DeltaFormat::Claims => {
            let (rows, issues) = adapters::parse_claims(text);
            batch.rows_read = rows.len() + issues.len();
            batch.parse_errors = issues.len();
            for row in rows {
                let Some(patient) = resolve(registry, &row.raw_patient, &mut batch) else {
                    continue;
                };
                let source = if row.provider == "SPEC" {
                    SourceKind::Specialist
                } else {
                    SourceKind::PrimaryCare
                };
                let time = row.date.at_midnight() + pastas_time::Duration::hours(12);
                grouped.push(
                    patient,
                    Some(Entry::event(time, Payload::Diagnosis(row.icpc), source)),
                );
                for m in extract::extract_measurements(&row.note) {
                    batch.measurements_extracted += 1;
                    grouped.push(
                        patient,
                        Some(Entry::event(
                            time,
                            Payload::Measurement { kind: m.kind, value: m.value },
                            source,
                        )),
                    );
                }
            }
        }
        DeltaFormat::Hospital => {
            let (rows, issues) = adapters::parse_hospital(text);
            batch.rows_read = rows.len() + issues.len();
            batch.parse_errors = issues.len();
            for row in rows {
                let Some(patient) = resolve(registry, &row.raw_patient, &mut batch) else {
                    continue;
                };
                let start = row.admitted.at_midnight();
                let end = row.discharged.at_midnight();
                grouped.push(
                    patient,
                    Some(Entry::interval(
                        start,
                        end,
                        Payload::Episode(row.kind),
                        SourceKind::Hospital,
                    )),
                );
                grouped.push(
                    patient,
                    Some(Entry::event(
                        start,
                        Payload::Diagnosis(row.icd10),
                        SourceKind::Hospital,
                    )),
                );
            }
        }
        DeltaFormat::Municipal => {
            let (rows, issues) = adapters::parse_municipal(text);
            batch.rows_read = rows.len() + issues.len();
            batch.parse_errors = issues.len();
            for row in rows {
                let Some(patient) = resolve(registry, &row.raw_patient, &mut batch) else {
                    continue;
                };
                grouped.push(
                    patient,
                    Some(Entry::interval(
                        row.from.at_midnight(),
                        row.to.at_midnight(),
                        Payload::Episode(row.kind),
                        SourceKind::Municipal,
                    )),
                );
            }
        }
        DeltaFormat::Prescriptions => {
            let (rows, issues) = adapters::parse_prescriptions(text);
            batch.rows_read = rows.len() + issues.len();
            batch.parse_errors = issues.len();
            for row in rows {
                let Some(patient) = resolve(registry, &row.raw_patient, &mut batch) else {
                    continue;
                };
                grouped.push(
                    patient,
                    Some(Entry::event(
                        row.time,
                        Payload::Medication(row.atc),
                        SourceKind::Prescription,
                    )),
                );
            }
        }
    }
    batch.deltas = grouped.deltas;
    batch
}

fn resolve(
    registry: &IdentityRegistry,
    raw: &str,
    batch: &mut DeltaBatch,
) -> Option<Patient> {
    match registry.resolve(raw).and_then(|id| registry.patient(id)) {
        Some(p) => Some(*p),
        None => {
            batch.unlinked_rows += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_model::{PatientId, Sex};
    use pastas_time::Date;

    fn registry() -> IdentityRegistry {
        let mut r = IdentityRegistry::new();
        r.register(1, Date::new(1950, 1, 1).unwrap(), Sex::Female);
        r.register(2, Date::new(1940, 6, 1).unwrap(), Sex::Male);
        r
    }

    #[test]
    fn format_names_round_trip() {
        for f in DeltaFormat::ALL {
            assert_eq!(DeltaFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(DeltaFormat::from_name("csv"), None);
    }

    #[test]
    fn persons_delta_registers_and_emits_entryless_deltas() {
        let mut r = registry();
        let batch = parse_delta(
            DeltaFormat::Persons,
            "nin;birth_date;sex\nNIN-0000009;1960-02-03;M\nbad;row\n",
            &mut r,
        );
        assert_eq!(batch.rows_read, 2);
        assert_eq!(batch.parse_errors, 1);
        assert_eq!(batch.deltas.len(), 1);
        assert_eq!(batch.deltas[0].patient.id, PatientId(9));
        assert!(batch.deltas[0].entries.is_empty());
        assert_eq!(r.len(), 3, "new person registered for later deltas");
    }

    #[test]
    fn claims_delta_follows_batch_conventions() {
        let mut r = registry();
        let batch = parse_delta(
            DeltaFormat::Claims,
            "claim_id;patient;date;provider;icpc;note\n\
             K1;NIN-0000001;04.05.2013;SPEC;T90;BT 150/90\n\
             K2;NIN-0000099;04.05.2013;GP;T90;\n",
            &mut r,
        );
        assert_eq!(batch.rows_read, 2);
        assert_eq!(batch.unlinked_rows, 1);
        assert_eq!(batch.measurements_extracted, 2, "systolic + diastolic");
        assert_eq!(batch.deltas.len(), 1);
        let d = &batch.deltas[0];
        assert_eq!(d.entries.len(), 3);
        // Diagnosis at noon, attributed to the specialist.
        assert_eq!(d.entries[0].source(), pastas_model::SourceKind::Specialist);
        assert_eq!(
            d.entries[0].start(),
            Date::new(2013, 5, 4).unwrap().at_midnight() + pastas_time::Duration::hours(12)
        );
        assert!(matches!(d.entries[0].payload(), Payload::Diagnosis(c) if c.value == "T90"));
    }

    #[test]
    fn hospital_delta_emits_interval_plus_admission_diagnosis() {
        let mut r = registry();
        let batch = parse_delta(
            DeltaFormat::Hospital,
            "episode_id,patient,admitted,discharged,icd10_main,care_level\n\
             E1,00000002,2013-06-01,2013-06-05,E11,inpatient\n",
            &mut r,
        );
        let d = &batch.deltas[0];
        assert_eq!(d.patient.id, PatientId(2));
        assert_eq!(d.entries.len(), 2);
        assert!(d.entries[0].is_interval());
        assert_eq!(d.entries[1].start(), Date::new(2013, 6, 1).unwrap().at_midnight());
        assert_eq!(d.entries[0].source(), pastas_model::SourceKind::Hospital);
    }

    #[test]
    fn municipal_and_prescription_deltas_parse() {
        let mut r = registry();
        let m = parse_delta(
            DeltaFormat::Municipal,
            "patient|service|from|to\nM1|home_care|2013-07-01|2013-09-01\n",
            &mut r,
        );
        assert_eq!(m.entries(), 1);
        assert!(m.deltas[0].entries[0].is_interval());
        let p = parse_delta(
            DeltaFormat::Prescriptions,
            "patient\tdispensed\tatc\tddd\n1\t2013-05-04T12:00:00\tA10BA02\t30\n",
            &mut r,
        );
        assert_eq!(p.entries(), 1);
        assert!(matches!(
            p.deltas[0].entries[0].payload(),
            Payload::Medication(c) if c.value == "A10BA02"
        ));
    }

    #[test]
    fn rows_of_one_patient_coalesce_in_first_appearance_order() {
        let mut r = registry();
        let batch = parse_delta(
            DeltaFormat::Claims,
            "claim_id;patient;date;provider;icpc;note\n\
             K1;NIN-0000002;04.05.2013;GP;T90;\n\
             K2;NIN-0000001;05.05.2013;GP;K74;\n\
             K3;NIN-0000002;06.05.2013;GP;K86;\n",
            &mut r,
        );
        assert_eq!(batch.deltas.len(), 2);
        assert_eq!(batch.deltas[0].patient.id, PatientId(2));
        assert_eq!(batch.deltas[0].entries.len(), 2);
        assert_eq!(batch.deltas[1].patient.id, PatientId(1));
    }

    /// Parity check: a delta-parsed increment carries the same entries
    /// the batch aggregate loads from identical rows.
    #[test]
    fn delta_entries_match_the_batch_pipeline() {
        use crate::aggregate::{aggregate, entry_fingerprint, SourceTexts};
        let persons = "nin;birth_date;sex\nNIN-0000001;1950-01-01;F\n";
        let claims = "claim_id;patient;date;provider;icpc;note\n\
                      K1;NIN-0000001;04.05.2013;GP;T90;HbA1c 7.2 %\n";
        let (collection, _) = aggregate(SourceTexts {
            persons,
            claims,
            hospital: "h\n",
            municipal: "h\n",
            prescriptions: "h\n",
        });
        let mut r = IdentityRegistry::new();
        parse_delta(DeltaFormat::Persons, persons, &mut r);
        let batch = parse_delta(DeltaFormat::Claims, claims, &mut r);
        let streamed: std::collections::HashSet<_> = batch
            .deltas
            .iter()
            .flat_map(|d| d.entries.iter().map(|e| entry_fingerprint(d.patient.id.0, e)))
            .collect();
        let loaded: std::collections::HashSet<_> = collection
            .iter()
            .flat_map(|h| {
                h.entries()
                    .iter()
                    .map(|e| entry_fingerprint(h.id().0, &e.to_entry()))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(streamed, loaded);
    }
}
