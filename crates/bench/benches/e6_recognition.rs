//! E6 — §IV: the patient-recognition study (92% / 7% / 1%).
//!
//! Prints the reproduction of the paper's split on the selected chronic
//! cohort, a severity sweep (the sensitivity analysis the paper lacks),
//! and benches the simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_core::{simulate_study, RecognitionModel};
use pastas_query::QueryBuilder;

fn bench(c: &mut Criterion) {
    header(
        "E6: recognition study",
        "92% recognized / 7% did not remember / 1% everything wrong (13,000 patients)",
    );
    let n = (base_scale() * 2).max(8_000);
    let collection = cohort(n);
    let chronic = QueryBuilder::new()
        .has_code("T90|T89|K74|K77|K86|R95|P76")
        .expect("regex")
        .build();
    let study_cohort = collection.extract(|h| chronic.matches(h));
    eprintln!("study cohort: {} of {} patients", study_cohort.len(), n);

    let base = simulate_study(&study_cohort, &RecognitionModel::default(), 2014);
    eprintln!(
        "default error model → recognized {:.1}% / not remembered {:.1}% / all wrong {:.1}%",
        100.0 * base.recognized,
        100.0 * base.not_remembered,
        100.0 * base.all_wrong
    );

    eprintln!("{:>9} {:>12} {:>15} {:>11}", "severity", "recognized", "not remembered", "all wrong");
    for severity in [0.0f64, 1.0, 2.0, 4.0, 8.0] {
        let model = RecognitionModel {
            record_swap_prob: 0.01 * severity,
            source_dropout: 0.01 * severity,
            ..RecognitionModel::default()
        };
        let o = simulate_study(&study_cohort, &model, 2014 + severity as u64);
        eprintln!(
            "{:>8}× {:>11.1}% {:>14.1}% {:>10.1}%",
            severity,
            100.0 * o.recognized,
            100.0 * o.not_remembered,
            100.0 * o.all_wrong
        );
    }

    c.bench_function("e6_simulate_study", |b| {
        b.iter(|| simulate_study(&study_cohort, &RecognitionModel::default(), 7))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
