//! E3 — Fig. 2(b): graph crowding vs the timeline design.
//!
//! The paper: zoomed out, the merged graph of several hundred patients "was
//! basically a web of edges" — "virtually unreadable". This bench computes
//! the crowding metrics (nodes, edges, crossings, density) for NSEPter
//! graphs of growing cohorts and prints them against the timeline view's
//! per-row footprint, plus the layout+metrics cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_codes::Code;
use pastas_graph::{crowding, layout, merge_neighbors, merge_on_regex, DiGraph};
use pastas_regex::Regex;
use pastas_viz::{TimelineOptions, TimelineView, Viewport};

fn bench(c: &mut Criterion) {
    header(
        "E3: crowding (Fig. 2b)",
        "graphs of several hundred patients become a web of edges; the timeline stays one row per patient",
    );
    let n = base_scale();
    let collection = cohort(n);
    let stats = collection.stats();
    let re = Regex::new("T90").expect("regex");

    eprintln!(
        "{:>9} {:>8} {:>8} {:>11} {:>9} {:>10} | timeline elements",
        "histories", "nodes", "edges", "crossings", "density", "maxlayer"
    );
    let sizes = [50usize, 150, 400, 800];
    for &size in &sizes {
        let size = size.min(n);
        let seqs: Vec<Vec<Code>> = collection
            .iter()
            .take(size)
            .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
            .collect();
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re);
        merge_neighbors(&mut g, &merged, 2);
        let l = layout(&g);
        let m = crowding(&g, &l);

        // The timeline comparison: same histories, one row each.
        let view = TimelineView::new(&collection, TimelineOptions::default());
        let vp = Viewport::new(
            stats.first.unwrap(),
            stats.last.unwrap(),
            size as f64,
            1280.0,
            720.0,
        );
        let (scene, _) = view.layout(&vp);
        eprintln!(
            "{:>9} {:>8} {:>8} {:>11} {:>9.2} {:>10} | {}",
            size, m.nodes, m.edges, m.crossings, m.density, m.max_layer_size,
            scene.len()
        );
    }

    let mut group = c.benchmark_group("e3_graph_layout_and_metrics");
    group.sample_size(10);
    for &size in &[150usize, 800] {
        let size = size.min(n);
        let seqs: Vec<Vec<Code>> = collection
            .iter()
            .take(size)
            .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
            .collect();
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re);
        merge_neighbors(&mut g, &merged, 2);
        group.bench_with_input(BenchmarkId::from_parameter(size), &g, |b, g| {
            b.iter(|| {
                let l = layout(g);
                crowding(g, &l)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
