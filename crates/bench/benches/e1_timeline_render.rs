//! E1 — Fig. 1: the main workbench window.
//!
//! Measures the two halves of producing the cohort timeline — layout
//! (scene + hit map) and SVG serialization — as the number of *visible*
//! rows grows. The paper's conclusion ("usable, but it can be challenging
//! to use for very large data sets") predicts layout cost growing with
//! visible rows, not with collection size; both series are measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_viz::{svg, TimelineOptions, TimelineView, Viewport};

fn bench(c: &mut Criterion) {
    header("E1: timeline render (Fig. 1)", "the main window shows a cohort of histories as annotated bars");
    let n = base_scale();
    let collection = cohort(n);
    let stats = collection.stats();
    eprintln!("cohort: {} patients, {} entries", stats.patients, stats.entries);

    let mut group = c.benchmark_group("e1_layout_by_visible_rows");
    group.sample_size(20);
    for rows in [20usize, 100, 500, 2_000] {
        let rows = rows.min(n);
        let view = TimelineView::new(&collection, TimelineOptions::default());
        let vp = Viewport::new(
            stats.first.unwrap(),
            stats.last.unwrap(),
            rows as f64,
            1280.0,
            720.0,
        );
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| view.layout(&vp))
        });
        let (scene, hits) = view.layout(&vp);
        eprintln!(
            "  rows={rows}: {} scene elements, {} hit regions",
            scene.len(),
            hits.len()
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e1_svg_serialize");
    group.sample_size(20);
    for rows in [100usize, 2_000] {
        let rows = rows.min(n);
        let view = TimelineView::new(&collection, TimelineOptions::default());
        let vp = Viewport::new(
            stats.first.unwrap(),
            stats.last.unwrap(),
            rows as f64,
            1280.0,
            720.0,
        );
        let (scene, _) = view.layout(&vp);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &scene, |b, scene| {
            b.iter(|| svg::render(scene))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
