//! E9 — ablation: NSEPter's serial merge vs alignment consensus under
//! noise.
//!
//! §II.A.1 says the serial merge "was not very noise-resilient … the order
//! in which the histories were merged, mattered"; §II.A.2's alignment
//! methods were the fix. This bench injects k single-position edits into
//! copies of a shared pathway and prints pathway-recovery (LCS fraction)
//! for both algorithms, then times them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastas_align::consensus::consensus_sequence;
use pastas_align::Scoring;
use pastas_bench::header;
use pastas_codes::Code;
use pastas_graph::merge::serial_pathway;
use pastas_graph::{merge_neighbors, merge_on_regex, DiGraph};
use pastas_regex::Regex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRUE_PATHWAY: [&str; 5] = ["A01", "T90", "K74", "K77", "A97"];

fn noisy_copies(n: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<Code>> {
    let noise = ["R05", "D01", "H71", "A04"];
    (0..n)
        .map(|_| {
            let mut s: Vec<&str> = TRUE_PATHWAY.to_vec();
            for _ in 0..k {
                match rng.gen_range(0..3) {
                    0 => s.insert(rng.gen_range(0..=s.len()), noise[rng.gen_range(0..4usize)]),
                    1 if s.len() > 2 => {
                        let at = rng.gen_range(0..s.len());
                        if s[at] != "T90" {
                            s.remove(at);
                        }
                    }
                    _ => {
                        let at = rng.gen_range(0..s.len());
                        if s[at] != "T90" {
                            s[at] = noise[rng.gen_range(0..4usize)];
                        }
                    }
                }
            }
            s.iter().map(|c| Code::icpc(c)).collect()
        })
        .collect()
}

fn lcs_len(a: &[Code], b: &[Code]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}

fn recovery(recovered: &[Code]) -> f64 {
    let truth: Vec<Code> = TRUE_PATHWAY.iter().map(|c| Code::icpc(c)).collect();
    lcs_len(recovered, &truth) as f64 / truth.len() as f64
}

fn nsepter(seqs: &[Vec<Code>]) -> Vec<Code> {
    let mut g = DiGraph::from_sequences(seqs);
    let re = Regex::new("T90").expect("regex");
    let merged = merge_on_regex(&mut g, &re);
    let Some(&anchor) = merged.first() else { return Vec::new() };
    merge_neighbors(&mut g, &merged, 4);
    serial_pathway(&g, anchor).into_iter().map(|v| Code::icpc(&v)).collect()
}

fn bench(c: &mut Criterion) {
    header(
        "E9: merge noise ablation",
        "NSEPter's serial merge is noise-fragile and order-dependent; alignment consensus is the fix",
    );
    let scoring = Scoring::default();

    eprintln!("{:>7} {:>16} {:>14}", "edits k", "consensus recov", "NSEPter recov");
    for k in [0usize, 1, 2, 3, 4, 6] {
        let mut rng = StdRng::seed_from_u64(100 + k as u64);
        let trials = 20;
        let (mut c_sum, mut n_sum) = (0.0, 0.0);
        for _ in 0..trials {
            let seqs = noisy_copies(10, k, &mut rng);
            c_sum += recovery(&consensus_sequence(&seqs, 0.5, &scoring));
            n_sum += recovery(&nsepter(&seqs));
        }
        eprintln!(
            "{:>7} {:>15.1}% {:>13.1}%",
            k,
            100.0 * c_sum / trials as f64,
            100.0 * n_sum / trials as f64
        );
    }

    let mut rng = StdRng::seed_from_u64(5);
    let seqs = noisy_copies(10, 2, &mut rng);
    let mut group = c.benchmark_group("e9_merge_time");
    group.bench_with_input(BenchmarkId::new("consensus", 10), &seqs, |b, seqs| {
        b.iter(|| consensus_sequence(seqs, 0.5, &scoring))
    });
    group.bench_with_input(BenchmarkId::new("nsepter", 10), &seqs, |b, seqs| {
        b.iter(|| nsepter(seqs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
