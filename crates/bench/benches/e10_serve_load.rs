//! E10-serve — loopback load test of the `pastas-serve` HTTP layer.
//!
//! The serving claim under test: against the paper-scale collection
//! (168,000 patients; run with `PASTAS_BENCH_SCALE=168000`) the server
//! sustains ≥ 1,000 req/s on `POST /select` with a warm response cache,
//! with zero worker panics and a clean graceful shutdown while clients are
//! still firing. Results go to stderr as a report row and to
//! `BENCH_serve.json` at the repo root as a machine-readable artifact.
//!
//! Not a criterion bench: the subject is a multi-threaded server, so the
//! harness is a plain `main` driving keep-alive client threads.

use pastas_bench::{base_scale, cohort, header};
use pastas_core::Workbench;
use pastas_serve::client::Conn;
use pastas_serve::{serve, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERIES: [&str; 4] = [
    "has(T90)",
    "has(K77|I50.*)",
    "has(T90) and age(50..80)",
    "count(any) >= 20 and has(A.*)",
];

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    header(
        "E10-serve: loopback load",
        "multiple analysts share one loaded collection; interactions stay interactive",
    );
    let patients = base_scale();
    let clients: usize = std::env::var("PASTAS_BENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(4, 16)
        });
    let per_client: usize = std::env::var("PASTAS_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    eprintln!("generating {patients} patients …");
    let t0 = Instant::now();
    let workbench = Workbench::from_collection(cohort(patients));
    eprintln!("loaded in {:.1?}", t0.elapsed());

    let handle = serve(
        workbench,
        ServerConfig { queue_capacity: 4096, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    let timeout = Duration::from_secs(60);

    // Warm the response cache: every query answered once, so the measured
    // phase exercises the cached path the way a dashboard's steady state
    // does (first-hit costs are E5's subject, not this bench's).
    let mut warm = Conn::connect(addr, timeout).expect("connect");
    for q in QUERIES {
        let resp = warm.post("/select?count_only=1", q.as_bytes()).expect("warm");
        assert_eq!(resp.status, 200, "warm-up {q} failed: {}", resp.body_str());
    }
    // Close the warm connection: an open keep-alive session pins a worker
    // until the idle timeout, which would skew a small worker pool.
    drop(warm);

    // Measured phase: keep-alive clients hammering POST /select.
    let errors = Arc::new(AtomicU64::new(0));
    let t_load = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut conn = Conn::connect(addr, timeout).expect("connect");
                for i in 0..per_client {
                    let q = QUERIES[(c + i) % QUERIES.len()];
                    let t = Instant::now();
                    match conn.post("/select?count_only=1", q.as_bytes()) {
                        Ok(resp) if resp.status == 200 => {
                            latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            conn = Conn::connect(addr, timeout).expect("reconnect");
                        }
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    for t in threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let elapsed = t_load.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let served = latencies.len();
    let throughput = served as f64 / elapsed;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let p100 = latencies.last().copied().unwrap_or(0.0);

    // Graceful shutdown *under load*: a fresh wave of clients is firing
    // while the drain runs; anything not admitted may fail, but nothing
    // may panic and the handle must come back.
    let under_load: Vec<_> = (0..clients.min(4))
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let Ok(mut conn) = Conn::connect(addr, Duration::from_secs(2)) else {
                        return;
                    };
                    let _ = conn.post("/select?count_only=1", b"has(T90)");
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let pool = handle.ctx().pool_stats.get().cloned();
    handle.shutdown();
    for t in under_load {
        t.join().expect("shutdown-wave client panicked");
    }
    let panics = pool.as_ref().map(|p| p.panic_count()).unwrap_or(0);
    assert_eq!(panics, 0, "worker panics under load");

    let target_met = throughput >= 1_000.0;
    eprintln!(
        "{patients} patients, {clients} clients × {per_client} reqs: \
         {throughput:.0} req/s  p50 {p50:.3} ms  p99 {p99:.3} ms  max {p100:.1} ms  \
         errors {}  panics {panics}  [target ≥1000 req/s: {}]",
        errors.load(Ordering::Relaxed),
        if target_met { "met" } else { "NOT met at this scale" },
    );

    let json = format!(
        "{{\"experiment\":\"e10_serve_load\",\"patients\":{patients},\
         \"clients\":{clients},\"requests\":{served},\
         \"elapsed_s\":{elapsed:.3},\"throughput_rps\":{throughput:.1},\
         \"p50_ms\":{p50:.4},\"p99_ms\":{p99:.4},\
         \"errors\":{},\"worker_panics\":{panics},\
         \"target_rps\":1000,\"target_met\":{target_met}}}\n",
        errors.load(Ordering::Relaxed),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
}
