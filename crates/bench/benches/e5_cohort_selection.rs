//! E5 — §IV / Fig. 4: cohort selection by predefined characteristics.
//!
//! The paper: "select 13,000 patients from a data set of 168,000 patients"
//! (selectivity 7.7%). This bench runs the diabetes selection at the bench
//! scale, verifies the selectivity lands near 7.7%, and runs the
//! indexed-vs-scan ablation. The full 168k measurement lives in
//! `examples/cohort_selection_168k.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header, par_ratio_row};
use pastas_query::index::select_scan;
use pastas_query::{CodeIndex, QueryBuilder};

fn bench(c: &mut Criterion) {
    header(
        "E5: cohort selection (13,000 of 168,000 = 7.7%)",
        "select patients by predefined characteristics via the Fig. 4 query builder",
    );
    let n = base_scale();
    let collection = cohort(n);
    let index = CodeIndex::build(&collection);
    let query = QueryBuilder::new().has_code("T90|T89|E1[014].*").expect("regex").build();

    let selected = index.select(&collection, &query);
    assert_eq!(selected, select_scan(&collection, &query), "paths must agree");
    eprintln!(
        "selected {} of {} ({:.2}%; paper 7.7%) — vocabulary {} codes",
        selected.len(),
        n,
        100.0 * selected.len() as f64 / n as f64,
        index.vocabulary_size()
    );
    pastas_bench::memory_row(&collection);

    c.bench_function("e5_selection_indexed", |b| {
        b.iter(|| index.select(&collection, &query))
    });
    let mut group = c.benchmark_group("e5_selection_scan");
    group.sample_size(10);
    group.bench_function("full_scan", |b| b.iter(|| select_scan(&collection, &query)));
    group.finish();

    c.bench_function("e5_index_build", |b| b.iter(|| CodeIndex::build(&collection)));

    // Serial-vs-parallel ratios for the three hot paths (the parallel side
    // honours PASTAS_THREADS; both sides compute identical results).
    let serial_selected = pastas_par::with_threads(1, || index.select(&collection, &query));
    assert_eq!(serial_selected, selected, "serial and parallel paths agree");
    par_ratio_row("e5 indexed selection", || {
        std::hint::black_box(index.select(&collection, &query));
    });
    par_ratio_row("e5 full scan", || {
        std::hint::black_box(select_scan(&collection, &query));
    });
    par_ratio_row("e5 index build", || {
        std::hint::black_box(CodeIndex::build(&collection));
    });

    // A compound query with age and count clauses (the realistic Fig. 4
    // dialog contents).
    let compound = QueryBuilder::new()
        .has_code("T90|T89|E1[014].*")
        .expect("regex")
        .age_between(pastas_time::Date::new(2013, 1, 1).expect("date"), 50, 120)
        .count_at_least(pastas_query::EntryPredicate::IsDiagnosis, 3)
        .build();
    let compound_selected = index.select(&collection, &compound);
    eprintln!(
        "compound query (diabetes ∧ age ≥ 50 ∧ ≥3 diagnoses): {} patients",
        compound_selected.len()
    );
    c.bench_function("e5_selection_compound", |b| {
        b.iter(|| index.select(&collection, &compound))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
