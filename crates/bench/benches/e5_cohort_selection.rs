//! E5 — §IV / Fig. 4: cohort selection by predefined characteristics.
//!
//! The paper: "select 13,000 patients from a data set of 168,000 patients"
//! (selectivity 7.7%). This bench runs the diabetes selection at the bench
//! scale, verifies the selectivity lands near 7.7%, and runs the
//! indexed-vs-scan ablation. The full 168k measurement lives in
//! `examples/cohort_selection_168k.rs`.
//!
//! The plan ablation now runs in tiers: the bench scale (median-of-5 on
//! both paths), one million patients on the sharded store (single scan as
//! the differential oracle — a 1M scan is seconds — with median planned
//! timings), and ten million behind `--full`. All tiers land in the
//! `"plan"` section of `BENCH_plan.json` (shared with E13's temporal
//! tiers) with the compressed-postings bytes and shard count.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header, median_ms, par_ratio_row};
use pastas_model::MemoryFootprint;
use pastas_query::index::select_scan;
use pastas_query::{CodeIndex, HistoryQuery, QueryBuilder, QueryPlan};
use pastas_synth::{generate_collection, SynthConfig};
use std::fmt::Write as _;

/// The three query shapes the planner exists for: positive, negated, and
/// compound-with-negation. The old engine index-served only the first;
/// the other two fell back to a full scan.
fn plan_shapes() -> [(&'static str, HistoryQuery); 3] {
    let positive = QueryBuilder::new().has_code("T90|T89|E1[014].*").expect("regex").build();
    let negated = QueryBuilder::new().lacks_code("T90|T89|E1[014].*").expect("regex").build();
    let compound_negated = QueryBuilder::new()
        .has_code("K8[5-7]|I1[0-5].*")
        .expect("regex")
        .lacks_code("T90|T89|E1[014].*")
        .expect("regex")
        .age_between(pastas_time::Date::new(2013, 1, 1).expect("date"), 40, 120)
        .build();
    [("positive", positive), ("negated", negated), ("compound_negated", compound_negated)]
}

/// Run the scan-vs-planned ablation for one patient tier and append its
/// JSON object to `json`. `scan_medians` controls whether the scan side
/// is median-of-5 (bench scale) or a single differential run (1M/10M,
/// where one scan is seconds and five per shape would dominate the bench).
fn plan_tier(json: &mut String, patients: usize, shard_patients: usize, scan_medians: bool) {
    eprintln!("\n-- plan tier: {patients} patients (shard_patients {shard_patients}) --");
    let config = SynthConfig { shard_patients, ..SynthConfig::with_patients(patients) };
    let collection = generate_collection(config, 2016);
    let index = CodeIndex::build(&collection);
    let fp = index.footprint();
    let arena_bytes = collection.sharded_store().total_bytes();
    eprintln!(
        "index: {} shards, postings {} B compressed vs {} B as Vec<u32> ({:.2}x), \
         arenas {} B",
        fp.shards,
        fp.postings_compressed_bytes,
        fp.postings_uncompressed_bytes_est,
        fp.postings_uncompressed_bytes_est as f64 / fp.postings_compressed_bytes.max(1) as f64,
        arena_bytes
    );
    let _ = writeln!(
        json,
        "    {{\n      \"patients\": {patients},\n      \"shards\": {},\n      \
         \"postings_bytes\": {},\n      \"queries\": [",
        fp.shards, fp.postings_compressed_bytes
    );
    eprintln!("query shape        | scan ms | planned ms | speedup | matched | full_scan");
    let shapes = plan_shapes();
    for (i, (name, q)) in shapes.iter().enumerate() {
        let plan = QueryPlan::build(&index, &collection, q);
        let planned = plan.execute(&collection, &index);
        let (scanned, scan_ms) = if scan_medians {
            let scanned = select_scan(&collection, q);
            let ms = median_ms(|| {
                std::hint::black_box(select_scan(&collection, q));
            });
            (scanned, ms)
        } else {
            let t = std::time::Instant::now();
            let scanned = select_scan(&collection, q);
            (scanned, t.elapsed().as_secs_f64() * 1e3)
        };
        assert_eq!(planned, scanned, "{name}: planner must agree with the scan");
        let plan_ms = median_ms(|| {
            std::hint::black_box(plan.execute(&collection, &index));
        });
        eprintln!(
            "{name:<18} | {scan_ms:>7.2} | {plan_ms:>10.2} | {:>6.1}x | {:>7} | {}",
            scan_ms / plan_ms,
            planned.len(),
            plan.uses_full_scan()
        );
        let _ = write!(
            json,
            "        {{\"name\": \"{name}\", \"scan_ms\": {scan_ms:.3}, \
             \"planned_ms\": {plan_ms:.3}, \"matched\": {}, \"full_scan\": {}}}",
            planned.len(),
            plan.uses_full_scan()
        );
        json.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    json.push_str("      ]\n    }");
}

fn bench(c: &mut Criterion) {
    header(
        "E5: cohort selection (13,000 of 168,000 = 7.7%)",
        "select patients by predefined characteristics via the Fig. 4 query builder",
    );
    let n = base_scale();
    let collection = cohort(n);
    let index = CodeIndex::build(&collection);
    let query = QueryBuilder::new().has_code("T90|T89|E1[014].*").expect("regex").build();

    let selected = index.select(&collection, &query);
    assert_eq!(selected, select_scan(&collection, &query), "paths must agree");
    eprintln!(
        "selected {} of {} ({:.2}%; paper 7.7%) — vocabulary {} codes",
        selected.len(),
        n,
        100.0 * selected.len() as f64 / n as f64,
        index.vocabulary_size()
    );
    // Memory: arena bytes plus the compressed-postings accounting, and the
    // per-shard arena split when the store is sharded.
    let fp = index.footprint();
    let footprint = MemoryFootprint::measure(&collection).with_postings(
        fp.postings,
        fp.postings_compressed_bytes,
        fp.postings_uncompressed_bytes_est,
    );
    eprintln!("{}", footprint.summary());
    let shard_bytes = collection.sharded_store().shard_bytes();
    eprintln!(
        "arenas: {} shard{}, bytes per shard {:?}",
        shard_bytes.len(),
        if shard_bytes.len() == 1 { "" } else { "s" },
        shard_bytes
    );

    c.bench_function("e5_selection_indexed", |b| {
        b.iter(|| index.select(&collection, &query))
    });
    let mut group = c.benchmark_group("e5_selection_scan");
    group.sample_size(10);
    group.bench_function("full_scan", |b| b.iter(|| select_scan(&collection, &query)));
    group.finish();

    c.bench_function("e5_index_build", |b| b.iter(|| CodeIndex::build(&collection)));

    // Serial-vs-parallel ratios for the three hot paths (the parallel side
    // honours PASTAS_THREADS; both sides compute identical results).
    let serial_selected = pastas_par::with_threads(1, || index.select(&collection, &query));
    assert_eq!(serial_selected, selected, "serial and parallel paths agree");
    par_ratio_row("e5 indexed selection", || {
        std::hint::black_box(index.select(&collection, &query));
    });
    par_ratio_row("e5 full scan", || {
        std::hint::black_box(select_scan(&collection, &query));
    });
    par_ratio_row("e5 index build", || {
        std::hint::black_box(CodeIndex::build(&collection));
    });

    // A compound query with age and count clauses (the realistic Fig. 4
    // dialog contents).
    let compound = QueryBuilder::new()
        .has_code("T90|T89|E1[014].*")
        .expect("regex")
        .age_between(pastas_time::Date::new(2013, 1, 1).expect("date"), 50, 120)
        .count_at_least(pastas_query::EntryPredicate::IsDiagnosis, 3)
        .build();
    let compound_selected = index.select(&collection, &compound);
    eprintln!(
        "compound query (diabetes ∧ age ≥ 50 ∧ ≥3 diagnoses): {} patients",
        compound_selected.len()
    );
    c.bench_function("e5_selection_compound", |b| {
        b.iter(|| index.select(&collection, &compound))
    });

    // Scan-vs-planned ablation tiers → BENCH_plan.json at the repo root.
    // Default: the bench scale plus one million sharded patients. `--full`
    // (cargo bench --bench e5_cohort_selection -- --full) adds ten million.
    drop(collection);
    let full = std::env::args().any(|a| a == "--full");
    let mut json = String::from("{\n  \"tiers\": [\n");
    plan_tier(&mut json, n, 0, true);
    json.push_str(",\n");
    plan_tier(&mut json, 1_000_000, 65_536, false);
    if full {
        json.push_str(",\n");
        plan_tier(&mut json, 10_000_000, 65_536, false);
    }
    json.push_str("\n  ]\n}\n");
    // BENCH_plan.json is shared with E13's temporal tiers: merge this
    // bench's section instead of overwriting the file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    pastas_bench::merge_bench_section(path, "plan", &json);
    eprintln!("merged \"plan\" tiers into {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
