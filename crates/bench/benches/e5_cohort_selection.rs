//! E5 — §IV / Fig. 4: cohort selection by predefined characteristics.
//!
//! The paper: "select 13,000 patients from a data set of 168,000 patients"
//! (selectivity 7.7%). This bench runs the diabetes selection at the bench
//! scale, verifies the selectivity lands near 7.7%, and runs the
//! indexed-vs-scan ablation. The full 168k measurement lives in
//! `examples/cohort_selection_168k.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header, median_ms, par_ratio_row};
use pastas_query::index::select_scan;
use pastas_query::{CodeIndex, QueryBuilder, QueryPlan};
use std::fmt::Write as _;

fn bench(c: &mut Criterion) {
    header(
        "E5: cohort selection (13,000 of 168,000 = 7.7%)",
        "select patients by predefined characteristics via the Fig. 4 query builder",
    );
    let n = base_scale();
    let collection = cohort(n);
    let index = CodeIndex::build(&collection);
    let query = QueryBuilder::new().has_code("T90|T89|E1[014].*").expect("regex").build();

    let selected = index.select(&collection, &query);
    assert_eq!(selected, select_scan(&collection, &query), "paths must agree");
    eprintln!(
        "selected {} of {} ({:.2}%; paper 7.7%) — vocabulary {} codes",
        selected.len(),
        n,
        100.0 * selected.len() as f64 / n as f64,
        index.vocabulary_size()
    );
    pastas_bench::memory_row(&collection);

    c.bench_function("e5_selection_indexed", |b| {
        b.iter(|| index.select(&collection, &query))
    });
    let mut group = c.benchmark_group("e5_selection_scan");
    group.sample_size(10);
    group.bench_function("full_scan", |b| b.iter(|| select_scan(&collection, &query)));
    group.finish();

    c.bench_function("e5_index_build", |b| b.iter(|| CodeIndex::build(&collection)));

    // Serial-vs-parallel ratios for the three hot paths (the parallel side
    // honours PASTAS_THREADS; both sides compute identical results).
    let serial_selected = pastas_par::with_threads(1, || index.select(&collection, &query));
    assert_eq!(serial_selected, selected, "serial and parallel paths agree");
    par_ratio_row("e5 indexed selection", || {
        std::hint::black_box(index.select(&collection, &query));
    });
    par_ratio_row("e5 full scan", || {
        std::hint::black_box(select_scan(&collection, &query));
    });
    par_ratio_row("e5 index build", || {
        std::hint::black_box(CodeIndex::build(&collection));
    });

    // A compound query with age and count clauses (the realistic Fig. 4
    // dialog contents).
    let compound = QueryBuilder::new()
        .has_code("T90|T89|E1[014].*")
        .expect("regex")
        .age_between(pastas_time::Date::new(2013, 1, 1).expect("date"), 50, 120)
        .count_at_least(pastas_query::EntryPredicate::IsDiagnosis, 3)
        .build();
    let compound_selected = index.select(&collection, &compound);
    eprintln!(
        "compound query (diabetes ∧ age ≥ 50 ∧ ≥3 diagnoses): {} patients",
        compound_selected.len()
    );
    c.bench_function("e5_selection_compound", |b| {
        b.iter(|| index.select(&collection, &compound))
    });

    // Scan-vs-planned ablation across the query shapes the planner
    // exists for: positive, negated, and compound-with-negation. The old
    // engine index-served only the first; the other two fell back to a
    // full scan. Writes BENCH_plan.json at the repo root.
    let negated = QueryBuilder::new().lacks_code("T90|T89|E1[014].*").expect("regex").build();
    let compound_negated = QueryBuilder::new()
        .has_code("K8[5-7]|I1[0-5].*")
        .expect("regex")
        .lacks_code("T90|T89|E1[014].*")
        .expect("regex")
        .age_between(pastas_time::Date::new(2013, 1, 1).expect("date"), 40, 120)
        .build();
    let shapes: [(&str, &pastas_query::HistoryQuery); 3] = [
        ("positive", &query),
        ("negated", &negated),
        ("compound_negated", &compound_negated),
    ];
    let mut json = String::from("{\n  \"experiment\": \"plan\",\n");
    let _ = writeln!(json, "  \"patients\": {n},");
    json.push_str("  \"queries\": [\n");
    eprintln!("query shape        | scan ms | planned ms | speedup | matched | full_scan");
    for (i, (name, q)) in shapes.iter().enumerate() {
        let plan = QueryPlan::build(&index, &collection, q);
        let planned = plan.execute(&collection, &index);
        let scanned = select_scan(&collection, q);
        assert_eq!(planned, scanned, "{name}: planner must agree with the scan");
        let scan_ms = median_ms(|| {
            std::hint::black_box(select_scan(&collection, q));
        });
        let plan_ms = median_ms(|| {
            std::hint::black_box(plan.execute(&collection, &index));
        });
        eprintln!(
            "{name:<18} | {scan_ms:>7.2} | {plan_ms:>10.2} | {:>6.1}x | {:>7} | {}",
            scan_ms / plan_ms,
            planned.len(),
            plan.uses_full_scan()
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"scan_ms\": {scan_ms:.3}, \"planned_ms\": {plan_ms:.3}, \
             \"matched\": {}, \"full_scan\": {}}}",
            planned.len(),
            plan.uses_full_scan()
        );
        json.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    std::fs::write(path, &json).expect("write BENCH_plan.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
