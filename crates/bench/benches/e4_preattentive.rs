//! E4 — Fig. 3 / §II.B: preattentive vs conjunction search.
//!
//! Regenerates the flat-vs-linear response-time curves: feature search RT
//! is independent of distractor count; conjunction search grows linearly.
//! Prints the mean-RT series and fitted slopes, and benches the simulator
//! itself (it sits inside the E8 interaction loop).

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::header;
use pastas_perception::search::{RtModel, SearchExperiment};
use pastas_perception::SearchCondition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    header(
        "E4: visual search (Fig. 3)",
        "feature search time is independent of distractors; conjunction search grows linearly",
    );
    let exp = SearchExperiment {
        set_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
        trials: 400,
        model: RtModel::default(),
    };
    let mut rng = StdRng::seed_from_u64(3);
    let feature = exp.run(SearchCondition::Feature, &mut rng);
    let conjunction = exp.run(SearchCondition::Conjunction, &mut rng);

    eprintln!("{:>9} {:>14} {:>18}", "set size", "feature RT", "conjunction RT");
    for (i, &(n, f)) in feature.series.iter().enumerate() {
        eprintln!("{:>9} {:>11.0} ms {:>15.0} ms", n, f, conjunction.series[i].1);
    }
    eprintln!(
        "fitted slopes: feature {:.2} ms/item (≈0), conjunction {:.1} ms/item (paper: linear)",
        feature.slope, conjunction.slope
    );

    c.bench_function("e4_run_full_sweep", |b| {
        let small = SearchExperiment {
            set_sizes: vec![4, 16, 64, 256],
            trials: 100,
            model: RtModel::default(),
        };
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            (
                small.run(SearchCondition::Feature, &mut rng).slope,
                small.run(SearchCondition::Conjunction, &mut rng).slope,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
