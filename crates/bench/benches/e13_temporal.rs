//! E13 — ACR-style temporal query battery (ROADMAP: compile temporal
//! patterns to automata; index-accelerate them).
//!
//! The ACR benchmark (PAPERS.md) makes sequence-with-gap queries the
//! hard class: "diagnosis A, then within 90 days medication B". The old
//! engine answered every `seq(...)` clause by naive per-history residual
//! verification over the whole collection; the planner now lowers the
//! pattern's code-bearing steps into an index prefilter (posting-list
//! intersection) and runs the compiled token automaton only on the
//! surviving candidates, reported as a `PatternScan` operator.
//!
//! This bench runs a battery of 2–4 step gap-bounded shapes at the bench
//! scale (median-of-5 both paths) and at one million sharded patients
//! (single naive scan as the differential oracle, median planned
//! timings), with ten million behind `--full`. Each tier asserts the
//! planned result equals the naive residual scan; the 1M tier further
//! asserts the planner's ≥10x speedup claim. Results land in the
//! `"temporal"` section of `BENCH_plan.json`, merged alongside E5's
//! `"plan"` section.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header, median_ms, merge_bench_section, par_ratio_row};
use pastas_query::index::select_scan;
use pastas_query::{parse_query, CodeIndex, HistoryQuery, QueryPlan};
use pastas_synth::{generate_collection, SynthConfig};
use std::fmt::Write as _;

/// Parse reference date for age clauses — `seq(...)` itself never needs
/// it, but `parse_query` wants one.
fn reference_date() -> pastas_time::Date {
    pastas_time::Date::new(2013, 1, 1).expect("valid date")
}

/// The ACR-style battery: 2–4 step patterns with gap bounds, mixing
/// code-regex steps (which feed the index prefilter) with kind steps
/// (medication / interval / any, verified by the automaton only).
fn temporal_shapes() -> Vec<(&'static str, HistoryQuery)> {
    let texts: [(&'static str, &'static str); 4] = [
        ("two_step_gap", "seq(T90|T89|E1[014].* then[0d..3650d] K.*)"),
        ("two_step_tight", "seq(K8[5-7]|I1[0-5].* then[0d..90d] T90|T89|E1[014].*)"),
        (
            "three_step_medication",
            "seq(T90|T89|E1[014].* then[0d..730d] medication then[0d..365d] K.*)",
        ),
        // Three code-bearing steps intersect to a tight candidate set; a
        // wildcard-dominated tail (`any then interval`) would leave every
        // candidate doing heavy automaton work and erode the speedup —
        // candidates are enriched with the required codes, while the naive
        // scan fails most histories at the first anchor.
        (
            "four_step_mixed",
            "seq(K.* then[0d..365d] T90|T89|E1[014].* then[-30d..730d] K8[5-7]|I1[0-5].* then any)",
        ),
    ];
    texts
        .iter()
        .map(|(name, text)| {
            (*name, parse_query(text, reference_date()).expect("battery shape parses"))
        })
        .collect()
}

/// Run the naive-residual-vs-planned ablation for one patient tier and
/// append its JSON object to `json`. `naive_runs` is how many timed
/// naive scans feed the median: 5 at the bench scale, 3 at 1M (a single
/// 20–30 s sample is too noisy to assert a ratio against), 1 at 10M
/// (record-only). `require_geomean` enforces the ≥10x planner claim on
/// the battery's geometric-mean speedup — per-shape ratios sit at
/// 12–17x true value (the prefilter keeps ~6% of patients, capping the
/// ceiling near 17x) with enough machine noise that a per-shape hard
/// bar would flake.
fn temporal_tier(json: &mut String, patients: usize, shard_patients: usize, naive_runs: usize,
    require_geomean: Option<f64>) {
    eprintln!("\n-- temporal tier: {patients} patients (shard_patients {shard_patients}) --");
    let config = SynthConfig { shard_patients, ..SynthConfig::with_patients(patients) };
    let collection = generate_collection(config, 2016);
    let index = CodeIndex::build(&collection);
    let fp = index.footprint();
    let _ = writeln!(
        json,
        "    {{\n      \"patients\": {patients},\n      \"shards\": {},\n      \
         \"queries\": [",
        fp.shards
    );
    eprintln!(
        "query shape            | naive ms | planned ms | speedup | matched | candidates"
    );
    let shapes = temporal_shapes();
    let mut log_speedup_sum = 0.0f64;
    for (i, (name, q)) in shapes.iter().enumerate() {
        let plan = QueryPlan::build(&index, &collection, q);
        assert!(
            !plan.uses_full_scan(),
            "{name}: battery shapes carry code cover and must be prefiltered"
        );
        let (planned, stats) = plan.execute_stats(&collection, &index);
        let mut scanned = Vec::new();
        let mut naive_times: Vec<f64> = (0..naive_runs.max(1))
            .map(|_| {
                let t = std::time::Instant::now();
                scanned = select_scan(&collection, q);
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        naive_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let naive_ms = naive_times[naive_times.len() / 2];
        assert_eq!(planned, scanned, "{name}: automaton over candidates must agree with scan");
        let plan_ms = median_ms(|| {
            std::hint::black_box(plan.execute(&collection, &index));
        });
        let speedup = naive_ms / plan_ms.max(1e-9);
        log_speedup_sum += speedup.max(1e-9).ln();
        eprintln!(
            "{name:<22} | {naive_ms:>8.2} | {plan_ms:>10.2} | {speedup:>6.1}x | {:>7} | {}",
            planned.len(),
            stats.pattern_candidates
        );
        let _ = write!(
            json,
            "        {{\"name\": \"{name}\", \"naive_ms\": {naive_ms:.3}, \
             \"planned_ms\": {plan_ms:.3}, \"speedup\": {speedup:.1}, \"matched\": {}, \
             \"candidates\": {}}}",
            planned.len(),
            stats.pattern_candidates
        );
        json.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    let geomean = (log_speedup_sum / shapes.len() as f64).exp();
    eprintln!("battery geometric-mean speedup: {geomean:.1}x");
    if let Some(bar) = require_geomean {
        assert!(
            geomean >= bar,
            "battery geomean {geomean:.1}x < {bar}x at {patients} patients"
        );
    }
    let _ = write!(json, "      ],\n      \"geomean_speedup\": {geomean:.1}\n    }}");
}

fn bench(c: &mut Criterion) {
    header(
        "E13: temporal pattern automata (ACR-style sequence queries)",
        "seq-with-gap patterns compiled to token automata, index-prefiltered candidates",
    );
    let n = base_scale();
    let collection = cohort(n);
    let index = CodeIndex::build(&collection);
    let shapes = temporal_shapes();

    // Criterion rows: the planned path per shape, plus the naive residual
    // for the two-step shape as the ablation baseline.
    for (name, q) in &shapes {
        let plan = QueryPlan::build(&index, &collection, q);
        let (planned, stats) = plan.execute_stats(&collection, &index);
        eprintln!(
            "{name}: {} of {n} matched from {} candidate(s), {} automaton run(s)",
            planned.len(),
            stats.pattern_candidates,
            stats.pattern_automaton_runs
        );
        c.bench_function(&format!("e13_planned_{name}"), |b| {
            b.iter(|| plan.execute(&collection, &index))
        });
    }
    let (_, two_step) = &shapes[0];
    let mut group = c.benchmark_group("e13_naive_residual");
    group.sample_size(10);
    group.bench_function("two_step_gap", |b| b.iter(|| select_scan(&collection, two_step)));
    group.finish();

    // Serial-vs-parallel ratio for the planned path (candidate
    // verification fans out through pastas-par).
    let plan = QueryPlan::build(&index, &collection, two_step);
    par_ratio_row("e13 planned two_step_gap", || {
        std::hint::black_box(plan.execute(&collection, &index));
    });

    // Naive-vs-planned ablation tiers → the "temporal" section of
    // BENCH_plan.json (shared with E5's "plan" section). Default: bench
    // scale plus one million sharded patients; `--full` adds ten million.
    drop(collection);
    let full = std::env::args().any(|a| a == "--full");
    let mut json = String::from("{\n  \"tiers\": [\n");
    temporal_tier(&mut json, n, 0, 5, None);
    json.push_str(",\n");
    temporal_tier(&mut json, 1_000_000, 65_536, 3, Some(10.0));
    if full {
        json.push_str(",\n");
        temporal_tier(&mut json, 10_000_000, 65_536, 1, None);
    }
    json.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    merge_bench_section(path, "temporal", &json);
    eprintln!("merged \"temporal\" tiers into {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
