//! E8 — §II.C: the Shneiderman 0.1 s interactive-response budget.
//!
//! Measures every §IV interactive operation on a large collection: filter
//! toggle (re-layout), align, sort, zoom (re-layout at new viewport), and
//! hover hit-testing. The printed table marks which operations meet the
//! 100 ms budget at the bench scale — the paper's own conclusion ("can be
//! challenging to use for very large data sets") shows up as the
//! operations that grow with cohort size.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header, par_ratio_row};
use pastas_core::Workbench;
use pastas_query::{EntryPredicate, QueryBuilder, SortKey};
use std::time::Instant;

fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    // Median of 5 runs.
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[2]
}

fn bench(c: &mut Criterion) {
    header(
        "E8: interaction latency",
        "response times for mouse and typing actions should be less than 0.1 second",
    );
    let n = (base_scale() * 4).max(20_000);
    let collection = cohort(n);
    eprintln!("collection: {} patients, {} entries", n, collection.stats().entries);
    let mut wb = Workbench::from_collection(collection);
    let vp = wb.default_viewport(1280.0, 720.0);

    // The per-operation budget table.
    let query = QueryBuilder::new().has_code("T90|T89").expect("regex").build();
    // First call below populates the workbench selection cache, so the
    // uncached cost is measured against the index directly.
    let uncached = time_ms(|| {
        std::hint::black_box(wb.index().select(wb.collection(), &query));
    });
    // Negated and compound-with-negation shapes: before the planner these
    // were full scans; they must now sit inside the budget like the
    // positive shape does.
    let negated = QueryBuilder::new().lacks_code("T90|T89").expect("regex").build();
    let compound_negated = QueryBuilder::new()
        .has_code("K8[5-7]")
        .expect("regex")
        .lacks_code("T90|T89")
        .expect("regex")
        .build();
    let ops: Vec<(&str, f64)> = vec![
        ("select cohort (uncached)", uncached),
        ("re-select (cached)", time_ms(|| {
            std::hint::black_box(wb.select_positions(&query));
        })),
        ("select negated (uncached)", time_ms(|| {
            std::hint::black_box(wb.index().select(wb.collection(), &negated));
        })),
        ("select has∧lacks (uncached)", time_ms(|| {
            std::hint::black_box(wb.index().select(wb.collection(), &compound_negated));
        })),
        ("sort by utilization", time_ms(|| wb.sort(&SortKey::EntryCount))),
        ("align on T90", time_ms(|| {
            wb.align_on_code("T90").expect("regex");
        })),
        ("re-layout after filter", {
            wb.set_filter(Some(EntryPredicate::IsDiagnosis));
            let t = time_ms(|| {
                std::hint::black_box(wb.layout(&vp));
            });
            wb.set_filter(None);
            t
        }),
        ("zoom re-layout", time_ms(|| {
            let mut v = vp;
            v.zoom_time(2.0, v.time_at(640.0));
            std::hint::black_box(wb.layout(&v));
        })),
    ];
    // Hover: hit-test against a prebuilt map (the UI keeps it cached).
    let (_, hits) = wb.layout(&vp);
    let hover = time_ms(|| {
        for x in [100.0, 400.0, 800.0, 1200.0] {
            std::hint::black_box(hits.hit_test(x, 360.0));
        }
    });

    eprintln!("{:<28} {:>10} {:>8}", "operation", "median", "budget");
    for (name, ms) in ops.iter().chain([("hover hit-test ×4", hover)].iter()) {
        eprintln!(
            "{:<28} {:>7.1} ms {:>8}",
            name,
            ms,
            if *ms < 100.0 { "MET" } else { "OVER" }
        );
    }

    // Serial-vs-parallel ratios for the operations the parallel layer
    // accelerates (cache bypassed so both sides do real work; both honour
    // PASTAS_THREADS on the parallel side).
    par_ratio_row("e8 indexed selection", || {
        std::hint::black_box(wb.index().select(wb.collection(), &query));
    });
    par_ratio_row("e8 sort by utilization", || wb.sort(&SortKey::EntryCount));

    // Criterion timings for the two hottest paths.
    c.bench_function("e8_indexed_selection", |b| {
        b.iter(|| wb.select_positions(&query))
    });
    c.bench_function("e8_visible_layout", |b| b.iter(|| wb.layout(&vp)));
    c.bench_function("e8_hover_hit_test", |b| {
        b.iter(|| hits.hit_test(640.0, 360.0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
