//! E11 — streaming ingest: non-blocking incremental publication.
//!
//! The streaming claim under test: against the paper-scale collection a
//! stream of `parse_delta` increments can be applied and published while
//! readers keep executing planned selects, with (a) planned-select
//! latency during ingest within 2x of the quiesced pre-ingest baseline,
//! (b) bounded per-batch apply lag, and (c) compaction folds whose cost
//! is paid by the writer only — readers never block on them. Results go
//! to stderr as report rows and to `BENCH_ingest.json` at the repo root
//! as a machine-readable artifact (compare the planned-select columns
//! against `BENCH_plan.json` at the same scale).
//!
//! Not a criterion bench: the subject is a writer/reader race around an
//! atomically swapped snapshot, so the harness is a plain `main` with one
//! reader thread hammering selects while the main thread streams batches
//! the way `ServeState::ingest`/`compact` do (clone-snapshot, mutate,
//! publish).

use pastas_bench::{base_scale, cohort, header, median_ms};
use pastas_core::Workbench;
use pastas_ingest::{parse_delta, DeltaBatch, DeltaFormat, IdentityRegistry};
use pastas_query::{parse_query, HistoryQuery};
use pastas_synth::emit::{emit, MessConfig};
use pastas_synth::{generate_population, SynthConfig};
use pastas_time::Date;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

const QUERIES: [&str; 3] = ["has(T90)", "lacks(T90)", "has(K.*) and lacks(T90)"];

/// How many rows each streamed increment carries.
const CHUNK_ROWS: usize = 200;

/// Fold the side-index after this many applied batches.
const COMPACT_EVERY: usize = 48;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v
}

/// Split one source text into CHUNK_ROWS-row increments, each carrying
/// the header line so every chunk is a well-formed mini-file.
fn chunks(text: &str) -> Vec<String> {
    let mut lines = text.lines();
    let Some(header) = lines.next() else { return Vec::new() };
    let rows: Vec<&str> = lines.collect();
    rows.chunks(CHUNK_ROWS)
        .map(|rows| {
            let mut out = String::with_capacity(header.len() + rows.len() * 40);
            out.push_str(header);
            out.push('\n');
            for row in rows {
                out.push_str(row);
                out.push('\n');
            }
            out
        })
        .collect()
}

fn main() {
    header(
        "E11: streaming ingest",
        "appends publish incrementally; readers never block and plans stay interactive",
    );
    let patients = base_scale();
    // The stream extends a slice of the existing cohort with fresh events:
    // the side-index path over already-indexed rows, the streaming shape
    // the epoch/side-index design is for.
    let delta_patients = (patients / 500).clamp(200, 2_000);

    eprintln!("generating {patients} patients …");
    let t0 = Instant::now();
    let workbench = Workbench::from_collection(cohort(patients));
    eprintln!("loaded in {:.1?}", t0.elapsed());

    let reference = workbench
        .collection()
        .stats()
        .last
        .map(|dt| dt.date())
        .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid date"));
    let queries: Vec<HistoryQuery> = QUERIES
        .iter()
        .map(|q| parse_query(q, reference).expect("bench query parses"))
        .collect();

    // Quiesced baseline: planned-select latency on the fully compacted
    // index, the number BENCH_plan.json records at the same scale.
    let baseline_ms = sorted(
        queries
            .iter()
            .map(|q| median_ms(|| drop(std::hint::black_box(workbench.select_positions(q)))))
            .collect(),
    );
    let baseline_med = percentile(&baseline_ms, 0.5);
    eprintln!(
        "baseline planned selects: {:?} ms (median {baseline_med:.3})",
        baseline_ms.iter().map(|v| (v * 1e3).round() / 1e3).collect::<Vec<_>>()
    );

    // The delta stream: persons first (the linkage anchor), then the four
    // event registries as interleaved chunked increments.
    let population = generate_population(SynthConfig::with_patients(delta_patients), 4077);
    let raw = emit(&population, MessConfig::default());
    let mut registry = IdentityRegistry::new();
    let mut batches: Vec<DeltaBatch> = Vec::new();
    for chunk in chunks(&raw.persons) {
        batches.push(parse_delta(DeltaFormat::Persons, &chunk, &mut registry));
    }
    let mut streams: Vec<std::collections::VecDeque<(DeltaFormat, String)>> = vec![
        chunks(&raw.claims).into_iter().map(|c| (DeltaFormat::Claims, c)).collect(),
        chunks(&raw.hospital).into_iter().map(|c| (DeltaFormat::Hospital, c)).collect(),
        chunks(&raw.municipal).into_iter().map(|c| (DeltaFormat::Municipal, c)).collect(),
        chunks(&raw.prescriptions)
            .into_iter()
            .map(|c| (DeltaFormat::Prescriptions, c))
            .collect(),
    ];
    while streams.iter().any(|s| !s.is_empty()) {
        for stream in &mut streams {
            if let Some((format, chunk)) = stream.pop_front() {
                batches.push(parse_delta(format, &chunk, &mut registry));
            }
        }
    }
    let entries_total: usize = batches.iter().map(DeltaBatch::entries).sum();
    eprintln!(
        "streaming {} batches / {entries_total} entries over {delta_patients} patients …",
        batches.len()
    );

    // Publication point: readers clone the Arc under a read lock and run
    // the select lock-free, exactly as ServeState's snapshot swap works.
    let current: Arc<RwLock<Arc<Workbench>>> = Arc::new(RwLock::new(Arc::new(workbench)));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let current = Arc::clone(&current);
        let stop = Arc::clone(&stop);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let q = &queries[i % queries.len()];
                i += 1;
                let t = Instant::now();
                let snap =
                    Arc::clone(&current.read().unwrap_or_else(|e| e.into_inner()));
                std::hint::black_box(snap.select_positions(q).len());
                latencies.push(t.elapsed().as_secs_f64() * 1e3);
            }
            latencies
        })
    };

    // The writer: apply each batch to a cloned snapshot and publish, with
    // a periodic compaction fold — the writer pays it, readers don't.
    let publish = |wb: Workbench| {
        *current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(wb);
    };
    let mut apply_ms: Vec<f64> = Vec::with_capacity(batches.len());
    let mut compact_ms: Vec<f64> = Vec::new();
    let t_ingest = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        let t = Instant::now();
        let mut wb =
            current.read().unwrap_or_else(|e| e.into_inner()).snapshot();
        wb.apply_ingest(std::slice::from_ref(batch));
        publish(wb);
        apply_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if (i + 1) % COMPACT_EVERY == 0 {
            let t = Instant::now();
            let mut wb =
                current.read().unwrap_or_else(|e| e.into_inner()).snapshot();
            if wb.compact() {
                publish(wb);
                compact_ms.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    let ingest_elapsed = t_ingest.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let during_ms = sorted(reader.join().expect("reader thread"));

    // Final fold, measured as a compaction pause, then the post-compaction
    // planned-select latency on the converged snapshot.
    let t = Instant::now();
    let mut wb = current.read().unwrap_or_else(|e| e.into_inner()).snapshot();
    if wb.compact() {
        compact_ms.push(t.elapsed().as_secs_f64() * 1e3);
        publish(wb);
    }
    let final_snap = Arc::clone(&current.read().unwrap_or_else(|e| e.into_inner()));
    let post_ms = sorted(
        queries
            .iter()
            .map(|q| median_ms(|| drop(std::hint::black_box(final_snap.select_positions(q)))))
            .collect(),
    );

    let throughput = entries_total as f64 / ingest_elapsed.max(1e-9);
    let apply_sorted = sorted(apply_ms);
    let compact_sorted = sorted(compact_ms);
    let (lag_p50, lag_p99) =
        (percentile(&apply_sorted, 0.50), percentile(&apply_sorted, 0.99));
    let (during_p50, during_p99) =
        (percentile(&during_ms, 0.50), percentile(&during_ms, 0.99));
    let post_med = percentile(&post_ms, 0.5);
    let pause_p50 = percentile(&compact_sorted, 0.50);
    let pause_max = compact_sorted.last().copied().unwrap_or(0.0);
    let reads = during_ms.len();
    let ratio = if baseline_med > 0.0 { during_p50 / baseline_med } else { 0.0 };
    let target_met = reads > 0 && during_p50 <= 2.0 * baseline_med.max(0.05);

    eprintln!(
        "{patients} patients + {entries_total} streamed entries: \
         {throughput:.0} entries/s  apply-lag p50 {lag_p50:.2} ms p99 {lag_p99:.2} ms  \
         {reads} concurrent selects p50 {during_p50:.3} ms p99 {during_p99:.3} ms \
         ({ratio:.2}x baseline)  compaction pause p50 {pause_p50:.1} ms max {pause_max:.1} ms  \
         post-compaction select {post_med:.3} ms  \
         [target ≤2x baseline during ingest: {}]",
        if target_met { "met" } else { "NOT met at this scale" },
    );

    let json = format!(
        "{{\"experiment\":\"e11_ingest\",\"patients\":{patients},\
         \"delta_patients\":{delta_patients},\"batches\":{},\
         \"entries\":{entries_total},\"ingest_elapsed_s\":{ingest_elapsed:.3},\
         \"throughput_entries_per_s\":{throughput:.1},\
         \"apply_lag_p50_ms\":{lag_p50:.4},\"apply_lag_p99_ms\":{lag_p99:.4},\
         \"baseline_planned_ms\":{baseline_med:.4},\
         \"during_ingest_selects\":{reads},\
         \"during_ingest_p50_ms\":{during_p50:.4},\
         \"during_ingest_p99_ms\":{during_p99:.4},\
         \"during_over_baseline\":{ratio:.3},\
         \"compactions\":{},\"compaction_pause_p50_ms\":{pause_p50:.4},\
         \"compaction_pause_max_ms\":{pause_max:.4},\
         \"post_compaction_planned_ms\":{post_med:.4},\
         \"target_ratio\":2.0,\"target_met\":{target_met}}}\n",
        apply_sorted.len(),
        compact_sorted.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, &json).expect("write BENCH_ingest.json");
    eprintln!("wrote {path}");
}
