//! E7 — personal web timelines (>10,000 individuals on the web).
//!
//! Benches single-page export and batch throughput, prints page sizes and
//! the projected time for the paper's 10,000 individuals in both axis
//! modes' default (calendar) rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_viz::html::{personal_timeline, PersonalTimelineOptions};

fn bench(c: &mut Criterion) {
    header(
        "E7: personal web timelines",
        "interactive personal health time-lines (for more than 10,000 individuals) on the web",
    );
    let collection = cohort(base_scale().min(3_000));
    // Chronic patients, as in the feedback study.
    let rich: Vec<&pastas_model::History> =
        collection.iter().filter(|h| h.len() >= 10).take(200).collect();
    eprintln!("exporting {} rich histories", rich.len());
    let opts = PersonalTimelineOptions::default();

    // Page-size table.
    let sizes: Vec<usize> = rich.iter().take(50).map(|h| personal_timeline(h, &opts).len()).collect();
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    let max = sizes.iter().max().copied().unwrap_or(0);
    eprintln!("page size: mean {:.1} KiB, max {:.1} KiB (self-contained)", mean / 1024.0, max as f64 / 1024.0);

    c.bench_function("e7_export_one_page", |b| {
        let h = rich[0];
        b.iter(|| personal_timeline(h, &opts))
    });

    let mut group = c.benchmark_group("e7_batch_export");
    group.sample_size(10);
    group.bench_function("fifty_pages", |b| {
        b.iter(|| {
            rich.iter().take(50).map(|h| personal_timeline(h, &opts).len()).sum::<usize>()
        })
    });
    group.finish();

    // Throughput projection for the paper scale.
    let t0 = std::time::Instant::now();
    let pages = 100.min(rich.len());
    for h in rich.iter().take(pages) {
        std::hint::black_box(personal_timeline(h, &opts));
    }
    let per_page = t0.elapsed().as_secs_f64() / pages as f64;
    eprintln!(
        "throughput: {:.1} pages/s → the paper's 10,000 individuals in {:.0}s single-threaded",
        1.0 / per_page,
        10_000.0 * per_page
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
