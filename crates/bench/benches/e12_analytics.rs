//! E12 — cohort analytics: the nine-dimension columnar pass and the
//! materialized-registry hit path.
//!
//! Two claims under test, both against Shneiderman's 0.1 s budget the
//! refinement loop lives inside:
//!
//! * the dimension pass — age band, sex, dominant source, entries per
//!   patient, history span, ICD-10 chapter, ATC main group, first
//!   contact year, top-k codes + conditions — is one parallel fold over
//!   the columnar store and stays under 100 ms at a million patients;
//! * answering `/cohort/{id}/stats` from a frozen posting bitmap (one
//!   chunked decode + aggregate) beats re-running the cold path
//!   (plan + execute + aggregate) because the planner never runs.
//!
//! Not a criterion bench: tiers of 168k and 1M synthetic patients (10M
//! behind `--full`) are generated inline, so the harness is a plain
//! `main` emitting report rows to stderr and `BENCH_analytics.json` at
//! the repo root.

use pastas_bench::{base_scale, header, median_ms};
use pastas_core::Workbench;
use pastas_query::{Bitmap, QueryBuilder, QueryPlan};
use pastas_synth::{generate_collection, SynthConfig};
use pastas_time::Date;
use std::fmt::Write as _;
use std::hint::black_box;

/// The latency budget every interactive read is judged against (ms).
const BUDGET_MS: f64 = 100.0;

/// Run one patient tier and append its JSON object to `json`.
fn tier(json: &mut String, first: bool, patients: usize, shard_patients: usize) {
    eprintln!("\n-- analytics tier: {patients} patients (shard_patients {shard_patients}) --");
    let config = SynthConfig { shard_patients, ..SynthConfig::with_patients(patients) };
    let t = std::time::Instant::now();
    let collection = generate_collection(config, 2016);
    let shards = collection.sharded_store().shard_count();
    let reference = collection
        .stats()
        .last
        .map(|dt| dt.date())
        .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid"));
    let wb = Workbench::from_collection(collection);
    eprintln!("generated + indexed in {:.1} s ({shards} shards)", t.elapsed().as_secs_f64());

    // The Fig. 4 diabetes-flavoured selection, same shape as E5.
    let query = QueryBuilder::new().has_code("T90|T89|E1[014].*").expect("regex").build();
    let positions = wb.select_positions(&query);
    let cohort = positions.len();

    // The tentpole number: nine dimensions in one parallel pass.
    let profile = wb.cohort_profile(&positions, reference, 20);
    assert_eq!(profile.cohort_size as usize, cohort);
    let profile_ms = median_ms(|| {
        black_box(wb.cohort_profile(black_box(&positions), reference, 20));
    });
    let timeline_ms = median_ms(|| {
        black_box(wb.cohort_monthly(black_box(&positions)));
    });

    // Registry hit path: one chunked decode of the frozen bitmap, then
    // aggregate — versus the cold path that re-plans and re-executes
    // the selection before aggregating.
    let frozen = Bitmap::from_sorted(&positions);
    let mut scratch = Vec::with_capacity(cohort);
    let hit_ms = median_ms(|| {
        scratch.clear();
        frozen.decode_into(0, &mut scratch);
        black_box(wb.cohort_profile(black_box(&scratch), reference, 20));
    });
    let cold_ms = median_ms(|| {
        let plan = QueryPlan::build(wb.index(), wb.collection(), &query);
        let selected = plan.execute(wb.collection(), wb.index());
        black_box(wb.cohort_profile(black_box(&selected), reference, 20));
    });

    let budget_met = profile_ms <= BUDGET_MS;
    eprintln!(
        "{patients} patients, cohort {cohort} ({:.1}%): profile {profile_ms:.2} ms \
         ({} histograms, budget {BUDGET_MS:.0} ms: {})  monthly {timeline_ms:.2} ms  \
         registry-hit {hit_ms:.2} ms vs cold select+aggregate {cold_ms:.2} ms ({:.2}x)",
        100.0 * cohort as f64 / patients as f64,
        profile.histograms().len(),
        if budget_met { "met" } else { "NOT met" },
        cold_ms / hit_ms.max(1e-6),
    );
    if !first {
        json.push_str(",\n");
    }
    let _ = write!(
        json,
        "    {{\"patients\": {patients}, \"shards\": {shards}, \"cohort\": {cohort}, \
         \"profile_ms\": {profile_ms:.3}, \"timeline_ms\": {timeline_ms:.3}, \
         \"budget_met\": {budget_met}, \"registry_hit_ms\": {hit_ms:.3}, \
         \"cold_select_aggregate_ms\": {cold_ms:.3}}}"
    );
}

fn main() {
    header(
        "E12: cohort analytics (9-dimension profile + registry hit path)",
        "dimension histograms over the selected cohort inside the 0.1 s budget",
    );
    // Default: the bench scale, the paper's 168k, and one million sharded
    // patients. `--full` (cargo bench --bench e12_analytics -- --full)
    // adds ten million.
    let full = std::env::args().any(|a| a == "--full");
    let mut json = String::from(
        "{\n  \"experiment\": \"e12_analytics\",\n  \"budget_ms\": 100.0,\n  \"tiers\": [\n",
    );
    tier(&mut json, true, base_scale(), 0);
    tier(&mut json, false, 168_000, 0);
    tier(&mut json, false, 1_000_000, 65_536);
    if full {
        tier(&mut json, false, 10_000_000, 65_536);
    }
    json.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analytics.json");
    std::fs::write(path, &json).expect("write BENCH_analytics.json");
    eprintln!("\nwrote {path}");
}
