//! E10 — OWL reasoning at cohort scale.
//!
//! §Abstract: "Health researchers have successfully analyzed large cohorts
//! (over 100,000 individuals) using the tool" — with both OWL
//! formalizations in the loop. This bench measures TBox saturation,
//! per-entry classification throughput, ABox materialization rate, and the
//! indexed-hierarchy-walk vs saturated-subsumption ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_codes::Code;
use pastas_ontology::integration::{code_class_name, IntegrationOntology};
use pastas_ontology::store::TripleStore;
use pastas_ontology::vocab::Vocabulary;

fn bench(c: &mut Criterion) {
    header(
        "E10: ontology at scale",
        "represents and reasons with patient events in different OWL-formalizations; cohorts >100,000",
    );
    let n = base_scale();
    let collection = cohort(n);
    let stats = collection.stats();
    let onto = IntegrationOntology::new();

    c.bench_function("e10_tbox_build_and_saturate", |b| {
        b.iter(IntegrationOntology::new)
    });

    // Classification throughput (entries/second) over one pass.
    let sample: Vec<&pastas_model::History> = collection.iter().take(500).collect();
    let entries: usize = sample.iter().map(|h| h.len()).sum();
    c.bench_function("e10_classify_500_histories", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for h in &sample {
                for e in h.entries() {
                    total += onto.classify_entry(e).len();
                }
            }
            total
        })
    });
    eprintln!("classification sample: {entries} entries over 500 histories");

    // ABox materialization.
    let mut group = c.benchmark_group("e10_abox_materialize");
    group.sample_size(10);
    for histories in [200usize, 1_000] {
        let hs: Vec<&pastas_model::History> = collection.iter().take(histories).collect();
        group.bench_with_input(BenchmarkId::from_parameter(histories), &hs, |b, hs| {
            b.iter(|| {
                let mut store = TripleStore::new();
                let mut vocab = Vocabulary::new();
                for h in hs {
                    onto.assert_history(h, &mut store, &mut vocab);
                }
                store.len()
            })
        });
    }
    group.finish();

    // Triple count projection to the paper's scale.
    let mut store = TripleStore::new();
    let mut vocab = Vocabulary::new();
    for h in collection.iter().take(1_000) {
        onto.assert_history(h, &mut store, &mut vocab);
    }
    let per_patient = store.len() as f64 / 1_000.0;
    eprintln!(
        "ABox: {:.1} triples/patient → 168,000 patients ≈ {:.1} M triples",
        per_patient,
        per_patient * 168_000.0 / 1e6
    );
    eprintln!("collection at bench scale: {} entries", stats.entries);

    // Ablation: saturated subsumption lookup vs on-demand hierarchy walk.
    let t90 = Code::icpc("T90");
    c.bench_function("e10_subsumption_saturated", |b| {
        b.iter(|| onto.is_subclass(&code_class_name(&t90), "cond:Diabetes"))
    });
    c.bench_function("e10_subsumption_hierarchy_walk", |b| {
        // The unsaturated alternative: walk ancestors and consult the
        // bridge table per query.
        b.iter(|| {
            let mut cur = Some(t90.clone());
            let mut hit = false;
            while let Some(code) = cur {
                if pastas_ontology::integration::CONDITIONS
                    .iter()
                    .any(|(name, icpc, _, _)| *name == "Diabetes" && icpc.contains(&code.value.as_str()))
                {
                    hit = true;
                    break;
                }
                cur = code.parent();
            }
            hit
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
