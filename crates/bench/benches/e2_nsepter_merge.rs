//! E2 — Fig. 2(a): the NSEPter graph merged around the first diabetes code.
//!
//! Benches graph construction, the serial regex merge, and recursive
//! neighbour merging at depths 1–3 over the diabetes sub-cohort, and
//! prints the Fig. 2(a) structural summary (merged node membership, edge
//! weights) per depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastas_bench::{base_scale, cohort, header};
use pastas_codes::Code;
use pastas_graph::{merge_neighbors, merge_on_regex, DiGraph};
use pastas_regex::Regex;

fn diabetes_sequences(n: usize) -> Vec<Vec<Code>> {
    cohort(n)
        .iter()
        .filter(|h| h.entries().iter().any(|e| e.code().is_some_and(|c| c.value == "T90")))
        .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    header(
        "E2: NSEPter merge (Fig. 2a)",
        "a small graph, merged around the first incidence of diabetes (T90); thicker lines = more patients",
    );
    let seqs = diabetes_sequences(base_scale());
    eprintln!("diabetes sub-cohort: {} histories", seqs.len());
    let re = Regex::new("T90").expect("regex");

    c.bench_function("e2_graph_build", |b| {
        b.iter(|| DiGraph::from_sequences(&seqs))
    });

    c.bench_function("e2_serial_merge", |b| {
        b.iter(|| {
            let mut g = DiGraph::from_sequences(&seqs);
            merge_on_regex(&mut g, &re)
        })
    });

    let mut group = c.benchmark_group("e2_neighbor_merge_depth");
    group.sample_size(10);
    for depth in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut g = DiGraph::from_sequences(&seqs);
                let merged = merge_on_regex(&mut g, &re);
                merge_neighbors(&mut g, &merged, depth);
                g.node_count()
            })
        });
        // The Fig. 2(a) summary.
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re);
        merge_neighbors(&mut g, &merged, depth);
        eprintln!(
            "  depth={depth}: {} nodes, {} edges, heaviest edge carries {} histories",
            g.node_count(),
            g.edge_count(),
            g.max_edge_weight()
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
