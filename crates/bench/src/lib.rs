//! Shared helpers for the experiment benches.
//!
//! Each bench regenerates one figure/table/claim of the paper; the mapping
//! is in `DESIGN.md` §4 and results are recorded in `EXPERIMENTS.md`.
//! Benches honour `PASTAS_BENCH_SCALE` (base patient count, default modest
//! so `cargo bench` completes on a laptop; the paper-scale numbers in
//! EXPERIMENTS.md come from the examples at full scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pastas_model::{HistoryCollection, MemoryFootprint};
use pastas_synth::{generate_collection, SynthConfig};

/// Patient count used as the benches' base scale. Override with the
/// `PASTAS_BENCH_SCALE` environment variable.
pub fn base_scale() -> usize {
    std::env::var("PASTAS_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

/// The shared benchmark cohort at `n` patients (seed fixed so all benches
/// agree on the data).
pub fn cohort(n: usize) -> HistoryCollection {
    generate_collection(SynthConfig::with_patients(n), 2016)
}

/// Print one experiment header so bench output reads as a report.
pub fn header(experiment: &str, paper_claim: &str) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("paper: {paper_claim}");
}

/// Median-of-5 wall-clock time of `f`, in milliseconds.
pub fn median_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[2]
}

/// Print one memory-accounting row: resident bytes-per-entry of the
/// columnar arena next to the array-of-structs estimate it replaced
/// (recorded per experiment in `EXPERIMENTS.md`). Returns the footprint
/// so benches can assert on it.
pub fn memory_row(collection: &HistoryCollection) -> MemoryFootprint {
    let f = MemoryFootprint::measure(collection);
    eprintln!("{}", f.summary());
    f
}

/// Print one serial-vs-parallel comparison row: times `f` pinned to one
/// worker thread and at the configured count ([`pastas_par::thread_count`],
/// i.e. `PASTAS_THREADS` or the machine default), reporting both medians
/// and the speedup ratio.
pub fn par_ratio_row<F: FnMut()>(name: &str, mut f: F) {
    let serial = median_ms(|| pastas_par::with_threads(1, &mut f));
    let threads = pastas_par::thread_count();
    let parallel = median_ms(&mut f);
    eprintln!(
        "{name:<32} serial {serial:>8.2} ms   parallel({threads}) {parallel:>8.2} ms   speedup {:.2}x",
        serial / parallel.max(1e-9)
    );
}
