//! Shared helpers for the experiment benches.
//!
//! Each bench regenerates one figure/table/claim of the paper; the mapping
//! is in `DESIGN.md` §4 and results are recorded in `EXPERIMENTS.md`.
//! Benches honour `PASTAS_BENCH_SCALE` (base patient count, default modest
//! so `cargo bench` completes on a laptop; the paper-scale numbers in
//! EXPERIMENTS.md come from the examples at full scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pastas_model::{HistoryCollection, MemoryFootprint};
use pastas_synth::{generate_collection, SynthConfig};

/// Patient count used as the benches' base scale. Override with the
/// `PASTAS_BENCH_SCALE` environment variable.
pub fn base_scale() -> usize {
    std::env::var("PASTAS_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

/// The shared benchmark cohort at `n` patients (seed fixed so all benches
/// agree on the data).
pub fn cohort(n: usize) -> HistoryCollection {
    generate_collection(SynthConfig::with_patients(n), 2016)
}

/// Print one experiment header so bench output reads as a report.
pub fn header(experiment: &str, paper_claim: &str) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("paper: {paper_claim}");
}

/// Median-of-5 wall-clock time of `f`, in milliseconds.
pub fn median_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[2]
}

/// Print one memory-accounting row: resident bytes-per-entry of the
/// columnar arena next to the array-of-structs estimate it replaced
/// (recorded per experiment in `EXPERIMENTS.md`). Returns the footprint
/// so benches can assert on it.
pub fn memory_row(collection: &HistoryCollection) -> MemoryFootprint {
    let f = MemoryFootprint::measure(collection);
    eprintln!("{}", f.summary());
    f
}

/// Print one serial-vs-parallel comparison row: times `f` pinned to one
/// worker thread and at the configured count ([`pastas_par::thread_count`],
/// i.e. `PASTAS_THREADS` or the machine default), reporting both medians
/// and the speedup ratio.
pub fn par_ratio_row<F: FnMut()>(name: &str, mut f: F) {
    let serial = median_ms(|| pastas_par::with_threads(1, &mut f));
    let threads = pastas_par::thread_count();
    let parallel = median_ms(&mut f);
    eprintln!(
        "{name:<32} serial {serial:>8.2} ms   parallel({threads}) {parallel:>8.2} ms   speedup {:.2}x",
        serial / parallel.max(1e-9)
    );
}

/// Merge one top-level section into a shared `BENCH_*.json` report.
///
/// Several benches land results in the same file — E5 writes the `plan`
/// tiers and E13 the `temporal` tiers of `BENCH_plan.json` — so a plain
/// whole-file overwrite from either would clobber the other's numbers.
/// This reads the existing report with pastas-ingest's JSON parser (no
/// serde anywhere in the workspace), replaces the named section with
/// `section` (itself a JSON document), keeps every other section, and
/// re-renders the whole file deterministically (sorted keys, two-space
/// indent, leaf-only rows inline). A missing or unparseable file starts
/// fresh from `{}`.
pub fn merge_bench_section(path: &str, key: &str, section: &str) {
    use pastas_ingest::json::Json;
    use std::collections::BTreeMap;
    let parsed = Json::parse(section).expect("bench section must be valid JSON");
    let mut doc = match std::fs::read_to_string(path).ok().and_then(|t| Json::parse(&t).ok()) {
        Some(Json::Object(members)) => members,
        _ => BTreeMap::new(),
    };
    doc.insert(key.to_owned(), parsed);
    let mut out = String::new();
    render_json(&Json::Object(doc), 0, &mut out);
    out.push('\n');
    std::fs::write(path, out).expect("write bench report");
}

/// True when a value renders on one line: any leaf, or a container whose
/// members are all leaves (the per-query rows of a bench report).
fn is_inline(v: &pastas_ingest::json::Json) -> bool {
    use pastas_ingest::json::Json;
    match v {
        Json::Array(items) => items.iter().all(|i| !matches!(i, Json::Array(_) | Json::Object(_))),
        Json::Object(members) => {
            members.values().all(|i| !matches!(i, Json::Array(_) | Json::Object(_)))
        }
        _ => true,
    }
}

fn render_json(v: &pastas_ingest::json::Json, indent: usize, out: &mut String) {
    use pastas_ingest::json::Json;
    use std::fmt::Write as _;
    let pad = " ".repeat(indent);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Number(n) => {
            // Counts and byte totals come back as f64 from the parser;
            // render them as integers when they are.
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::String(s) => render_json_string(s, out),
        Json::Array(items) if items.is_empty() => out.push_str("[]"),
        Json::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                render_json(item, indent + 2, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}]");
        }
        Json::Object(members) if members.is_empty() => out.push_str("{}"),
        Json::Object(members) if is_inline(v) => {
            out.push('{');
            for (i, (k, m)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_json_string(k, out);
                out.push_str(": ");
                render_json(m, indent, out);
            }
            out.push('}');
        }
        Json::Object(members) => {
            out.push_str("{\n");
            for (i, (k, m)) in members.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                render_json_string(k, out);
                out.push_str(": ");
                render_json(m, indent + 2, out);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
        }
    }
}

fn render_json_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::merge_bench_section;
    use pastas_ingest::json::Json;

    #[test]
    fn merge_preserves_the_other_sections() {
        let path = std::env::temp_dir().join("pastas_bench_merge_test.json");
        let path = path.to_str().expect("utf8 temp path");
        let _ = std::fs::remove_file(path);
        merge_bench_section(path, "plan", r#"{"tiers": [{"patients": 2000, "ms": 1.5}]}"#);
        merge_bench_section(path, "temporal", r#"{"tiers": [{"patients": 2000}]}"#);
        // Re-writing one section must keep the other intact.
        merge_bench_section(path, "plan", r#"{"tiers": [{"patients": 5000, "ms": 2.25}]}"#);
        let text = std::fs::read_to_string(path).expect("report exists");
        let doc = Json::parse(&text).expect("report re-parses");
        let plan_patients = doc
            .get("plan")
            .and_then(|p| p.get("tiers"))
            .and_then(|t| t.at(0))
            .and_then(|t| t.get("patients"))
            .and_then(Json::as_f64);
        assert_eq!(plan_patients, Some(5000.0));
        let kept = doc.get("temporal").and_then(|p| p.get("tiers")).and_then(|t| t.at(0));
        assert!(kept.is_some(), "temporal section survived the plan rewrite");
        assert!(text.contains("\"ms\": 2.25"), "fractional numbers round-trip: {text}");
        let _ = std::fs::remove_file(path);
    }
}
