//! Shared helpers for the experiment benches.
//!
//! Each bench regenerates one figure/table/claim of the paper; the mapping
//! is in `DESIGN.md` §4 and results are recorded in `EXPERIMENTS.md`.
//! Benches honour `PASTAS_BENCH_SCALE` (base patient count, default modest
//! so `cargo bench` completes on a laptop; the paper-scale numbers in
//! EXPERIMENTS.md come from the examples at full scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pastas_model::HistoryCollection;
use pastas_synth::{generate_collection, SynthConfig};

/// Patient count used as the benches' base scale. Override with the
/// `PASTAS_BENCH_SCALE` environment variable.
pub fn base_scale() -> usize {
    std::env::var("PASTAS_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

/// The shared benchmark cohort at `n` patients (seed fixed so all benches
/// agree on the data).
pub fn cohort(n: usize) -> HistoryCollection {
    generate_collection(SynthConfig::with_patients(n), 2016)
}

/// Print one experiment header so bench output reads as a report.
pub fn header(experiment: &str, paper_claim: &str) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("paper: {paper_claim}");
}
