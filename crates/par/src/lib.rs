//! # pastas-par — dependency-free parallel execution
//!
//! The paper's headline workload — re-selecting a 13,000-patient cohort
//! out of 168,000 inside Shneiderman's 0.1 s budget — is embarrassingly
//! parallel: per-history predicate evaluation, per-chunk index building,
//! per-source parsing, pairwise distances. This crate supplies the one
//! primitive all of those need: **ordered, chunked data-parallelism over
//! `std::thread::scope`**, with zero external dependencies.
//!
//! Guarantees:
//!
//! * **Determinism.** Every function returns results in input order, no
//!   matter the thread count. `PASTAS_THREADS=1` (or
//!   [`with_threads`]`(1, …)`) takes the *exact* serial code path, so
//!   parallel and serial runs agree bit for bit for pure closures — the
//!   property the equivalence tests assert.
//! * **No work for small inputs.** Inputs below a per-thread minimum stay
//!   serial; thread spawning only happens when there is enough work to
//!   amortize it.
//! * **Observability.** Each call records a [`ParStats`] (thread count,
//!   item count, wall clock) retrievable with [`last_stats`] — the hook
//!   the E5/E8 benches use to report parallel-vs-serial speedups.
//!
//! Thread count resolution order: the innermost [`with_threads`] scope,
//! then the `PASTAS_THREADS` environment variable (read once), then
//! [`std::thread::available_parallelism`].
//!
//! ```
//! let doubled = pastas_par::par_map(&[1, 2, 3], |x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! let evens = pastas_par::par_filter_indices(&[1, 2, 3, 4], |x| x % 2 == 0);
//! assert_eq!(evens, vec![1, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Default minimum number of items each worker thread must receive before
/// a call goes parallel. Keeps tiny inputs on the serial path where thread
/// spawn overhead (~tens of µs) would dominate.
pub const DEFAULT_MIN_PER_THREAD: usize = 256;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static LAST_STATS: Cell<Option<ParStats>> = const { Cell::new(None) };
}

/// What one `par_*` invocation did — the benches' timing hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParStats {
    /// Worker threads actually used (1 = serial path).
    pub threads: usize,
    /// Number of input items.
    pub items: usize,
    /// Wall-clock time of the whole call.
    pub elapsed: Duration,
}

/// The [`ParStats`] of the most recent `par_*` call on this thread.
pub fn last_stats() -> Option<ParStats> {
    LAST_STATS.with(|c| c.get())
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PASTAS_THREADS").ok().and_then(|v| v.trim().parse().ok())
    })
}

/// The configured worker-thread count: innermost [`with_threads`] scope,
/// else `PASTAS_THREADS`, else the machine's available parallelism.
/// Always at least 1.
pub fn thread_count() -> usize {
    THREAD_OVERRIDE
        .with(|c| c.get())
        .or_else(env_threads)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1)
}

/// Run `f` with the worker-thread count pinned to `n` (≥ 1) on this
/// thread, restoring the previous setting afterwards — the benches' knob
/// for timing the serial path (`n = 1`) against the parallel one without
/// touching the environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    THREAD_OVERRIDE.with(|c| {
        let prev = c.replace(Some(n.max(1)));
        let result = f();
        c.set(prev);
        result
    })
}

/// Convenience: run `f`, returning its result and wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// How many worker threads a `len`-item call should use under the current
/// configuration and a per-thread minimum.
fn effective_threads(len: usize, min_per_thread: usize) -> usize {
    let by_size = len / min_per_thread.max(1);
    thread_count().min(by_size.max(1))
}

/// The chunking core: split `items` into `threads` contiguous chunks,
/// apply `work(chunk_start, chunk)` to each (in parallel when threads > 1),
/// and return the per-chunk results **in chunk order**.
///
/// With one thread this performs exactly one call, `work(0, items)`, on
/// the calling thread — the serial path.
fn run_chunked<T, R, F>(items: &[T], min_per_thread: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let t0 = Instant::now();
    let threads = effective_threads(items.len(), min_per_thread);
    let results = if threads <= 1 {
        vec![work(0, items)]
    } else {
        let len = items.len();
        let base = len / threads;
        let rem = len % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut start = 0usize;
            for i in 0..threads {
                let size = base + usize::from(i < rem);
                // lint:allow(no-panic-hot-path) chunk sizes sum to len by construction
                let chunk = &items[start..start + size];
                let chunk_start = start;
                let work = &work;
                handles.push(scope.spawn(move || work(chunk_start, chunk)));
                start += size;
            }
            handles
                .into_iter()
                // lint:allow(no-panic-hot-path) re-raises the worker's own panic
                .map(|h| h.join().expect("pastas-par worker panicked"))
                .collect::<Vec<R>>()
        })
    };
    LAST_STATS.with(|c| {
        c.set(Some(ParStats { threads, items: items.len(), elapsed: t0.elapsed() }))
    });
    results
}

/// Apply `work(chunk_start, chunk)` to contiguous chunks of `items` in
/// parallel, returning the per-chunk results **in chunk order**. The
/// chunk-level primitive behind [`par_map`] — use it directly when the
/// per-chunk work wants to build one accumulator per chunk (e.g. a
/// postings map) and needs each item's global index.
pub fn par_chunks<T, R, F>(items: &[T], min_per_thread: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    run_chunked(items, min_per_thread, work)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_min(items, DEFAULT_MIN_PER_THREAD, f)
}

/// [`par_map`] with an explicit per-thread minimum — use a small minimum
/// when each item is expensive (e.g. a whole alignment row).
pub fn par_map_min<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    concat(run_chunked(items, min_per_thread, |_, chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    }))
}

/// Indices (as `u32`, ascending) of the items satisfying `pred`,
/// evaluated in parallel. Panics if `items.len()` exceeds `u32::MAX`.
pub fn par_filter_indices<T, F>(items: &[T], pred: F) -> Vec<u32>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    par_filter_indices_min(items, DEFAULT_MIN_PER_THREAD, pred)
}

/// [`par_filter_indices`] with an explicit per-thread minimum.
pub fn par_filter_indices_min<T, F>(items: &[T], min_per_thread: usize, pred: F) -> Vec<u32>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    assert!(
        u32::try_from(items.len()).is_ok(),
        "par_filter_indices requires len <= u32::MAX"
    );
    concat(run_chunked(items, min_per_thread, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .filter(|(_, t)| pred(t))
            .map(|(i, _)| (start + i) as u32)
            .collect::<Vec<u32>>()
    }))
}

/// Parallel fold: each chunk folds from its own `make()` accumulator, and
/// the per-chunk accumulators are combined **left to right in chunk
/// order** with `merge`. With one thread this is a plain serial fold (no
/// `merge` call), so `merge` must agree with `fold` in the usual
/// monoid-homomorphism sense for the two paths to coincide — true for the
/// postings maps, counters and min/max trackers this workspace uses.
pub fn par_fold<T, A, M, F, G>(items: &[T], make: M, fold: F, mut merge: G) -> A
where
    T: Sync,
    A: Send,
    M: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    G: FnMut(A, A) -> A,
{
    let chunks = run_chunked(items, DEFAULT_MIN_PER_THREAD, |_, chunk| {
        chunk.iter().fold(make(), &fold)
    });
    let mut iter = chunks.into_iter();
    // lint:allow(no-panic-hot-path) run_chunked spawns >= 1 chunk even for empty input
    let first = iter.next().expect("run_chunked returns at least one chunk");
    iter.fold(first, &mut merge)
}

/// Run two independent closures, possibly concurrently, returning both
/// results. Serial (`a` then `b`) when one thread is configured.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if thread_count() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            // lint:allow(no-panic-hot-path) re-raises the worker's own panic
            (ra, hb.join().expect("pastas-par join worker panicked"))
        })
    }
}

fn concat<R>(chunks: Vec<Vec<R>>) -> Vec<R> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || par_map_min(&items, 1, |x| x * 3 + 1));
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn filter_indices_are_ascending_and_complete() {
        let items: Vec<u32> = (0..5_000).collect();
        let expected: Vec<u32> = (0..5_000).filter(|i| i % 7 == 0).collect();
        for threads in [1, 2, 8] {
            let got =
                with_threads(threads, || par_filter_indices_min(&items, 1, |x| x % 7 == 0));
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn fold_merges_in_chunk_order() {
        // String concatenation is order-sensitive: any reordering of
        // chunks or items would change the result.
        let items: Vec<String> = (0..3_000).map(|i| format!("{i},")).collect();
        let serial: String = items.concat();
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || {
                par_fold(
                    &items,
                    String::new,
                    |mut acc, s| {
                        acc.push_str(s);
                        acc
                    },
                    |mut a, b| {
                        a.push_str(&b);
                        a
                    },
                )
            });
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        with_threads(8, || {
            let _ = par_map(&[1, 2, 3], |x| x + 1);
        });
        let stats = last_stats().expect("stats recorded");
        assert_eq!(stats.threads, 1, "3 items < DEFAULT_MIN_PER_THREAD stays serial");
        assert_eq!(stats.items, 3);
    }

    #[test]
    fn large_inputs_use_the_configured_threads() {
        let items: Vec<u32> = (0..4_096).collect();
        with_threads(4, || {
            let _ = par_map_min(&items, 1, |x| x + 1);
        });
        let stats = last_stats().expect("stats recorded");
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.items, 4_096);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(3, || {
            assert_eq!(thread_count(), 3);
            with_threads(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
    }

    #[test]
    fn empty_inputs() {
        assert!(par_map(&[] as &[u32], |x| *x).is_empty());
        assert!(par_filter_indices(&[] as &[u32], |_| true).is_empty());
        assert_eq!(
            par_fold(&[] as &[u32], || 7u64, |a, &x| a + x as u64, |a, b| a + b),
            7
        );
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let (a, b) = with_threads(threads, || {
                join(|| (0..100u64).sum::<u64>(), || "right".to_owned())
            });
            assert_eq!(a, 4950);
            assert_eq!(b, "right");
        }
    }

    #[test]
    fn timed_reports_a_duration() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.is_zero());
    }
}

#[cfg(test)]
mod proptests;
