//! A bounded, long-lived worker pool.
//!
//! [`crate::par_map`] and friends spawn scoped threads per call — the right
//! shape for data-parallel batch work, and the wrong one for a server that
//! must execute many small independent jobs arriving over time. This
//! module supplies the second shape: a fixed set of worker threads pulling
//! jobs from a **bounded** queue.
//!
//! The bound is the point. An unbounded queue turns overload into
//! unbounded memory growth and unbounded latency; a bounded queue makes
//! overload visible at the submission site ([`WorkerPool::try_submit`]
//! returns [`SubmitError::QueueFull`]) so the caller can shed load — the
//! backpressure contract `pastas-serve` builds its `503 Retry-After`
//! behaviour on.
//!
//! Guarantees:
//!
//! * **Backpressure, never blocking.** `try_submit` is non-blocking; a
//!   full queue is an `Err`, not a stall.
//! * **Panic isolation.** A panicking job never kills its worker thread;
//!   panics are caught, counted ([`WorkerPool::panic_count`]) and the
//!   worker returns to the queue.
//! * **Graceful drain.** [`WorkerPool::shutdown`] stops admissions, lets
//!   the workers finish every job already accepted, then joins them —
//!   nothing accepted is ever dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed load and retry later.
    QueueFull,
    /// [`WorkerPool::shutdown`] has begun; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "worker pool queue is full"),
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
    depth: AtomicUsize,
    in_flight: AtomicUsize,
    panics: AtomicU64,
    completed: AtomicU64,
}

/// A fixed-size thread pool with a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap observer handle onto a pool's counters — hand it to a metrics
/// endpoint without giving it the power to submit or shut down. Holding
/// one does not keep the worker threads alive.
#[derive(Clone)]
pub struct PoolStats {
    shared: Arc<Shared>,
}

/// A cloneable submission handle. Lets another thread (the acceptor in
/// `pastas-serve`) submit jobs while the [`WorkerPool`] itself stays with
/// whoever will eventually call [`WorkerPool::shutdown`]. Once shutdown
/// begins every submission through the handle returns
/// [`SubmitError::ShuttingDown`].
#[derive(Clone)]
pub struct Submitter {
    shared: Arc<Shared>,
}

impl Submitter {
    /// Submit a job without blocking; same contract as
    /// [`WorkerPool::try_submit`].
    pub fn try_submit(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        submit(&self.shared, Box::new(job))
    }
}

fn submit(shared: &Shared, job: Job) -> Result<(), SubmitError> {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    if state.shutting_down {
        return Err(SubmitError::ShuttingDown);
    }
    if state.jobs.len() >= shared.capacity {
        return Err(SubmitError::QueueFull);
    }
    // lint:allow(no-unbounded-ingest-buffer) bounded: capacity checked above, overflow answers QueueFull
    state.jobs.push_back(job);
    shared.depth.store(state.jobs.len(), Ordering::Relaxed);
    drop(state);
    shared.not_empty.notify_one();
    Ok(())
}

impl PoolStats {
    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked.
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Jobs run to completion.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }
}

impl WorkerPool {
    /// Spawn `threads` workers (at least 1) behind a queue holding at most
    /// `capacity` pending jobs (at least 1).
    pub fn new(threads: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutting_down: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pastas-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // One-time pool construction, not a request path: if the OS
                    // cannot spawn threads at startup the process has no useful
                    // degraded mode to fall back to.
                    // lint:allow(no-panic-hot-path) unrecoverable startup failure
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Submit a job without blocking. `Err(QueueFull)` is the
    /// backpressure signal: the caller decides whether to drop, retry, or
    /// degrade.
    pub fn try_submit(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        submit(&self.shared, Box::new(job))
    }

    /// A submission handle for a thread that must enqueue work but not
    /// own the pool's lifetime.
    pub fn submitter(&self) -> Submitter {
        Submitter { shared: Arc::clone(&self.shared) }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Jobs currently executing on a worker.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked (each was caught; the worker survived).
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Jobs run to completion (panicked jobs count as completed).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// An observer handle for metrics endpoints.
    pub fn stats(&self) -> PoolStats {
        PoolStats { shared: Arc::clone(&self.shared) }
    }

    /// The maximum number of queued jobs.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Graceful drain: refuse new submissions, run every job already
    /// queued, then join all workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutting_down = true;
        drop(state);
        self.shared.not_empty.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    shared.depth.store(state.jobs.len(), Ordering::Relaxed);
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50, "drain runs every accepted job");
    }

    #[test]
    fn full_queue_is_backpressure_not_blocking() {
        // One worker, parked on a gate, so the queue fills deterministically.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Worker is busy; the queue holds up to 2 more.
        pool.try_submit(|| {}).unwrap();
        pool.try_submit(|| {}).unwrap();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::QueueFull));
        assert_eq!(pool.queue_depth(), 2);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(|| panic!("job panic")).unwrap();
        let (tx, rx) = mpsc::channel::<u32>();
        pool.try_submit(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        assert_eq!(pool.panic_count(), 1);
        pool.shutdown();
    }

    #[test]
    fn submitter_outlives_the_pool_gracefully() {
        let pool = WorkerPool::new(1, 8);
        let handle = pool.submitter();
        let (tx, rx) = mpsc::channel::<u32>();
        handle.try_submit(move || tx.send(3).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 3);
        pool.shutdown();
        assert_eq!(handle.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let pool = WorkerPool::new(2, 8);
        pool.begin_shutdown();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 16);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.try_submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10, "drop drains like shutdown");
    }
}
