//! Property-based tests: the parallel combinators must agree with their
//! serial equivalents bit for bit, for every thread count.

use crate::{par_filter_indices_min, par_fold, par_map_min, with_threads};
use proptest::collection::vec;
use proptest::prelude::*;

/// The thread counts the equivalence properties sweep: the exact serial
/// path, a small parallel split, and more threads than a typical input has
/// chunks (exercising the remainder-distribution logic).
const THREADS: [usize; 3] = [1, 2, 8];

proptest! {
    #[test]
    fn par_map_agrees_with_serial_map(items in vec(any::<u64>(), 0..400)) {
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31).rotate_left(7)).collect();
        for threads in THREADS {
            let got = with_threads(threads, || {
                par_map_min(&items, 1, |x| x.wrapping_mul(31).rotate_left(7))
            });
            prop_assert_eq!(&got, &serial, "threads {}", threads);
        }
    }

    #[test]
    fn par_filter_agrees_with_serial_filter(items in vec(any::<u64>(), 0..400)) {
        let serial: Vec<u32> = items
            .iter()
            .enumerate()
            .filter(|(_, x)| *x % 3 == 0)
            .map(|(i, _)| i as u32)
            .collect();
        for threads in THREADS {
            let got = with_threads(threads, || {
                par_filter_indices_min(&items, 1, |x| *x % 3 == 0)
            });
            prop_assert_eq!(&got, &serial, "threads {}", threads);
        }
    }

    #[test]
    fn par_fold_sum_agrees_with_serial_sum(items in vec(any::<u64>(), 0..400)) {
        let serial: u64 = items.iter().fold(0u64, |a, x| a.wrapping_add(*x));
        for threads in THREADS {
            let got = with_threads(threads, || {
                par_fold(
                    &items,
                    || 0u64,
                    |a, x| a.wrapping_add(*x),
                    |a, b| a.wrapping_add(b),
                )
            });
            prop_assert_eq!(got, serial, "threads {}", threads);
        }
    }

    #[test]
    fn par_fold_concat_preserves_item_order(items in vec(any::<u32>(), 0..300)) {
        // Vec concatenation is a non-commutative monoid: this fails for
        // any chunk reordering, not just wrong contents.
        let serial: Vec<u32> = items.clone();
        for threads in THREADS {
            let got = with_threads(threads, || {
                par_fold(
                    &items,
                    Vec::new,
                    |mut a, x| {
                        a.push(*x);
                        a
                    },
                    |mut a, mut b| {
                        a.append(&mut b);
                        a
                    },
                )
            });
            prop_assert_eq!(&got, &serial, "threads {}", threads);
        }
    }
}
