//! Care-pathway simulation: one person's raw utilization events.
//!
//! The intermediate [`RawEvent`] form is the single source of truth shared
//! by the in-memory collection builder and the raw-source emitters, so the
//! CSV files and the direct `HistoryCollection` describe the *same*
//! population.

use crate::conditions::{ConditionModel, CONDITION_MODELS, NOISE_CONTACTS};
use crate::population::{Person, SynthConfig};
use pastas_codes::Code;
use pastas_model::{Entry, EpisodeKind, MeasurementKind, Payload, SourceKind};
use pastas_time::{Date, DateTime, Duration};
use rand::rngs::StdRng;
use rand::Rng;

/// One raw utilization record, before source formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum RawEvent {
    /// A primary-care or specialist contact with a recorded ICPC diagnosis.
    Contact {
        /// Contact date/time.
        time: DateTime,
        /// Recorded ICPC-2 code.
        icpc: &'static str,
        /// Provider type.
        provider: Provider,
        /// Measurement taken at the contact, if any.
        measurement: Option<(MeasurementKind, f64)>,
    },
    /// A hospital episode with a main ICD-10 diagnosis.
    Admission {
        /// Admission time.
        start: DateTime,
        /// Discharge time.
        end: DateTime,
        /// Main ICD-10 diagnosis.
        icd10: &'static str,
        /// Episode kind (inpatient / outpatient / day treatment).
        kind: EpisodeKind,
    },
    /// A pharmacy dispensing.
    Dispensing {
        /// Dispensing date/time.
        time: DateTime,
        /// ATC code.
        atc: &'static str,
    },
    /// A municipal care-service period.
    Municipal {
        /// Service start.
        start: DateTime,
        /// Service end.
        end: DateTime,
        /// Service kind (home care / nursing home).
        kind: EpisodeKind,
    },
}

/// Provider type on a claims row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provider {
    /// Regular general practitioner.
    Gp,
    /// GP-operated emergency (out-of-hours) service.
    OutOfHours,
    /// Private specialist.
    Specialist,
}

impl RawEvent {
    /// Anchor time (used for ordering rows in emitted files).
    pub fn time(&self) -> DateTime {
        match self {
            RawEvent::Contact { time, .. } | RawEvent::Dispensing { time, .. } => *time,
            RawEvent::Admission { start, .. } | RawEvent::Municipal { start, .. } => *start,
        }
    }

    /// Expand to model entries (a contact with a measurement yields two).
    pub fn to_entries(&self) -> Vec<Entry> {
        match self {
            RawEvent::Contact { time, icpc, provider, measurement } => {
                let source = match provider {
                    Provider::Specialist => SourceKind::Specialist,
                    _ => SourceKind::PrimaryCare,
                };
                let mut out =
                    vec![Entry::event(*time, Payload::Diagnosis(Code::icpc(icpc)), source)];
                if let Some((kind, value)) = measurement {
                    out.push(Entry::event(
                        *time,
                        Payload::Measurement { kind: *kind, value: *value },
                        source,
                    ));
                }
                out
            }
            RawEvent::Admission { start, end, icd10, kind } => vec![
                Entry::interval(*start, *end, Payload::Episode(*kind), SourceKind::Hospital),
                Entry::event(*start, Payload::Diagnosis(Code::icd10(icd10)), SourceKind::Hospital),
            ],
            RawEvent::Dispensing { time, atc } => vec![Entry::event(
                *time,
                Payload::Medication(Code::atc(atc)),
                SourceKind::Prescription,
            )],
            RawEvent::Municipal { start, end, kind } => vec![Entry::interval(
                *start,
                *end,
                Payload::Episode(*kind),
                SourceKind::Municipal,
            )],
        }
    }
}

/// Simulate one person's two-year utilization.
pub fn simulate(person: &Person, config: &SynthConfig, rng: &mut StdRng) -> Vec<RawEvent> {
    let mut events = Vec::new();
    let age = age_at(person.birth_date(), config.window_start);

    for &ci in &person.conditions {
        let model = &CONDITION_MODELS[ci];
        simulate_condition(model, config, rng, &mut events);
    }
    simulate_noise(config, rng, &mut events);
    simulate_municipal(age, person, config, rng, &mut events);

    events.sort_by_key(RawEvent::time);
    events
}

fn age_at(birth: Date, at: Date) -> i32 {
    at.months_between(birth).div_euclid(12)
}

fn simulate_condition(
    model: &ConditionModel,
    config: &SynthConfig,
    rng: &mut StdRng,
    out: &mut Vec<RawEvent>,
) {
    let years = config.window_years as f64;

    // GP follow-up contacts.
    for _ in 0..poisson(rng, model.gp_visits_per_year * years) {
        let time = random_daytime(config, rng);
        let measurement = model.measurement.filter(|_| rng.gen_bool(0.7)).map(|kind| {
            (kind, sample_measurement(kind, rng))
        });
        out.push(RawEvent::Contact { time, icpc: model.icpc, provider: Provider::Gp, measurement });
    }

    // Specialist contacts.
    for _ in 0..poisson(rng, model.specialist_visits_per_year * years) {
        out.push(RawEvent::Contact {
            time: random_daytime(config, rng),
            icpc: model.icpc,
            provider: Provider::Specialist,
            measurement: None,
        });
    }

    // Hospital admissions.
    for _ in 0..poisson(rng, model.admissions_per_year * years) {
        let start = random_daytime(config, rng);
        let los_days = (-model.mean_los_days * (1.0 - rng.gen::<f64>()).ln()).clamp(1.0, 60.0);
        let end = start + Duration::seconds((los_days * 86_400.0) as i64);
        let kind = if rng.gen_bool(0.8) {
            EpisodeKind::Inpatient
        } else if rng.gen_bool(0.5) {
            EpisodeKind::Outpatient
        } else {
            EpisodeKind::DayTreatment
        };
        out.push(RawEvent::Admission { start, end, icd10: model.icd10, kind });
    }

    // Maintenance medication on ~quarterly refill cycles.
    for &atc in model.medications {
        let mut day = rng.gen_range(0.0..90.0);
        let horizon = 365.25 * years;
        while day < horizon {
            let time = config.window_start.add_days(day as i64).at_midnight()
                + Duration::hours(rng.gen_range(9..18));
            out.push(RawEvent::Dispensing { time, atc });
            day += rng.gen_range(75.0..105.0);
        }
    }
}

fn simulate_noise(config: &SynthConfig, rng: &mut StdRng, out: &mut Vec<RawEvent>) {
    let years = config.window_years as f64;
    let total_weight: f64 = NOISE_CONTACTS.iter().map(|&(_, w)| w).sum();
    for _ in 0..poisson(rng, config.noise_contacts_per_year * years) {
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut code = NOISE_CONTACTS[0].0;
        for &(c, w) in &NOISE_CONTACTS {
            if pick < w {
                code = c;
                break;
            }
            pick -= w;
        }
        let provider = if rng.gen_bool(0.15) { Provider::OutOfHours } else { Provider::Gp };
        out.push(RawEvent::Contact {
            time: seasonal_daytime(config, rng),
            icpc: code,
            provider,
            measurement: None,
        });
    }
}

/// A contact time with the winter peak of acute primary care (respiratory
/// infections cluster December–February): acceptance ∝ 1 + 0.35·cos of the
/// annual phase, peaking mid-January.
fn seasonal_daytime(config: &SynthConfig, rng: &mut StdRng) -> DateTime {
    loop {
        let t = random_daytime(config, rng);
        let doy = t.date().ordinal() as f64;
        let phase = std::f64::consts::TAU * (doy - 15.0) / 365.25;
        let weight = (1.0 + 0.35 * phase.cos()) / 1.35;
        if rng.gen_bool(weight.clamp(0.05, 1.0)) {
            return t;
        }
    }
}

fn simulate_municipal(
    age: i32,
    person: &Person,
    config: &SynthConfig,
    rng: &mut StdRng,
    out: &mut Vec<RawEvent>,
) {
    let frail = age >= 80
        || (age >= 75
            && person
                .conditions
                .iter()
                .any(|&ci| CONDITION_MODELS[ci].name == "HeartFailure"));
    if frail && rng.gen_bool(0.35) {
        let window_days = (config.window_years as i64) * 365;
        let s = rng.gen_range(0..window_days / 2);
        let len = rng.gen_range(30..window_days - s);
        out.push(RawEvent::Municipal {
            start: config.window_start.add_days(s).at_midnight(),
            end: config.window_start.add_days(s + len).at_midnight(),
            kind: EpisodeKind::HomeCare,
        });
    }
    if age >= 85 && rng.gen_bool(0.15) {
        let window_days = (config.window_years as i64) * 365;
        let s = rng.gen_range(window_days / 4..window_days);
        out.push(RawEvent::Municipal {
            start: config.window_start.add_days(s).at_midnight(),
            end: config.window_start.add_days(window_days).at_midnight(),
            kind: EpisodeKind::NursingHome,
        });
    }
}

fn random_daytime(config: &SynthConfig, rng: &mut StdRng) -> DateTime {
    let window_days = (config.window_years as i64) * 365;
    let day = rng.gen_range(0..window_days);
    config.window_start.add_days(day).at_midnight()
        + Duration::hours(rng.gen_range(8..20))
        + Duration::minutes(rng.gen_range(0..60))
}

fn sample_measurement(kind: MeasurementKind, rng: &mut StdRng) -> f64 {
    let (mean, sd) = match kind {
        MeasurementKind::SystolicBp => (140.0, 15.0),
        MeasurementKind::DiastolicBp => (85.0, 10.0),
        MeasurementKind::Hba1c => (7.2, 1.0),
        MeasurementKind::Weight => (82.0, 14.0),
        MeasurementKind::PeakFlow => (380.0, 80.0),
        MeasurementKind::Cholesterol => (5.4, 1.0),
    };
    // Box–Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + sd * z).max(0.1)
}

/// Knuth's Poisson sampler (fine for the small rates used here).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn test_person(age: i32, conditions: Vec<usize>) -> Person {
        Person::for_test(
            pastas_model::PatientId(1),
            Date::new(2013 - age, 1, 1).unwrap(),
            pastas_model::Sex::Female,
            conditions,
        )
    }

    fn config() -> SynthConfig {
        SynthConfig::default()
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut r = rng(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 3.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng(2);
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn diabetic_gets_condition_specific_events() {
        let mut r = rng(7);
        let person = test_person(65, vec![0]); // Diabetes model
        let events = simulate(&person, &config(), &mut r);
        assert!(events.iter().any(|e| matches!(e, RawEvent::Contact { icpc: "T90", .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, RawEvent::Dispensing { atc: "A10BA02", .. })));
    }

    #[test]
    fn events_are_time_sorted() {
        let mut r = rng(11);
        let person = test_person(70, vec![0, 1, 4]);
        let events = simulate(&person, &config(), &mut r);
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time());
        }
    }

    #[test]
    fn events_stay_inside_window() {
        let cfg = config();
        let window_end = cfg.window_start.add_days(cfg.window_years as i64 * 365 + 61);
        for seed in 0..10 {
            let mut r = rng(seed);
            let person = test_person(88, vec![3]);
            for e in simulate(&person, &cfg, &mut r) {
                assert!(e.time().date() >= cfg.window_start);
                assert!(e.time().date() <= window_end, "{:?}", e);
            }
        }
    }

    #[test]
    fn healthy_person_has_only_noise() {
        let mut r = rng(13);
        let person = test_person(40, vec![]);
        let events = simulate(&person, &config(), &mut r);
        assert!(events
            .iter()
            .all(|e| matches!(e, RawEvent::Contact { measurement: None, .. })));
    }

    #[test]
    fn admissions_expand_to_interval_plus_diagnosis() {
        let e = RawEvent::Admission {
            start: Date::new(2013, 5, 1).unwrap().at_midnight(),
            end: Date::new(2013, 5, 6).unwrap().at_midnight(),
            icd10: "I50",
            kind: EpisodeKind::Inpatient,
        };
        let entries = e.to_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].is_interval());
        assert!(entries[1].is_event());
        assert_eq!(entries[1].code().unwrap().value, "I50");
    }

    #[test]
    fn contact_with_measurement_expands_to_two_entries() {
        let e = RawEvent::Contact {
            time: Date::new(2013, 5, 1).unwrap().at_midnight(),
            icpc: "K86",
            provider: Provider::Gp,
            measurement: Some((MeasurementKind::SystolicBp, 150.0)),
        };
        assert_eq!(e.to_entries().len(), 2);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let person = test_person(70, vec![0, 2]);
        let a = simulate(&person, &config(), &mut rng(99));
        let b = simulate(&person, &config(), &mut rng(99));
        assert_eq!(a, b);
        let c = simulate(&person, &config(), &mut rng(100));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn background_contacts_peak_in_winter() {
        // Pool noise contacts over many healthy patients: winter months
        // (Dec–Feb) should out-draw summer (Jun–Aug) by a clear margin.
        let cfg = config();
        let mut winter = 0usize;
        let mut summer = 0usize;
        for seed in 0..400 {
            let mut r = rng(seed);
            let person = test_person(45, vec![]);
            for e in simulate(&person, &cfg, &mut r) {
                match e.time().date().month() {
                    12 | 1 | 2 => winter += 1,
                    6..=8 => summer += 1,
                    _ => {}
                }
            }
        }
        assert!(
            winter as f64 > summer as f64 * 1.25,
            "winter {winter} vs summer {summer}"
        );
    }

    #[test]
    fn measurements_are_physiological() {
        let mut r = rng(21);
        for _ in 0..200 {
            let bp = sample_measurement(MeasurementKind::SystolicBp, &mut r);
            assert!(bp > 60.0 && bp < 260.0, "implausible BP {bp}");
        }
    }
}
