//! Synthetic population and raw-source generation.
//!
//! The paper's data — "a prospective longitudinal cohort study with data on
//! somatic primary and specialist health care utilization for a two-year
//! period" over **168,000** patients — is proprietary Norwegian registry
//! data. This crate is the documented substitution (see DESIGN.md §2): a
//! seeded generator that reproduces the *statistical shape* that matters to
//! the workbench:
//!
//! * an adult, chronically-ill-skewed age/sex structure;
//! * per-condition prevalence rising with age (diabetes calibrated near the
//!   paper's 13k/168k ≈ 7.7% cohort selectivity);
//! * per-condition care pathways over the two-year window: GP contacts
//!   with ICPC-2 diagnoses and measurements, specialist contacts, hospital
//!   episodes with ICD-10 codes, ATC-coded dispensings on refill cycles,
//!   and municipal-care intervals for the frail elderly;
//! * background noise: unrelated acute contacts, out-of-hours visits.
//!
//! Output comes in two forms. [`generate_collection`] builds the in-memory
//! [`HistoryCollection`] directly (used at the full 168k scale).
//! [`emit::RawSources`] renders the same population as **four raw source
//! files in four deliberately different CSV dialects with four different
//! patient-identifier schemes** — the heterogeneous inputs `pastas-ingest`
//! must align.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod emit;
mod pathways;
mod population;

pub use population::{
    generate_collection, generate_population, person_at, Person, Population, SynthConfig,
};

pub use pastas_model::HistoryCollection;
