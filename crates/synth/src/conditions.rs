//! Condition models: prevalence and care-pathway parameters.
//!
//! Prevalences follow the published Norwegian general-population figures in
//! rough strokes (diabetes ~5% overall rising steeply with age, COPD ~6% in
//! 40+, hypertension the most common). Exact values are tuned so the E5
//! experiment's "predefined characteristics" select ≈7.7% of the
//! population, the paper's 13,000-of-168,000.

/// Care-pathway parameters for one chronic (or acute-recurring) condition.
#[derive(Debug, Clone, Copy)]
pub struct ConditionModel {
    /// Name, matching `pastas_ontology::integration::CONDITIONS`.
    pub name: &'static str,
    /// ICPC-2 code GPs record for it.
    pub icpc: &'static str,
    /// ICD-10 category hospitals record for it.
    pub icd10: &'static str,
    /// Baseline prevalence at age 40 (fraction).
    pub prevalence_at_40: f64,
    /// Multiplicative prevalence growth per decade after 40.
    pub growth_per_decade: f64,
    /// Expected GP contacts per year that carry this diagnosis.
    pub gp_visits_per_year: f64,
    /// Expected specialist contacts per year.
    pub specialist_visits_per_year: f64,
    /// Expected acute hospital admissions per year.
    pub admissions_per_year: f64,
    /// Mean inpatient length of stay, days.
    pub mean_los_days: f64,
    /// ATC codes of the maintenance medications (dispensed ~quarterly).
    pub medications: &'static [&'static str],
    /// Measurement taken at GP follow-ups, if any.
    pub measurement: Option<pastas_model::MeasurementKind>,
}

use pastas_model::MeasurementKind as M;

/// The condition models of the synthetic population.
pub const CONDITION_MODELS: [ConditionModel; 10] = [
    ConditionModel {
        name: "Diabetes",
        icpc: "T90",
        icd10: "E11",
        // Calibrated: population prevalence ≈ 7.7% under the default age
        // structure, matching the paper's 13k/168k cohort selection.
        prevalence_at_40: 0.022,
        growth_per_decade: 1.55,
        gp_visits_per_year: 3.5,
        specialist_visits_per_year: 0.4,
        admissions_per_year: 0.10,
        mean_los_days: 4.0,
        medications: &["A10BA02", "C10AA01"],
        measurement: Some(M::Hba1c),
    },
    ConditionModel {
        name: "Hypertension",
        icpc: "K86",
        icd10: "I10",
        prevalence_at_40: 0.12,
        growth_per_decade: 1.45,
        gp_visits_per_year: 2.0,
        specialist_visits_per_year: 0.1,
        admissions_per_year: 0.02,
        mean_los_days: 2.0,
        medications: &["C09AA02", "C03CA01"],
        measurement: Some(M::SystolicBp),
    },
    ConditionModel {
        name: "IschaemicHeartDisease",
        icpc: "K74",
        icd10: "I20",
        prevalence_at_40: 0.02,
        growth_per_decade: 1.8,
        gp_visits_per_year: 2.5,
        specialist_visits_per_year: 0.8,
        admissions_per_year: 0.25,
        mean_los_days: 5.0,
        medications: &["B01AC06", "C07AB02", "C10AA05"],
        measurement: Some(M::SystolicBp),
    },
    ConditionModel {
        name: "HeartFailure",
        icpc: "K77",
        icd10: "I50",
        prevalence_at_40: 0.005,
        growth_per_decade: 2.2,
        gp_visits_per_year: 4.0,
        specialist_visits_per_year: 1.0,
        admissions_per_year: 0.5,
        mean_los_days: 7.0,
        medications: &["C07AB02", "C03CA01", "C09AA02"],
        measurement: Some(M::Weight),
    },
    ConditionModel {
        name: "COPD",
        icpc: "R95",
        icd10: "J44",
        prevalence_at_40: 0.03,
        growth_per_decade: 1.6,
        gp_visits_per_year: 3.0,
        specialist_visits_per_year: 0.5,
        admissions_per_year: 0.3,
        mean_los_days: 6.0,
        medications: &["R03AC02", "R03BB04"],
        measurement: Some(M::PeakFlow),
    },
    ConditionModel {
        name: "Asthma",
        icpc: "R96",
        icd10: "J45",
        prevalence_at_40: 0.06,
        growth_per_decade: 0.95,
        gp_visits_per_year: 1.5,
        specialist_visits_per_year: 0.2,
        admissions_per_year: 0.05,
        mean_los_days: 3.0,
        medications: &["R03AC02"],
        measurement: Some(M::PeakFlow),
    },
    ConditionModel {
        name: "Depression",
        icpc: "P76",
        icd10: "F32",
        prevalence_at_40: 0.07,
        growth_per_decade: 1.0,
        gp_visits_per_year: 3.0,
        specialist_visits_per_year: 0.6,
        admissions_per_year: 0.04,
        mean_los_days: 14.0,
        medications: &["N06AB04"],
        measurement: None,
    },
    ConditionModel {
        name: "AtrialFibrillation",
        icpc: "K78",
        icd10: "I48",
        prevalence_at_40: 0.005,
        growth_per_decade: 2.0,
        gp_visits_per_year: 2.0,
        specialist_visits_per_year: 0.5,
        admissions_per_year: 0.15,
        mean_los_days: 3.0,
        medications: &["B01AA03", "C07AB02"],
        measurement: None,
    },
    ConditionModel {
        name: "Osteoarthrosis",
        icpc: "L90",
        icd10: "M17",
        prevalence_at_40: 0.05,
        growth_per_decade: 1.5,
        gp_visits_per_year: 1.5,
        specialist_visits_per_year: 0.3,
        admissions_per_year: 0.08,
        mean_los_days: 4.0,
        medications: &["N02BE01"],
        measurement: None,
    },
    ConditionModel {
        name: "RheumatoidArthritis",
        icpc: "L88",
        icd10: "M06",
        prevalence_at_40: 0.008,
        growth_per_decade: 1.3,
        gp_visits_per_year: 2.5,
        specialist_visits_per_year: 1.5,
        admissions_per_year: 0.06,
        mean_los_days: 5.0,
        medications: &["L04AX03", "N02BE01"],
        measurement: None,
    },
];

impl ConditionModel {
    /// Prevalence at a given age, clamped to `[0, 0.85]`.
    pub fn prevalence_at(&self, age: i32) -> f64 {
        if age < 18 {
            return 0.0;
        }
        let decades = (age as f64 - 40.0) / 10.0;
        (self.prevalence_at_40 * self.growth_per_decade.powf(decades)).clamp(0.0, 0.85)
    }
}

/// Acute, noise-level ICPC contact reasons for the background process, with
/// relative weights.
pub const NOISE_CONTACTS: [(&str, f64); 8] = [
    ("A01", 1.0),  // general pain
    ("R05", 2.0),  // cough
    ("D01", 1.0),  // abdominal pain
    ("A04", 1.5),  // tiredness
    ("H71", 0.5),  // otitis
    ("R81", 0.3),  // pneumonia (acute)
    ("A98", 1.2),  // health maintenance
    ("A97", 0.7),  // no disease
];

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;

    #[test]
    fn all_model_codes_are_valid() {
        for m in CONDITION_MODELS {
            assert!(Code::icpc(m.icpc).is_valid(), "{}: bad ICPC {}", m.name, m.icpc);
            assert!(Code::icd10(m.icd10).is_valid(), "{}: bad ICD {}", m.name, m.icd10);
            for atc in m.medications {
                assert!(Code::atc(atc).is_valid(), "{}: bad ATC {atc}", m.name);
            }
        }
        for (c, _) in NOISE_CONTACTS {
            assert!(Code::icpc(c).is_valid(), "bad noise code {c}");
        }
    }

    #[test]
    fn prevalence_rises_with_age_for_chronic_conditions() {
        let diabetes = &CONDITION_MODELS[0];
        assert!(diabetes.prevalence_at(80) > diabetes.prevalence_at(60));
        assert!(diabetes.prevalence_at(60) > diabetes.prevalence_at(40));
        assert_eq!(diabetes.prevalence_at(10), 0.0);
    }

    #[test]
    fn prevalence_is_clamped() {
        let hf = CONDITION_MODELS.iter().find(|m| m.name == "HeartFailure").unwrap();
        assert!(hf.prevalence_at(200) <= 0.85);
        assert!(hf.prevalence_at(18) >= 0.0);
    }

    #[test]
    fn model_names_match_ontology_conditions() {
        // Keep the synth models consistent with the integration ontology's
        // condition vocabulary (checked textually to avoid a dependency).
        let known = [
            "Diabetes", "Hypertension", "IschaemicHeartDisease", "HeartFailure",
            "AtrialFibrillation", "Stroke", "COPD", "Asthma", "Depression", "Anxiety",
            "Dementia", "RheumatoidArthritis", "Osteoarthrosis", "ChronicKidneyDisease",
            "Migraine", "Hypothyroidism", "Pneumonia",
        ];
        for m in CONDITION_MODELS {
            assert!(known.contains(&m.name), "{} unknown to the ontology", m.name);
        }
    }
}
