//! Raw-source emission: the four heterogeneous files.
//!
//! Each source uses a **different CSV dialect and a different patient
//! identifier scheme**, mimicking the real aggregation problem:
//!
//! | source | file | dialect | patient id form |
//! |---|---|---|---|
//! | GP / specialist claims (KUHR-like) | `claims` | `;`-separated, `DD.MM.YYYY` dates | `NIN-0000123` |
//! | hospital episodes (NPR-like) | `hospital` | `,`-separated, ISO dates | zero-padded digits `00000123` |
//! | municipal care (IPLOS-like) | `municipal` | `|`-separated, ISO dates | `M123` |
//! | dispensings (NorPD-like) | `prescriptions` | tab-separated, ISO datetimes | plain digits `123` |
//!
//! A fifth file, the `persons` register, carries birth date and sex per
//! national id — the linkage anchor.
//!
//! A configurable **mess factor** injects the paper's observed realities:
//! "differing conventions and many typing errors in the text" — duplicate
//! rows, invalid dates (pre-birth, the §IV validation case), stray
//! whitespace, and free-text notes with embedded measurements that only a
//! regex can recover.

use crate::pathways::{Provider, RawEvent};
use crate::population::Population;
use pastas_model::EpisodeKind;
use pastas_time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The five emitted files.
#[derive(Debug, Clone, Default)]
pub struct RawSources {
    /// Person register: `nin;birth_date;sex`.
    pub persons: String,
    /// GP/specialist/OOH claims.
    pub claims: String,
    /// Hospital episodes.
    pub hospital: String,
    /// Municipal care periods.
    pub municipal: String,
    /// Pharmacy dispensings.
    pub prescriptions: String,
}

/// Controls the injected data-quality problems.
#[derive(Debug, Clone, Copy)]
pub struct MessConfig {
    /// Probability a claims row is emitted twice (duplicate records).
    pub duplicate_prob: f64,
    /// Probability a claims row gets a clearly invalid (pre-birth) date.
    pub invalid_date_prob: f64,
    /// Probability a claims row carries a free-text note with an embedded
    /// blood-pressure reading (regex-extraction fodder).
    pub note_prob: f64,
}

impl Default for MessConfig {
    fn default() -> MessConfig {
        MessConfig { duplicate_prob: 0.01, invalid_date_prob: 0.003, note_prob: 0.05 }
    }
}

/// Patient identifier in each source's scheme.
pub fn claims_id(id: u64) -> String {
    format!("NIN-{id:07}")
}
/// Hospital scheme: zero-padded digits.
pub fn hospital_id(id: u64) -> String {
    format!("{id:08}")
}
/// Municipal scheme: `M` prefix.
pub fn municipal_id(id: u64) -> String {
    format!("M{id}")
}
/// Prescription scheme: plain digits.
pub fn prescription_id(id: u64) -> String {
    id.to_string()
}

fn norwegian_date(d: Date) -> String {
    format!("{:02}.{:02}.{:04}", d.day(), d.month(), d.year())
}

/// Render the population's utilization as raw source files.
pub fn emit(pop: &Population, mess: MessConfig) -> RawSources {
    let mut out = RawSources::default();
    let mut rng = StdRng::seed_from_u64(pop.seed ^ 0xE117);

    out.persons.push_str("nin;birth_date;sex\n");
    out.claims.push_str("claim_id;patient;date;provider;icpc;note\n");
    out.hospital.push_str("episode_id,patient,admitted,discharged,icd10_main,care_level\n");
    out.municipal.push_str("patient|service|from|to\n");
    out.prescriptions.push_str("patient\tdispensed\tatc\tddd\n");

    let mut claim_no = 0u64;
    let mut episode_no = 0u64;

    for (i, person) in pop.persons.iter().enumerate() {
        let id = person.id().0;
        let sex = match person.patient().sex {
            pastas_model::Sex::Female => "F",
            pastas_model::Sex::Male => "M",
        };
        writeln!(out.persons, "{};{};{}", claims_id(id), person.birth_date(), sex)
            .expect("write to String");

        for event in pop.events_for(i) {
            match event {
                RawEvent::Contact { time, icpc, provider, measurement } => {
                    claim_no += 1;
                    let provider = match provider {
                        Provider::Gp => "GP",
                        Provider::OutOfHours => "OOH",
                        Provider::Specialist => "SPEC",
                    };
                    let date = if rng.gen_bool(mess.invalid_date_prob) {
                        // A clearly invalid date: decades before birth.
                        norwegian_date(person.birth_date().add_days(-9_000))
                    } else {
                        norwegian_date(time.date())
                    };
                    let note = match measurement {
                        Some((kind, value)) => {
                            format!("{} {:.0} {}", kind.label(), value, kind.unit())
                        }
                        None if rng.gen_bool(mess.note_prob) => {
                            format!("BT {}/{}", rng.gen_range(110..180), rng.gen_range(60..100))
                        }
                        None => String::new(),
                    };
                    let row =
                        format!("K{claim_no:09};{};{date};{provider};{icpc};{note}\n", claims_id(id));
                    out.claims.push_str(&row);
                    if rng.gen_bool(mess.duplicate_prob) {
                        out.claims.push_str(&row);
                    }
                }
                RawEvent::Admission { start, end, icd10, kind } => {
                    episode_no += 1;
                    let level = match kind {
                        EpisodeKind::Inpatient => "inpatient",
                        EpisodeKind::Outpatient => "outpatient",
                        _ => "day",
                    };
                    writeln!(
                        out.hospital,
                        "E{episode_no:08},{},{},{},{icd10},{level}",
                        hospital_id(id),
                        start.date(),
                        end.date(),
                    )
                    .expect("write to String");
                }
                RawEvent::Dispensing { time, atc } => {
                    writeln!(
                        out.prescriptions,
                        "{}\t{}\t{atc}\t{:.1}",
                        prescription_id(id),
                        time,
                        rng.gen_range(10.0..100.0),
                    )
                    .expect("write to String");
                }
                RawEvent::Municipal { start, end, kind } => {
                    let service = match kind {
                        EpisodeKind::NursingHome => "nursing_home",
                        _ => "home_care",
                    };
                    writeln!(
                        out.municipal,
                        "{}|{service}|{}|{}",
                        municipal_id(id),
                        start.date(),
                        end.date(),
                    )
                    .expect("write to String");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate_population, SynthConfig};

    fn small_pop() -> Population {
        generate_population(SynthConfig::with_patients(120), 17)
    }

    #[test]
    fn all_files_have_headers_and_rows() {
        let s = emit(&small_pop(), MessConfig::default());
        assert!(s.persons.starts_with("nin;birth_date;sex\n"));
        assert!(s.claims.starts_with("claim_id;patient;date;provider;icpc;note\n"));
        assert!(s.hospital.starts_with("episode_id,patient,admitted,"));
        assert!(s.municipal.starts_with("patient|service|from|to\n"));
        assert!(s.prescriptions.starts_with("patient\tdispensed\tatc\tddd\n"));
        assert_eq!(s.persons.lines().count(), 121);
        assert!(s.claims.lines().count() > 120, "expect contacts");
        assert!(s.prescriptions.lines().count() > 10, "expect dispensings");
    }

    #[test]
    fn identifier_schemes_differ_per_source() {
        assert_eq!(claims_id(123), "NIN-0000123");
        assert_eq!(hospital_id(123), "00000123");
        assert_eq!(municipal_id(123), "M123");
        assert_eq!(prescription_id(123), "123");
    }

    #[test]
    fn claims_use_norwegian_dates() {
        let s = emit(&small_pop(), MessConfig::default());
        let row = s.claims.lines().nth(1).unwrap();
        let date_field = row.split(';').nth(2).unwrap();
        // DD.MM.YYYY
        assert_eq!(date_field.len(), 10);
        assert_eq!(date_field.chars().nth(2), Some('.'));
        assert_eq!(date_field.chars().nth(5), Some('.'));
    }

    #[test]
    fn mess_injection_produces_duplicates_and_bad_dates() {
        let pop = generate_population(SynthConfig::with_patients(400), 23);
        let messy = emit(
            &pop,
            MessConfig { duplicate_prob: 0.2, invalid_date_prob: 0.1, note_prob: 0.3 },
        );
        let clean = emit(
            &pop,
            MessConfig { duplicate_prob: 0.0, invalid_date_prob: 0.0, note_prob: 0.0 },
        );
        assert!(messy.claims.lines().count() > clean.claims.lines().count());
        // Notes with embedded BP readings appear.
        assert!(messy.claims.contains("BT "));
    }

    #[test]
    fn emission_is_deterministic() {
        let pop = small_pop();
        let a = emit(&pop, MessConfig::default());
        let b = emit(&pop, MessConfig::default());
        assert_eq!(a.claims, b.claims);
        assert_eq!(a.hospital, b.hospital);
    }

    #[test]
    fn hospital_rows_have_six_fields() {
        let s = emit(&small_pop(), MessConfig::default());
        for row in s.hospital.lines().skip(1) {
            assert_eq!(row.split(',').count(), 6, "bad row {row}");
        }
    }
}
