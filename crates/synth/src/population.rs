//! Population generation: demographics, condition assignment, and assembly
//! into the in-memory collection.

use crate::conditions::CONDITION_MODELS;
use crate::pathways;
use pastas_model::{CollectionBuilder, History, HistoryCollection, Patient, PatientId, Sex};
use pastas_time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of patients (the paper's full set is 168,000).
    pub patients: usize,
    /// Start of the observation window (§III: a two-year period).
    pub window_start: Date,
    /// Window length in whole years.
    pub window_years: u32,
    /// Background (non-condition) GP contacts per person-year.
    pub noise_contacts_per_year: f64,
    /// Seal the collection's arena every this many patients (a fresh
    /// [`pastas_model::EventStore`] with its own interner per patient
    /// range — the sharded layout the query index scales on). `0` (the
    /// default) keeps the single shared arena. Align with the query
    /// index's 65,536-row shard width for one arena per index shard.
    pub shard_patients: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            patients: 1_000,
            window_start: Date::new(2013, 1, 1).expect("valid date"),
            window_years: 2,
            noise_contacts_per_year: 1.0,
            shard_patients: 0,
        }
    }
}

impl SynthConfig {
    /// The paper-scale configuration: 168,000 patients over two years.
    pub fn paper_scale() -> SynthConfig {
        SynthConfig { patients: 168_000, ..SynthConfig::default() }
    }

    /// A configuration with `patients` patients and defaults otherwise.
    pub fn with_patients(patients: usize) -> SynthConfig {
        SynthConfig { patients, ..SynthConfig::default() }
    }

    /// End of the observation window.
    pub fn window_end(&self) -> Date {
        self.window_start.add_days(self.window_years as i64 * 365)
    }
}

/// A generated person: demographics plus assigned condition models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    patient: Patient,
    /// Indexes into [`CONDITION_MODELS`].
    pub conditions: Vec<usize>,
}

impl Person {
    /// Demographics.
    pub fn patient(&self) -> &Patient {
        &self.patient
    }

    /// Patient id.
    pub fn id(&self) -> PatientId {
        self.patient.id
    }

    /// Birth date.
    pub fn birth_date(&self) -> Date {
        self.patient.birth_date
    }

    /// Names of the person's conditions.
    pub fn condition_names(&self) -> Vec<&'static str> {
        self.conditions.iter().map(|&i| CONDITION_MODELS[i].name).collect()
    }

    /// Test-only constructor (used by the pathway unit tests).
    #[doc(hidden)]
    pub fn for_test(id: PatientId, birth_date: Date, sex: Sex, conditions: Vec<usize>) -> Person {
        Person { patient: Patient { id, birth_date, sex }, conditions }
    }
}

/// A generated population (demographics only; utilization is simulated
/// per-person on demand so the 168k case streams).
#[derive(Debug, Clone)]
pub struct Population {
    /// The generator configuration.
    pub config: SynthConfig,
    /// Master seed.
    pub seed: u64,
    /// The persons.
    pub persons: Vec<Person>,
}

/// Generate one person's skeleton (id, demographics, conditions) —
/// deterministic in `(seed, index)` alone, so populations stream:
/// callers can materialize person `i` without holding persons `0..i`.
pub fn person_at(config: &SynthConfig, seed: u64, index: usize) -> Person {
    let mut rng = person_rng(seed, index as u64, 0);
    let id = PatientId(index as u64 + 1);
    // Adult, elderly-skewed age structure: 18 + 77·u^0.85 gives a mean
    // near 54 with a solid 80+ tail — the chronically-ill cohort shape.
    let age = 18.0 + 77.0 * rng.gen::<f64>().powf(0.85);
    let birth_date = config
        .window_start
        .add_days(-(age * 365.25) as i64)
        .first_of_month()
        .add_days(rng.gen_range(0..28));
    let sex = if rng.gen_bool(0.52) { Sex::Female } else { Sex::Male };
    let age_years = age as i32;

    // Condition assignment with simple comorbidity coupling: diabetes
    // raises hypertension and IHD odds; heart conditions cluster.
    let mut conditions = Vec::new();
    let mut boost = 1.0;
    for (ci, model) in CONDITION_MODELS.iter().enumerate() {
        let mut p = model.prevalence_at(age_years);
        if boost > 1.0
            && matches!(model.name, "Hypertension" | "IschaemicHeartDisease" | "HeartFailure")
        {
            p = (p * boost).min(0.9);
        }
        if rng.gen_bool(p) {
            conditions.push(ci);
            if model.name == "Diabetes" || model.name == "IschaemicHeartDisease" {
                boost = 1.6;
            }
        }
    }
    Person { patient: Patient { id, birth_date, sex }, conditions }
}

/// Generate the population skeleton: ids, demographics, conditions.
pub fn generate_population(config: SynthConfig, seed: u64) -> Population {
    let persons = (0..config.patients).map(|i| person_at(&config, seed, i)).collect();
    Population { config, seed, persons }
}

impl Population {
    /// Simulate one person's raw events (deterministic in `(seed, person)`).
    pub fn events_for(&self, index: usize) -> Vec<pathways::RawEvent> {
        let person = &self.persons[index];
        let mut rng = person_rng(self.seed, index as u64, 1);
        pathways::simulate(person, &self.config, &mut rng)
    }

    /// Build the full in-memory history for one person.
    pub fn history_for(&self, index: usize) -> History {
        let person = &self.persons[index];
        let mut h = History::new(*person.patient());
        for raw in self.events_for(index) {
            h.insert_all(raw.to_entries());
        }
        h
    }

    /// Fraction of persons having the named condition.
    pub fn prevalence(&self, condition: &str) -> f64 {
        if self.persons.is_empty() {
            return 0.0;
        }
        let n = self
            .persons
            .iter()
            .filter(|p| p.condition_names().contains(&condition))
            .count();
        n as f64 / self.persons.len() as f64
    }
}

/// Generate the full collection in one call.
///
/// Patients land in shared columnar [`pastas_model::EventStore`]
/// arena(s) via [`CollectionBuilder`] — one arena by default, one per
/// [`SynthConfig::shard_patients`]-sized patient range when set — so
/// each code value interns once per arena and entries pack in
/// struct-of-arrays form. Persons stream: each is generated, simulated,
/// appended, and dropped, so peak RSS at the 10M tier is the arenas
/// themselves, not a materialized population.
pub fn generate_collection(config: SynthConfig, seed: u64) -> HistoryCollection {
    let mut builder = CollectionBuilder::new().with_shard_patients(config.shard_patients);
    for i in 0..config.patients {
        let person = person_at(&config, seed, i);
        let mut rng = person_rng(seed, i as u64, 1);
        let mut entries = Vec::new();
        for raw in pathways::simulate(&person, &config, &mut rng) {
            entries.extend(raw.to_entries());
        }
        builder.add_patient(*person.patient(), entries);
    }
    let (collection, _) = builder.build();
    collection
}

/// Independent per-person RNG streams: stable under reordering and
/// partial generation.
fn person_rng(seed: u64, person: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ person.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ stream.wrapping_mul(0x94D0_49BB_1331_11EB),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = generate_population(SynthConfig::with_patients(200), 42);
        let b = generate_population(SynthConfig::with_patients(200), 42);
        assert_eq!(a.persons, b.persons);
        let c = generate_population(SynthConfig::with_patients(200), 43);
        assert_ne!(a.persons, c.persons);
    }

    #[test]
    fn ages_are_adult_and_plausible() {
        let pop = generate_population(SynthConfig::with_patients(2_000), 1);
        let window_start = pop.config.window_start;
        let mut sum = 0i64;
        for p in &pop.persons {
            let age = window_start.months_between(p.birth_date()) / 12;
            assert!((18..=96).contains(&age), "age {age}");
            sum += age as i64;
        }
        let mean = sum as f64 / pop.persons.len() as f64;
        assert!((45.0..65.0).contains(&mean), "mean age {mean}");
    }

    #[test]
    fn diabetes_prevalence_matches_the_papers_selectivity() {
        // The paper selects 13,000 of 168,000 ≈ 7.7%; the E5 experiment
        // uses diabetes as the predefined characteristic.
        let pop = generate_population(SynthConfig::with_patients(20_000), 7);
        let p = pop.prevalence("Diabetes");
        assert!((0.06..0.095).contains(&p), "diabetes prevalence {p}");
    }

    #[test]
    fn comorbidity_coupling_is_positive() {
        let pop = generate_population(SynthConfig::with_patients(30_000), 3);
        let (mut dm_ht, mut dm, mut ht) = (0f64, 0f64, 0f64);
        let n = pop.persons.len() as f64;
        for p in &pop.persons {
            let names = p.condition_names();
            let d = names.contains(&"Diabetes");
            let h = names.contains(&"Hypertension");
            if d {
                dm += 1.0;
            }
            if h {
                ht += 1.0;
            }
            if d && h {
                dm_ht += 1.0;
            }
        }
        // P(HT | DM) > P(HT): the coupling is visible.
        assert!(dm_ht / dm > ht / n, "no comorbidity lift");
    }

    #[test]
    fn histories_are_valid_and_nonempty_for_sick_patients() {
        let pop = generate_population(SynthConfig::with_patients(300), 5);
        for i in 0..pop.persons.len() {
            let h = pop.history_for(i);
            for e in h.entries() {
                assert!(e.start().date() >= h.patient().birth_date);
            }
            if !pop.persons[i].conditions.is_empty() {
                assert!(!h.is_empty(), "sick patient with empty history");
            }
        }
    }

    #[test]
    fn collection_assembly() {
        let c = generate_collection(SynthConfig::with_patients(150), 11);
        assert_eq!(c.len(), 150);
        let stats = c.stats();
        assert!(stats.entries > 150, "population should have utilization");
        // Everything inside (or at least overlapping) the two-year window.
        let start = SynthConfig::default().window_start.at_midnight();
        assert!(stats.first.unwrap() >= start);
    }

    #[test]
    fn person_at_streams_the_same_population() {
        let pop = generate_population(SynthConfig::with_patients(100), 42);
        for (i, p) in pop.persons.iter().enumerate() {
            assert_eq!(*p, person_at(&pop.config, 42, i), "person {i}");
        }
    }

    #[test]
    fn sharded_generation_matches_monolithic_contents() {
        let mono = generate_collection(SynthConfig::with_patients(300), 17);
        let config = SynthConfig { shard_patients: 128, ..SynthConfig::with_patients(300) };
        let sharded = generate_collection(config, 17);
        assert_eq!(mono.sharded_store().shard_count(), 1);
        assert_eq!(sharded.sharded_store().shard_count(), 3, "ceil(300/128)");
        assert_eq!(mono.len(), sharded.len());
        for (a, b) in mono.iter().zip(sharded.iter()) {
            assert_eq!(a.patient(), b.patient());
            assert_eq!(a.entries().to_vec(), b.entries().to_vec());
        }
    }

    #[test]
    fn mean_entries_per_patient_is_realistic() {
        let c = generate_collection(SynthConfig::with_patients(1_000), 13);
        let mean = c.stats().mean_entries;
        // Chronically-ill cohort: roughly 5–30 entries over two years.
        assert!((4.0..30.0).contains(&mean), "mean entries {mean}");
    }
}
