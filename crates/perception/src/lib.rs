//! Perceptual models behind the visualization design.
//!
//! §II.B of the paper grounds its encoding choices in preattentive
//! processing: "the time used to process the visualization (search for the
//! red circle) is independent of the number of distracting elements", while
//! conjunction search "increases linearly with the number of distracting
//! elements". This crate makes those claims *executable*:
//!
//! * [`search`] — a visual-search response-time simulator in the
//!   Treisman feature-integration tradition, plus a classifier that decides
//!   whether a target/distractor display affords preattentive search at
//!   all. E4 regenerates Fig. 3's flat-vs-linear RT curves from it, and the
//!   viz glyph/color assignments are tested against the classifier.
//! * [`color`] — sRGB → CIE L\*a\*b\* conversion and ΔE distance, used to
//!   validate that the medication palette keeps every pair of classes
//!   discriminable.
//! * [`cost`] — cost-of-knowledge accounting (§II.C.1, Pirolli & Card):
//!   charge every interaction a time cost and compare exploration
//!   strategies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod cost;
pub mod search;

pub use color::{delta_e, rgb_to_lab, Lab};
pub use search::{classify_search, simulate_rt, Item, SearchCondition, SearchExperiment};
