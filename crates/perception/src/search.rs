//! The visual-search simulator and display classifier.
//!
//! Response-time model (feature-integration theory, parameters in the
//! range reported by Treisman & Gelade 1980 and Wolfe's reviews):
//!
//! * **feature search** (target differs from every distractor on one
//!   dimension): RT = base + ε — flat in set size;
//! * **conjunction search**: RT = base + slope·N (target absent) or
//!   base + slope·N/2 on average (target present, self-terminating serial
//!   scan).

use rand::rngs::StdRng;
use rand::Rng;

/// A display item: the two features the workbench actually uses
/// (glyph shape and color class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item {
    /// Shape index (square/arrow/triangle/…).
    pub shape: u8,
    /// Color-class index.
    pub color: u8,
}

/// The search regime a display affords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchCondition {
    /// Target uniquely identified by a single feature: preattentive, flat RT.
    Feature,
    /// Target identified only by a feature conjunction: serial, linear RT.
    Conjunction,
    /// Target identical to some distractor: not findable.
    Indistinguishable,
}

/// Classify a display: can `target` be found preattentively among
/// `distractors`?
///
/// Rule (standard FIT reading): if the target's shape differs from every
/// distractor's shape, or its color differs from every distractor's color,
/// a single feature map flags it — feature search. If it shares shape with
/// some distractor and color with some (other) distractor but no distractor
/// equals it, finding it requires binding — conjunction search.
pub fn classify_search(target: Item, distractors: &[Item]) -> SearchCondition {
    if distractors.contains(&target) {
        return SearchCondition::Indistinguishable;
    }
    let unique_shape = distractors.iter().all(|d| d.shape != target.shape);
    let unique_color = distractors.iter().all(|d| d.color != target.color);
    if unique_shape || unique_color {
        SearchCondition::Feature
    } else {
        SearchCondition::Conjunction
    }
}

/// RT-model parameters (milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct RtModel {
    /// Base (non-search) time: perception + response.
    pub base_ms: f64,
    /// Per-item scan cost in serial search.
    pub slope_ms_per_item: f64,
    /// Gaussian noise SD.
    pub noise_sd_ms: f64,
}

impl Default for RtModel {
    fn default() -> RtModel {
        RtModel { base_ms: 450.0, slope_ms_per_item: 45.0, noise_sd_ms: 40.0 }
    }
}

/// Simulate one trial's response time.
///
/// * Feature search: flat in `set_size`.
/// * Conjunction, target present: self-terminating — on average half the
///   items are scanned.
/// * Conjunction, target absent: exhaustive — all items scanned (slope
///   2× the present case, the classic signature).
pub fn simulate_rt(
    condition: SearchCondition,
    set_size: usize,
    target_present: bool,
    model: &RtModel,
    rng: &mut StdRng,
) -> f64 {
    let scan = match condition {
        SearchCondition::Feature => 0.0,
        SearchCondition::Conjunction => {
            let n = set_size as f64;
            if target_present {
                // Uniform position of the target in the scan order.
                model.slope_ms_per_item * n * rng.gen::<f64>()
            } else {
                model.slope_ms_per_item * n
            }
        }
        SearchCondition::Indistinguishable => {
            // Modelled as exhaustive scan then a (wrong) absent response.
            model.slope_ms_per_item * set_size as f64
        }
    };
    let noise = gaussian(rng) * model.noise_sd_ms;
    (model.base_ms + scan + noise).max(100.0)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A full experiment: sweep set sizes, many trials each, fit RT ~ set size.
#[derive(Debug, Clone)]
pub struct SearchExperiment {
    /// Set sizes to test.
    pub set_sizes: Vec<usize>,
    /// Trials per (set size, condition) cell.
    pub trials: usize,
    /// RT model.
    pub model: RtModel,
}

/// Result of one condition's sweep: per-set-size mean RT plus the fitted
/// slope and intercept.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// `(set_size, mean RT ms)` series.
    pub series: Vec<(usize, f64)>,
    /// Fitted ms/item slope.
    pub slope: f64,
    /// Fitted intercept ms.
    pub intercept: f64,
}

impl Default for SearchExperiment {
    fn default() -> SearchExperiment {
        SearchExperiment {
            set_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
            trials: 200,
            model: RtModel::default(),
        }
    }
}

impl SearchExperiment {
    /// Run one condition (target present on every trial, the Fig. 3 task).
    pub fn run(&self, condition: SearchCondition, rng: &mut StdRng) -> SweepResult {
        let mut series = Vec::new();
        for &n in &self.set_sizes {
            let total: f64 = (0..self.trials)
                .map(|_| simulate_rt(condition, n, true, &self.model, rng))
                .sum();
            series.push((n, total / self.trials as f64));
        }
        let (slope, intercept) = linear_fit(&series);
        SweepResult { series, slope, intercept }
    }
}

/// Ordinary least squares over `(x, y)` points.
pub fn linear_fit(points: &[(usize, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let sx: f64 = points.iter().map(|&(x, _)| x as f64).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| (x as f64) * (x as f64)).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| x as f64 * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    (slope, (sy - slope * sx) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn red_circle_among_blue_circles_is_feature_search() {
        // Fig. 3 exactly: same shape, unique color.
        let target = Item { shape: 0, color: 1 }; // red circle
        let distractors = vec![Item { shape: 0, color: 0 }; 50]; // blue circles
        assert_eq!(classify_search(target, &distractors), SearchCondition::Feature);
    }

    #[test]
    fn red_circle_among_blue_circles_and_red_squares_is_conjunction() {
        // The classic conjunction display from §II.B.1.
        let target = Item { shape: 0, color: 1 };
        let mut distractors = vec![Item { shape: 0, color: 0 }; 25]; // blue circles
        distractors.extend(vec![Item { shape: 1, color: 1 }; 25]); // red squares
        assert_eq!(classify_search(target, &distractors), SearchCondition::Conjunction);
    }

    #[test]
    fn identical_distractor_defeats_search() {
        let target = Item { shape: 0, color: 1 };
        let distractors = vec![Item { shape: 0, color: 1 }];
        assert_eq!(classify_search(target, &distractors), SearchCondition::Indistinguishable);
    }

    #[test]
    fn unique_shape_is_also_preattentive() {
        // "searching for circles in a figure with many squares".
        let target = Item { shape: 0, color: 0 };
        let distractors = vec![Item { shape: 1, color: 0 }; 40];
        assert_eq!(classify_search(target, &distractors), SearchCondition::Feature);
    }

    #[test]
    fn feature_search_is_flat() {
        let exp = SearchExperiment::default();
        let r = exp.run(SearchCondition::Feature, &mut rng());
        assert!(
            r.slope.abs() < 1.0,
            "feature slope should be ~0 ms/item, got {:.2}",
            r.slope
        );
        assert!((400.0..520.0).contains(&r.intercept), "intercept {:.0}", r.intercept);
    }

    #[test]
    fn conjunction_search_is_linear() {
        let exp = SearchExperiment::default();
        let r = exp.run(SearchCondition::Conjunction, &mut rng());
        // Present trials: expected slope ≈ half the per-item cost.
        let expected = exp.model.slope_ms_per_item / 2.0;
        assert!(
            (r.slope - expected).abs() < expected * 0.25,
            "conjunction slope {:.1}, expected ≈{expected:.1}",
            r.slope
        );
    }

    #[test]
    fn absent_trials_cost_twice_present() {
        let model = RtModel { noise_sd_ms: 0.0, ..RtModel::default() };
        let mut r = rng();
        let n = 100;
        let reps = 2_000;
        let present: f64 = (0..reps)
            .map(|_| simulate_rt(SearchCondition::Conjunction, n, true, &model, &mut r))
            .sum::<f64>()
            / reps as f64;
        let absent =
            simulate_rt(SearchCondition::Conjunction, n, false, &model, &mut r);
        let present_scan = present - model.base_ms;
        let absent_scan = absent - model.base_ms;
        assert!(
            (absent_scan / present_scan - 2.0).abs() < 0.2,
            "absent/present scan ratio {:.2}",
            absent_scan / present_scan
        );
    }

    #[test]
    fn rt_never_below_physiological_floor() {
        let model = RtModel { base_ms: 120.0, noise_sd_ms: 500.0, ..RtModel::default() };
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(simulate_rt(SearchCondition::Feature, 1, true, &model, &mut r) >= 100.0);
        }
    }

    #[test]
    fn linear_fit_recovers_known_line() {
        let pts: Vec<(usize, f64)> = (0..20).map(|x| (x, 3.0 * x as f64 + 7.0)).collect();
        let (slope, intercept) = linear_fit(&pts);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
        assert_eq!(linear_fit(&[]), (0.0, 0.0));
        let flat = vec![(5usize, 2.0), (5, 4.0)];
        let (s, i) = linear_fit(&flat);
        assert_eq!(s, 0.0);
        assert!((i - 3.0).abs() < 1e-9);
    }
}
