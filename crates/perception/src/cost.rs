//! Cost-of-knowledge accounting (§II.C.1).
//!
//! Pirolli & Card's information-foraging framing, operationalized: every
//! interaction is charged a time cost (motor + system + re-orientation),
//! and an exploration strategy is a sequence of interactions. The
//! workbench examples use this to compare "overview first, zoom and
//! filter" against brute scrolling — making Shneiderman's mantra a
//! measured claim instead of a slogan.

/// One user interaction with its cost components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// Move pointer + click (Fitts-sized average).
    Click,
    /// Adjust one of the two zoom sliders.
    ZoomSlider,
    /// Scroll one viewport page.
    ScrollPage,
    /// Type a short query term / regex.
    TypeQuery,
    /// Visually scan one screenful that changed (re-orientation after a
    /// view change — the change-blindness tax of §II.C.2).
    Reorient,
    /// Read one details-on-demand panel.
    ReadDetails,
}

impl Interaction {
    /// Nominal cost in milliseconds (KLM-GOMS-flavoured constants).
    pub fn cost_ms(self) -> f64 {
        match self {
            Interaction::Click => 1_100.0,       // P + B
            Interaction::ZoomSlider => 1_800.0,  // P + drag
            Interaction::ScrollPage => 900.0,
            Interaction::TypeQuery => 2_800.0,   // ~10 keystrokes + M
            Interaction::Reorient => 1_200.0,
            Interaction::ReadDetails => 1_600.0,
        }
    }
}

/// A log of interactions with accumulated cost.
#[derive(Debug, Clone, Default)]
pub struct InteractionLog {
    steps: Vec<Interaction>,
}

impl InteractionLog {
    /// An empty log.
    pub fn new() -> InteractionLog {
        InteractionLog::default()
    }

    /// Record one interaction.
    pub fn record(&mut self, i: Interaction) -> &mut Self {
        self.steps.push(i);
        self
    }

    /// Record an interaction `n` times.
    pub fn record_n(&mut self, i: Interaction, n: usize) -> &mut Self {
        self.steps.extend(std::iter::repeat_n(i, n));
        self
    }

    /// Total cost in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.steps.iter().map(|i| i.cost_ms()).sum()
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Cost of the "overview first, zoom and filter, details on demand"
/// strategy for finding `targets` interesting patients in a cohort of
/// `cohort` rows: one typed filter + one zoom + per-target inspection.
pub fn overview_zoom_filter_cost(targets: usize) -> f64 {
    let mut log = InteractionLog::new();
    log.record(Interaction::TypeQuery) // the Fig. 4 filter
        .record(Interaction::Reorient)
        .record(Interaction::ZoomSlider)
        .record(Interaction::Reorient);
    log.record_n(Interaction::Click, targets);
    log.record_n(Interaction::ReadDetails, targets);
    log.total_ms()
}

/// Cost of brute-force scrolling a cohort of `cohort` rows at
/// `rows_per_page`, reading details for the same `targets`.
pub fn scroll_everything_cost(cohort: usize, rows_per_page: usize, targets: usize) -> f64 {
    let pages = cohort.div_ceil(rows_per_page.max(1));
    let mut log = InteractionLog::new();
    log.record_n(Interaction::ScrollPage, pages);
    log.record_n(Interaction::Reorient, pages);
    log.record_n(Interaction::Click, targets);
    log.record_n(Interaction::ReadDetails, targets);
    log.total_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_accumulates() {
        let mut log = InteractionLog::new();
        assert!(log.is_empty());
        log.record(Interaction::Click).record(Interaction::Click);
        assert_eq!(log.len(), 2);
        assert!((log.total_ms() - 2_200.0).abs() < 1e-9);
        log.record_n(Interaction::ScrollPage, 3);
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn all_interactions_have_positive_cost() {
        for i in [
            Interaction::Click,
            Interaction::ZoomSlider,
            Interaction::ScrollPage,
            Interaction::TypeQuery,
            Interaction::Reorient,
            Interaction::ReadDetails,
        ] {
            assert!(i.cost_ms() > 0.0);
        }
    }

    #[test]
    fn filtering_beats_scrolling_at_cohort_scale() {
        // At 13,000 rows × 20 per page, brute scrolling is hopeless; the
        // mantra wins by orders of magnitude.
        let filter = overview_zoom_filter_cost(10);
        let scroll = scroll_everything_cost(13_000, 20, 10);
        assert!(
            scroll > 30.0 * filter,
            "scroll {scroll:.0}ms should dwarf filter {filter:.0}ms"
        );
    }

    #[test]
    fn scrolling_is_fine_for_tiny_cohorts() {
        let filter = overview_zoom_filter_cost(2);
        let scroll = scroll_everything_cost(20, 20, 2);
        assert!(scroll < filter, "one page of rows needs no query");
    }
}
