//! Color difference in a perceptual space.
//!
//! "Choosing good colors" (§II.B) is checkable: convert sRGB to CIE
//! L\*a\*b\* (D65) and require a minimum ΔE\*₇₆ between every pair of
//! categorical colors. ΔE ≈ 2.3 is the just-noticeable difference; for
//! glanceable category separation the literature wants ΔE ≳ 20.

/// A CIE L\*a\*b\* color (D65 white point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lab {
    /// Lightness, 0–100.
    pub l: f64,
    /// Green–red axis.
    pub a: f64,
    /// Blue–yellow axis.
    pub b: f64,
}

/// Convert an sRGB color (0–255 channels) to L\*a\*b\*.
pub fn rgb_to_lab(r: u8, g: u8, b: u8) -> Lab {
    // sRGB → linear.
    fn lin(c: u8) -> f64 {
        let c = c as f64 / 255.0;
        if c <= 0.04045 {
            c / 12.92
        } else {
            ((c + 0.055) / 1.055).powf(2.4)
        }
    }
    let (rl, gl, bl) = (lin(r), lin(g), lin(b));
    // Linear RGB → XYZ (sRGB matrix, D65).
    let x = 0.4124 * rl + 0.3576 * gl + 0.1805 * bl;
    let y = 0.2126 * rl + 0.7152 * gl + 0.0722 * bl;
    let z = 0.0193 * rl + 0.1192 * gl + 0.9505 * bl;
    // Normalize by D65 white.
    let (xn, yn, zn) = (0.95047, 1.0, 1.08883);
    fn f(t: f64) -> f64 {
        const D: f64 = 6.0 / 29.0;
        if t > D * D * D {
            t.cbrt()
        } else {
            t / (3.0 * D * D) + 4.0 / 29.0
        }
    }
    let (fx, fy, fz) = (f(x / xn), f(y / yn), f(z / zn));
    Lab { l: 116.0 * fy - 16.0, a: 500.0 * (fx - fy), b: 200.0 * (fy - fz) }
}

/// ΔE\*₇₆ — Euclidean distance in Lab.
pub fn delta_e(p: Lab, q: Lab) -> f64 {
    ((p.l - q.l).powi(2) + (p.a - q.a).powi(2) + (p.b - q.b).powi(2)).sqrt()
}

/// Minimum pairwise ΔE over a palette of sRGB colors — the palette's
/// weakest discrimination.
pub fn min_pairwise_delta_e(palette: &[(u8, u8, u8)]) -> f64 {
    let labs: Vec<Lab> = palette.iter().map(|&(r, g, b)| rgb_to_lab(r, g, b)).collect();
    let mut min = f64::INFINITY;
    for i in 0..labs.len() {
        for j in (i + 1)..labs.len() {
            min = min.min(delta_e(labs[i], labs[j]));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_and_black() {
        let w = rgb_to_lab(255, 255, 255);
        assert!((w.l - 100.0).abs() < 0.1, "white L = {}", w.l);
        assert!(w.a.abs() < 0.5 && w.b.abs() < 0.5);
        let k = rgb_to_lab(0, 0, 0);
        assert!(k.l.abs() < 0.1);
    }

    #[test]
    fn primary_hues_have_expected_signs() {
        let red = rgb_to_lab(255, 0, 0);
        assert!(red.a > 50.0, "red has strongly positive a*");
        let green = rgb_to_lab(0, 255, 0);
        assert!(green.a < -50.0, "green has strongly negative a*");
        let blue = rgb_to_lab(0, 0, 255);
        assert!(blue.b < -50.0, "blue has strongly negative b*");
        let yellow = rgb_to_lab(255, 255, 0);
        assert!(yellow.b > 50.0, "yellow has strongly positive b*");
    }

    #[test]
    fn delta_e_is_a_metric_sanity() {
        let a = rgb_to_lab(10, 20, 30);
        let b = rgb_to_lab(200, 100, 50);
        let c = rgb_to_lab(100, 100, 100);
        assert_eq!(delta_e(a, a), 0.0);
        assert!((delta_e(a, b) - delta_e(b, a)).abs() < 1e-12);
        assert!(delta_e(a, b) <= delta_e(a, c) + delta_e(c, b) + 1e-9);
    }

    #[test]
    fn jnd_scale_is_plausible() {
        // One-step channel changes are sub-JND; opposite corners are huge.
        let tiny = delta_e(rgb_to_lab(100, 100, 100), rgb_to_lab(101, 100, 100));
        assert!(tiny < 1.0, "tiny step ΔE {tiny}");
        let huge = delta_e(rgb_to_lab(0, 0, 0), rgb_to_lab(255, 255, 255));
        assert!(huge > 95.0, "black-white ΔE {huge}");
    }

    #[test]
    fn min_pairwise_flags_near_duplicates() {
        let bad = [(200, 0, 0), (201, 0, 0), (0, 0, 200)];
        assert!(min_pairwise_delta_e(&bad) < 1.0);
        let good = [(200, 0, 0), (0, 200, 0), (0, 0, 200)];
        assert!(min_pairwise_delta_e(&good) > 50.0);
        assert!(min_pairwise_delta_e(&[]).is_infinite());
    }
}
