//! The ICPC-2 ↔ ICD-10 bridge.
//!
//! The aggregation step ("integration and alignment of patient records")
//! must recognise that a GP contact coded `T90` and a hospital discharge
//! coded `E11` describe the same underlying condition. The official
//! ICPC-2→ICD-10 conversion table is many-to-many; we encode the subset
//! covering the chronic conditions the prospective cohort study tracks plus
//! the common acute events those trajectories contain.
//!
//! Each entry maps one ICPC-2 diagnosis code to the ICD-10 categories it
//! converts to. The reverse direction is derived.

use crate::{Code, CodeSystem};

/// One row of the conversion table: ICPC-2 code → ICD-10 categories.
pub const ICPC_TO_ICD: [(&str, &[&str]); 24] = [
    // Endocrine / metabolic
    ("T89", &["E10"]),               // Diabetes insulin dependent
    ("T90", &["E11", "E14"]),        // Diabetes non-insulin dependent
    ("T86", &["E03"]),               // Hypothyroidism
    ("T93", &["E78"]),               // Lipid disorder
    // Cardiovascular
    ("K74", &["I20"]),               // Ischaemic heart disease w. angina
    ("K75", &["I21"]),               // Acute myocardial infarction
    ("K76", &["I24", "I25"]),        // IHD without angina
    ("K77", &["I50"]),               // Heart failure
    ("K78", &["I48"]),               // Atrial fibrillation/flutter
    ("K86", &["I10"]),               // Hypertension uncomplicated
    ("K87", &["I11", "I12", "I13", "I15"]), // Hypertension complicated
    ("K90", &["I63", "I64"]),        // Stroke/CVA
    ("K89", &["G45"]),               // Transient cerebral ischaemia
    // Respiratory
    ("R95", &["J44"]),               // COPD
    ("R96", &["J45", "J46"]),        // Asthma
    ("R81", &["J18"]),               // Pneumonia
    // Psychological
    ("P76", &["F32", "F33"]),        // Depressive disorder
    ("P74", &["F41"]),               // Anxiety disorder
    ("P70", &["F03"]),               // Dementia
    // Musculoskeletal
    ("L88", &["M05", "M06"]),        // Rheumatoid arthritis
    ("L89", &["M16"]),               // Hip osteoarthrosis
    ("L90", &["M17"]),               // Knee osteoarthrosis
    // Urological / renal
    ("U99", &["N18"]),               // Chronic kidney disease (mapped via U99)
    // Neurological
    ("N89", &["G43"]),               // Migraine
];

/// ICD-10 categories a given ICPC-2 code converts to.
pub fn icpc_to_icd(icpc: &str) -> &'static [&'static str] {
    ICPC_TO_ICD
        .iter()
        .find(|&&(i, _)| i == icpc)
        .map(|&(_, targets)| targets)
        .unwrap_or(&[])
}

/// ICPC-2 codes that convert to a given ICD-10 category (reverse lookup).
/// Matches on the three-character category, so `E11.9` maps like `E11`.
pub fn icd_to_icpc(icd: &str) -> Vec<&'static str> {
    let category = icd.get(..3).unwrap_or(icd);
    ICPC_TO_ICD
        .iter()
        .filter(|&&(_, targets)| targets.contains(&category))
        .map(|&(i, _)| i)
        .collect()
}

/// True if an ICPC-coded and an ICD-coded diagnosis describe the same
/// condition according to the bridge. Either argument order works;
/// same-system codes are compared by hierarchy containment.
pub fn same_condition(a: &Code, b: &Code) -> bool {
    match (a.system, b.system) {
        (CodeSystem::Icpc2, CodeSystem::Icd10) => {
            let cat = b.value.get(..3).unwrap_or(&b.value);
            icpc_to_icd(&a.value).contains(&cat)
        }
        (CodeSystem::Icd10, CodeSystem::Icpc2) => same_condition(b, a),
        _ => a.is_within(b) || b.is_within(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_lookup() {
        assert_eq!(icpc_to_icd("T90"), &["E11", "E14"]);
        assert_eq!(icpc_to_icd("K77"), &["I50"]);
        assert!(icpc_to_icd("A01").is_empty());
    }

    #[test]
    fn reverse_lookup() {
        assert_eq!(icd_to_icpc("E11"), vec!["T90"]);
        assert_eq!(icd_to_icpc("E11.9"), vec!["T90"]); // subcategory rolls up
        assert_eq!(icd_to_icpc("I25"), vec!["K76"]);
        assert!(icd_to_icpc("Z00").is_empty());
    }

    #[test]
    fn same_condition_cross_system() {
        assert!(same_condition(&Code::icpc("T90"), &Code::icd10("E11")));
        assert!(same_condition(&Code::icd10("E11.9"), &Code::icpc("T90")));
        assert!(same_condition(&Code::icpc("R95"), &Code::icd10("J44")));
        assert!(!same_condition(&Code::icpc("T90"), &Code::icd10("I50")));
    }

    #[test]
    fn same_condition_same_system_uses_hierarchy() {
        assert!(same_condition(&Code::atc("C07AB02"), &Code::atc("C07")));
        assert!(same_condition(&Code::icpc("T90"), &Code::icpc("T90")));
        assert!(!same_condition(&Code::icpc("T90"), &Code::icpc("K74")));
    }

    #[test]
    fn every_mapping_row_is_valid() {
        use crate::{icd10::Icd10Code, icpc::IcpcCode};
        for (icpc, targets) in ICPC_TO_ICD {
            assert!(IcpcCode::parse(icpc).is_some(), "bad ICPC {icpc}");
            assert!(IcpcCode::parse(icpc).unwrap().is_diagnosis(), "{icpc} not a diagnosis");
            for t in targets {
                assert!(Icd10Code::parse(t).is_some(), "bad ICD {t}");
            }
        }
    }

    #[test]
    fn mapping_is_functionally_consistent() {
        // Round trip: for every (icpc, icd) pair, the reverse lookup
        // recovers the icpc code.
        for (icpc, targets) in ICPC_TO_ICD {
            for t in targets {
                assert!(icd_to_icpc(t).contains(&icpc), "{t} does not map back to {icpc}");
            }
        }
    }
}
