//! ICPC-2 — the International Classification of Primary Care.
//!
//! ICPC-2 codes are one chapter letter plus a two-digit component number:
//! `T90` = "Diabetes non-insulin dependent" (chapter T, *Endocrine/
//! Metabolic and Nutritional*). The paper's own example regexes (`F.*|H.*`,
//! the diabetes anchor `T90`) operate over this alphabet.

/// The 17 ICPC-2 chapters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Chapter {
    A, // General and unspecified
    B, // Blood, blood forming organs
    D, // Digestive
    F, // Eye
    H, // Ear
    K, // Cardiovascular
    L, // Musculoskeletal
    N, // Neurological
    P, // Psychological
    R, // Respiratory
    S, // Skin
    T, // Endocrine/metabolic and nutritional
    U, // Urological
    W, // Pregnancy, childbearing, family planning
    X, // Female genital
    Y, // Male genital
    Z, // Social problems
}

impl Chapter {
    /// All chapters in canonical order.
    pub const ALL: [Chapter; 17] = [
        Chapter::A,
        Chapter::B,
        Chapter::D,
        Chapter::F,
        Chapter::H,
        Chapter::K,
        Chapter::L,
        Chapter::N,
        Chapter::P,
        Chapter::R,
        Chapter::S,
        Chapter::T,
        Chapter::U,
        Chapter::W,
        Chapter::X,
        Chapter::Y,
        Chapter::Z,
    ];

    /// The chapter letter.
    pub fn letter(self) -> char {
        match self {
            Chapter::A => 'A',
            Chapter::B => 'B',
            Chapter::D => 'D',
            Chapter::F => 'F',
            Chapter::H => 'H',
            Chapter::K => 'K',
            Chapter::L => 'L',
            Chapter::N => 'N',
            Chapter::P => 'P',
            Chapter::R => 'R',
            Chapter::S => 'S',
            Chapter::T => 'T',
            Chapter::U => 'U',
            Chapter::W => 'W',
            Chapter::X => 'X',
            Chapter::Y => 'Y',
            Chapter::Z => 'Z',
        }
    }

    /// Parse a chapter letter.
    pub fn from_letter(c: char) -> Option<Chapter> {
        Chapter::ALL.into_iter().find(|ch| ch.letter() == c.to_ascii_uppercase())
    }

    /// The body-system / problem-area title of the chapter.
    pub fn title(self) -> &'static str {
        match self {
            Chapter::A => "General and unspecified",
            Chapter::B => "Blood, blood-forming organs and immune mechanism",
            Chapter::D => "Digestive",
            Chapter::F => "Eye",
            Chapter::H => "Ear",
            Chapter::K => "Cardiovascular",
            Chapter::L => "Musculoskeletal",
            Chapter::N => "Neurological",
            Chapter::P => "Psychological",
            Chapter::R => "Respiratory",
            Chapter::S => "Skin",
            Chapter::T => "Endocrine, metabolic and nutritional",
            Chapter::U => "Urological",
            Chapter::W => "Pregnancy, childbearing, family planning",
            Chapter::X => "Female genital",
            Chapter::Y => "Male genital",
            Chapter::Z => "Social problems",
        }
    }
}

/// The ICPC-2 component a code number falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// 1–29: symptoms and complaints.
    SymptomsComplaints,
    /// 30–69: process codes (diagnostics, treatment, referral, …).
    Process,
    /// 70–99: diagnoses and diseases.
    Diagnoses,
}

/// A parsed, validated ICPC-2 code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IcpcCode {
    /// The chapter.
    pub chapter: Chapter,
    /// The two-digit number, 1–99, or `None` for a bare chapter code used
    /// as a hierarchy node ("T").
    pub number: Option<u8>,
}

impl IcpcCode {
    /// Parse `"T90"` or a bare chapter `"T"`. Whitespace is not accepted;
    /// normalize with [`crate::Code::new`] first.
    pub fn parse(s: &str) -> Option<IcpcCode> {
        let mut chars = s.chars();
        let chapter = Chapter::from_letter(chars.next()?)?;
        let rest = chars.as_str();
        if rest.is_empty() {
            return Some(IcpcCode { chapter, number: None });
        }
        if rest.len() != 2 || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let n: u8 = rest.parse().ok()?;
        if n == 0 {
            return None;
        }
        Some(IcpcCode { chapter, number: Some(n) })
    }

    /// Which component the code belongs to (bare chapters have none).
    pub fn component(self) -> Option<Component> {
        Some(match self.number? {
            1..=29 => Component::SymptomsComplaints,
            30..=69 => Component::Process,
            _ => Component::Diagnoses,
        })
    }

    /// The parent code string: full codes roll up to their chapter.
    pub fn parent(self) -> Option<String> {
        self.number.map(|_| self.chapter.letter().to_string())
    }

    /// Render back to the canonical string form.
    pub fn to_code_string(self) -> String {
        match self.number {
            Some(n) => format!("{}{:02}", self.chapter.letter(), n),
            None => self.chapter.letter().to_string(),
        }
    }

    /// True for chronic-disease diagnosis codes — component 7 (70–99).
    pub fn is_diagnosis(self) -> bool {
        matches!(self.component(), Some(Component::Diagnoses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_codes() {
        let c = IcpcCode::parse("T90").unwrap();
        assert_eq!(c.chapter, Chapter::T);
        assert_eq!(c.number, Some(90));
        assert_eq!(c.component(), Some(Component::Diagnoses));
        assert!(c.is_diagnosis());
    }

    #[test]
    fn parses_bare_chapter() {
        let c = IcpcCode::parse("K").unwrap();
        assert_eq!(c.chapter, Chapter::K);
        assert_eq!(c.number, None);
        assert_eq!(c.component(), None);
        assert_eq!(c.parent(), None);
    }

    #[test]
    fn rejects_bad_codes() {
        for bad in ["E11", "C07", "T9", "T900", "T00", "TT0", "", "9T0", "t 90"] {
            assert!(IcpcCode::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn component_boundaries() {
        assert_eq!(IcpcCode::parse("A01").unwrap().component(), Some(Component::SymptomsComplaints));
        assert_eq!(IcpcCode::parse("A29").unwrap().component(), Some(Component::SymptomsComplaints));
        assert_eq!(IcpcCode::parse("A30").unwrap().component(), Some(Component::Process));
        assert_eq!(IcpcCode::parse("A69").unwrap().component(), Some(Component::Process));
        assert_eq!(IcpcCode::parse("A70").unwrap().component(), Some(Component::Diagnoses));
        assert_eq!(IcpcCode::parse("A99").unwrap().component(), Some(Component::Diagnoses));
    }

    #[test]
    fn parent_is_chapter() {
        assert_eq!(IcpcCode::parse("T90").unwrap().parent(), Some("T".to_owned()));
    }

    #[test]
    fn round_trip() {
        for s in ["T90", "F01", "K74", "Z"] {
            assert_eq!(IcpcCode::parse(s).unwrap().to_code_string(), s);
        }
    }

    #[test]
    fn chapter_tables_are_consistent() {
        assert_eq!(Chapter::ALL.len(), 17);
        for ch in Chapter::ALL {
            assert_eq!(Chapter::from_letter(ch.letter()), Some(ch));
            assert!(!ch.title().is_empty());
        }
        // C, E, G … are not ICPC chapters.
        for c in ['C', 'E', 'G', 'I', 'J', 'M', 'O', 'Q', 'V'] {
            assert_eq!(Chapter::from_letter(c), None);
        }
    }
}
