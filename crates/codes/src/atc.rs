//! ATC — the Anatomical Therapeutic Chemical classification.
//!
//! Prescriptions in the aggregated data are ATC-coded. The visualization
//! maps **level-1 anatomical groups** (and, zoomed in, level-2/3 groups) to
//! hues — the paper's Fig. 1 caption: "The colors in the visualization show
//! different classes of medication", and LifeLines' abstraction example
//! ("beta blocker" vs "atenolol") is exactly the level-3 → level-5 roll-up
//! this module provides.
//!
//! Structure of a complete code, e.g. `C07AB02` (metoprolol):
//!
//! | level | chars | example | meaning |
//! |---|---|---|---|
//! | 1 | 1    | `C`       | anatomical main group (Cardiovascular) |
//! | 2 | 1–3  | `C07`     | therapeutic subgroup (Beta blocking agents) |
//! | 3 | 1–4  | `C07A`    | pharmacological subgroup |
//! | 4 | 1–5  | `C07AB`   | chemical subgroup (selective) |
//! | 5 | 1–7  | `C07AB02` | chemical substance (metoprolol) |

/// The 14 ATC level-1 anatomical main groups.
pub const LEVEL1_GROUPS: [(char, &str); 14] = [
    ('A', "Alimentary tract and metabolism"),
    ('B', "Blood and blood forming organs"),
    ('C', "Cardiovascular system"),
    ('D', "Dermatologicals"),
    ('G', "Genito-urinary system and sex hormones"),
    ('H', "Systemic hormonal preparations"),
    ('J', "Antiinfectives for systemic use"),
    ('L', "Antineoplastic and immunomodulating agents"),
    ('M', "Musculo-skeletal system"),
    ('N', "Nervous system"),
    ('P', "Antiparasitic products"),
    ('R', "Respiratory system"),
    ('S', "Sensory organs"),
    ('V', "Various"),
];

/// A parsed, validated ATC code at any of the five levels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtcCode {
    /// Normalized code text, 1–7 chars.
    pub text: String,
}

impl AtcCode {
    /// Parse an ATC code at any level: `C`, `C07`, `C07A`, `C07AB`,
    /// `C07AB02`.
    pub fn parse(s: &str) -> Option<AtcCode> {
        let b = s.as_bytes();
        let ok = match b.len() {
            1 => b[0].is_ascii_uppercase(),
            3 => b[0].is_ascii_uppercase() && b[1].is_ascii_digit() && b[2].is_ascii_digit(),
            4 => Self::level2_ok(b) && b[3].is_ascii_uppercase(),
            5 => Self::level2_ok(b) && b[3].is_ascii_uppercase() && b[4].is_ascii_uppercase(),
            7 => {
                Self::level2_ok(b)
                    && b[3].is_ascii_uppercase()
                    && b[4].is_ascii_uppercase()
                    && b[5].is_ascii_digit()
                    && b[6].is_ascii_digit()
            }
            _ => false,
        };
        let valid_group = LEVEL1_GROUPS.iter().any(|&(g, _)| g as u8 == b.first().copied().unwrap_or(0));
        (ok && valid_group).then(|| AtcCode { text: s.to_owned() })
    }

    fn level2_ok(b: &[u8]) -> bool {
        b[0].is_ascii_uppercase() && b[1].is_ascii_digit() && b[2].is_ascii_digit()
    }

    /// The classification level, 1–5.
    pub fn level(&self) -> u8 {
        match self.text.len() {
            1 => 1,
            3 => 2,
            4 => 3,
            5 => 4,
            _ => 5,
        }
    }

    /// Truncate to a coarser level (`None` if `level` is coarser than 1 or
    /// finer than the code itself).
    pub fn at_level(&self, level: u8) -> Option<AtcCode> {
        if level < 1 || level > self.level() {
            return None;
        }
        let len = match level {
            1 => 1,
            2 => 3,
            3 => 4,
            4 => 5,
            _ => 7,
        };
        Some(AtcCode { text: self.text[..len].to_owned() })
    }

    /// Parent code (one level up); `None` at level 1.
    pub fn parent(&self) -> Option<String> {
        // lint:allow(transitive-no-panic-hot-path) at_level is Some for every level up to level(), and level() > 1 is checked
        (self.level() > 1).then(|| self.at_level(self.level() - 1).expect("level checked").text)
    }

    /// The level-1 anatomical main group letter.
    pub fn main_group(&self) -> char {
        self.text.as_bytes()[0] as char
    }

    /// Position of the main group within [`LEVEL1_GROUPS`] — the dense
    /// id the analytics accumulators index by.
    pub fn main_group_index(&self) -> usize {
        LEVEL1_GROUPS
            .iter()
            .position(|&(g, _)| g == self.main_group())
            // lint:allow(transitive-no-panic-hot-path) AtcCode::parse rejects any code whose first letter is outside LEVEL1_GROUPS
            .expect("validated at parse time")
    }

    /// Name of the level-1 main group.
    pub fn main_group_name(&self) -> &'static str {
        LEVEL1_GROUPS
            .iter()
            .find(|&&(g, _)| g == self.main_group())
            .map(|&(_, name)| name)
            .expect("validated at parse time")
    }
}

impl std::fmt::Display for AtcCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_levels() {
        for (s, level) in [("C", 1), ("C07", 2), ("C07A", 3), ("C07AB", 4), ("C07AB02", 5)] {
            let c = AtcCode::parse(s).unwrap_or_else(|| panic!("{s} should parse"));
            assert_eq!(c.level(), level, "{s}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "c07", "C0", "C07a", "C07AB0", "C07AB023", "C7A", "CO7", "X07", "E11", "T90"] {
            assert!(AtcCode::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_unassigned_main_groups() {
        // E, F, I, K, O, Q, T, U, W, X, Y, Z are not ATC main groups.
        for bad in ["E01", "F01", "I01", "T01", "Z01"] {
            assert!(AtcCode::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn level_truncation() {
        let c = AtcCode::parse("C07AB02").unwrap();
        assert_eq!(c.at_level(1).unwrap().text, "C");
        assert_eq!(c.at_level(2).unwrap().text, "C07");
        assert_eq!(c.at_level(3).unwrap().text, "C07A");
        assert_eq!(c.at_level(4).unwrap().text, "C07AB");
        assert_eq!(c.at_level(5).unwrap().text, "C07AB02");
        assert_eq!(c.at_level(0), None);
        assert_eq!(AtcCode::parse("C07").unwrap().at_level(4), None);
    }

    #[test]
    fn parent_chain() {
        let mut cur = "C07AB02".to_owned();
        let mut chain = Vec::new();
        while let Some(p) = AtcCode::parse(&cur).unwrap().parent() {
            chain.push(p.clone());
            cur = p;
        }
        assert_eq!(chain, vec!["C07AB", "C07A", "C07", "C"]);
    }

    #[test]
    fn main_group_names() {
        assert_eq!(AtcCode::parse("C07AB02").unwrap().main_group_name(), "Cardiovascular system");
        assert_eq!(AtcCode::parse("N02").unwrap().main_group_name(), "Nervous system");
        assert_eq!(LEVEL1_GROUPS.len(), 14);
    }
}
