//! ICD-10 — the International Classification of Diseases, 10th revision.
//!
//! Hospital episodes in the aggregated data carry ICD-10 codes. The
//! hierarchy we model is the standard three-level one:
//!
//! ```text
//! Chapter IV  "Endocrine, nutritional and metabolic diseases"  (E00–E90)
//!   └─ Block E10–E14  "Diabetes mellitus"
//!        └─ Category E11  "Type 2 diabetes mellitus"
//!             └─ Subcategory E11.9  "… without complications"
//! ```

/// A parsed, validated ICD-10 code: category `A00`–`Z99` with an optional
/// one-digit subcategory (`E11.9`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Icd10Code {
    /// Category letter `A`–`Z`.
    pub letter: char,
    /// Two-digit category number, 0–99.
    pub number: u8,
    /// Optional subcategory digit after the dot.
    pub sub: Option<u8>,
}

/// One ICD-10 chapter: roman numeral, title, and inclusive category span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChapterInfo {
    /// Roman numeral label, e.g. `"IV"`.
    pub numeral: &'static str,
    /// Chapter title.
    pub title: &'static str,
    /// First category of the chapter, e.g. `('E', 0)`.
    pub start: (char, u8),
    /// Last category of the chapter (inclusive), e.g. `('E', 90)`.
    pub end: (char, u8),
}

/// The 22 ICD-10 chapters (WHO 2016 edition spans).
pub const CHAPTERS: [ChapterInfo; 22] = [
    ChapterInfo { numeral: "I", title: "Certain infectious and parasitic diseases", start: ('A', 0), end: ('B', 99) },
    ChapterInfo { numeral: "II", title: "Neoplasms", start: ('C', 0), end: ('D', 48) },
    ChapterInfo { numeral: "III", title: "Diseases of the blood and blood-forming organs", start: ('D', 50), end: ('D', 89) },
    ChapterInfo { numeral: "IV", title: "Endocrine, nutritional and metabolic diseases", start: ('E', 0), end: ('E', 90) },
    ChapterInfo { numeral: "V", title: "Mental and behavioural disorders", start: ('F', 0), end: ('F', 99) },
    ChapterInfo { numeral: "VI", title: "Diseases of the nervous system", start: ('G', 0), end: ('G', 99) },
    ChapterInfo { numeral: "VII", title: "Diseases of the eye and adnexa", start: ('H', 0), end: ('H', 59) },
    ChapterInfo { numeral: "VIII", title: "Diseases of the ear and mastoid process", start: ('H', 60), end: ('H', 95) },
    ChapterInfo { numeral: "IX", title: "Diseases of the circulatory system", start: ('I', 0), end: ('I', 99) },
    ChapterInfo { numeral: "X", title: "Diseases of the respiratory system", start: ('J', 0), end: ('J', 99) },
    ChapterInfo { numeral: "XI", title: "Diseases of the digestive system", start: ('K', 0), end: ('K', 93) },
    ChapterInfo { numeral: "XII", title: "Diseases of the skin and subcutaneous tissue", start: ('L', 0), end: ('L', 99) },
    ChapterInfo { numeral: "XIII", title: "Diseases of the musculoskeletal system", start: ('M', 0), end: ('M', 99) },
    ChapterInfo { numeral: "XIV", title: "Diseases of the genitourinary system", start: ('N', 0), end: ('N', 99) },
    ChapterInfo { numeral: "XV", title: "Pregnancy, childbirth and the puerperium", start: ('O', 0), end: ('O', 99) },
    ChapterInfo { numeral: "XVI", title: "Certain conditions originating in the perinatal period", start: ('P', 0), end: ('P', 96) },
    ChapterInfo { numeral: "XVII", title: "Congenital malformations and chromosomal abnormalities", start: ('Q', 0), end: ('Q', 99) },
    ChapterInfo { numeral: "XVIII", title: "Symptoms, signs and abnormal findings, not elsewhere classified", start: ('R', 0), end: ('R', 99) },
    ChapterInfo { numeral: "XIX", title: "Injury, poisoning and certain other consequences of external causes", start: ('S', 0), end: ('T', 98) },
    ChapterInfo { numeral: "XX", title: "External causes of morbidity and mortality", start: ('V', 1), end: ('Y', 98) },
    ChapterInfo { numeral: "XXI", title: "Factors influencing health status and contact with health services", start: ('Z', 0), end: ('Z', 99) },
    ChapterInfo { numeral: "XXII", title: "Codes for special purposes", start: ('U', 0), end: ('U', 99) },
];

/// One diagnostic block: `(start, end, block-id, title)`.
pub type BlockInfo = ((char, u8), (char, u8), &'static str, &'static str);

/// Selected diagnostic blocks (the spans our chronic-condition models and
/// the mapping table use).
pub const BLOCKS: [BlockInfo; 12] = [
    (('E', 10), ('E', 14), "E10-E14", "Diabetes mellitus"),
    (('I', 10), ('I', 15), "I10-I15", "Hypertensive diseases"),
    (('I', 20), ('I', 25), "I20-I25", "Ischaemic heart diseases"),
    (('I', 44), ('I', 52), "I44-I52", "Other forms of heart disease"),
    (('I', 60), ('I', 69), "I60-I69", "Cerebrovascular diseases"),
    (('J', 40), ('J', 47), "J40-J47", "Chronic lower respiratory diseases"),
    (('F', 30), ('F', 39), "F30-F39", "Mood [affective] disorders"),
    (('M', 5), ('M', 14), "M05-M14", "Inflammatory polyarthropathies"),
    (('M', 15), ('M', 19), "M15-M19", "Arthrosis"),
    (('N', 17), ('N', 19), "N17-N19", "Renal failure"),
    (('C', 0), ('C', 97), "C00-C97", "Malignant neoplasms"),
    (('G', 40), ('G', 47), "G40-G47", "Episodic and paroxysmal disorders"),
];

impl Icd10Code {
    /// Parse `"E11"`, `"E11.9"` (also tolerates the dotless Norwegian
    /// registry form `"E119"`).
    pub fn parse(s: &str) -> Option<Icd10Code> {
        let bytes = s.as_bytes();
        if bytes.len() < 3 {
            return None;
        }
        let letter = bytes[0].to_ascii_uppercase() as char;
        if !letter.is_ascii_uppercase() {
            return None;
        }
        if !bytes[1].is_ascii_digit() || !bytes[2].is_ascii_digit() {
            return None;
        }
        let number = (bytes[1] - b'0') * 10 + (bytes[2] - b'0');
        let sub = match &bytes[3..] {
            [] => None,
            [b'.', d] if d.is_ascii_digit() => Some(d - b'0'),
            [d] if d.is_ascii_digit() => Some(d - b'0'),
            _ => return None,
        };
        Some(Icd10Code { letter, number, sub })
    }

    /// The chapter this category belongs to, if any (some letter/number
    /// combinations are unassigned, e.g. `U` gaps are ignored here).
    pub fn chapter(self) -> Option<&'static ChapterInfo> {
        let key = (self.letter, self.number);
        CHAPTERS.iter().find(|c| c.start <= key && key <= c.end)
    }

    /// Position of this category's chapter within [`CHAPTERS`] — the
    /// dense id the analytics accumulators index by.
    pub fn chapter_index(self) -> Option<usize> {
        let key = (self.letter, self.number);
        CHAPTERS.iter().position(|c| c.start <= key && key <= c.end)
    }

    /// The named block containing this category, if we track it.
    pub fn block(self) -> Option<&'static str> {
        let key = (self.letter, self.number);
        BLOCKS.iter().find(|(s, e, _, _)| *s <= key && key <= *e).map(|&(_, _, id, _)| id)
    }

    /// Parent in the hierarchy: subcategory → category → block (when
    /// tracked) → chapter numeral.
    pub fn parent(self) -> Option<String> {
        if self.sub.is_some() {
            return Some(format!("{}{:02}", self.letter, self.number));
        }
        if let Some(block) = self.block() {
            return Some(block.to_owned());
        }
        self.chapter().map(|c| c.numeral.to_owned())
    }

    /// Canonical string form (`E11` / `E11.9`).
    pub fn to_code_string(self) -> String {
        match self.sub {
            Some(d) => format!("{}{:02}.{}", self.letter, self.number, d),
            None => format!("{}{:02}", self.letter, self.number),
        }
    }

    /// The three-character category (drop any subcategory).
    pub fn category(self) -> Icd10Code {
        Icd10Code { sub: None, ..self }
    }
}

/// Parent of any ICD-10 hierarchy node, including the non-code levels:
/// codes parent as [`Icd10Code::parent`], block ids (`"E10-E14"`) parent to
/// their chapter numeral, and chapter numerals are roots.
pub fn hierarchy_parent(value: &str) -> Option<String> {
    if let Some(code) = Icd10Code::parse(value) {
        return code.parent();
    }
    if let Some(&(start, _, _, _)) = BLOCKS.iter().find(|&&(_, _, id, _)| id == value) {
        return CHAPTERS
            .iter()
            .find(|c| c.start <= start && start <= c.end)
            .map(|c| c.numeral.to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_category_and_subcategory() {
        let c = Icd10Code::parse("E11.9").unwrap();
        assert_eq!((c.letter, c.number, c.sub), ('E', 11, Some(9)));
        let c = Icd10Code::parse("I50").unwrap();
        assert_eq!((c.letter, c.number, c.sub), ('I', 50, None));
        // Dotless registry form.
        let c = Icd10Code::parse("E119").unwrap();
        assert_eq!((c.letter, c.number, c.sub), ('E', 11, Some(9)));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "E", "E1", "11E", "E11.99", "E11x", "E1.19", "é11"] {
            assert!(Icd10Code::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn chapter_lookup() {
        assert_eq!(Icd10Code::parse("E11").unwrap().chapter().unwrap().numeral, "IV");
        assert_eq!(Icd10Code::parse("I21").unwrap().chapter().unwrap().numeral, "IX");
        assert_eq!(Icd10Code::parse("J44").unwrap().chapter().unwrap().numeral, "X");
        // H splits between eye (VII) and ear (VIII) at H60.
        assert_eq!(Icd10Code::parse("H25").unwrap().chapter().unwrap().numeral, "VII");
        assert_eq!(Icd10Code::parse("H66").unwrap().chapter().unwrap().numeral, "VIII");
        // S/T share chapter XIX.
        assert_eq!(Icd10Code::parse("S72").unwrap().chapter().unwrap().numeral, "XIX");
        assert_eq!(Icd10Code::parse("T30").unwrap().chapter().unwrap().numeral, "XIX");
    }

    #[test]
    fn block_lookup() {
        assert_eq!(Icd10Code::parse("E11").unwrap().block(), Some("E10-E14"));
        assert_eq!(Icd10Code::parse("J44").unwrap().block(), Some("J40-J47"));
        assert_eq!(Icd10Code::parse("Z00").unwrap().block(), None);
    }

    #[test]
    fn parent_chain() {
        assert_eq!(Icd10Code::parse("E11.9").unwrap().parent(), Some("E11".to_owned()));
        assert_eq!(Icd10Code::parse("E11").unwrap().parent(), Some("E10-E14".to_owned()));
        assert_eq!(Icd10Code::parse("Z71").unwrap().parent(), Some("XXI".to_owned()));
    }

    #[test]
    fn round_trip() {
        for s in ["E11.9", "I50", "J44.1"] {
            assert_eq!(Icd10Code::parse(s).unwrap().to_code_string(), s);
        }
    }

    #[test]
    fn category_strips_sub() {
        assert_eq!(Icd10Code::parse("E11.9").unwrap().category().to_code_string(), "E11");
    }

    #[test]
    fn chapters_cover_common_letters() {
        // Every category used by the synthetic generator resolves to a chapter.
        for s in ["E11", "E10", "I10", "I20", "I21", "I50", "I63", "J44", "J45",
                  "F32", "F33", "M06", "M16", "N18", "C50", "C61", "G40", "R07", "Z71"] {
            assert!(Icd10Code::parse(s).unwrap().chapter().is_some(), "{s} has no chapter");
        }
    }
}
