//! Clinical code systems for the PAsTAs workbench.
//!
//! The paper's imported data is "structured … and coded in a standard way.
//! For example, diagnoses are mainly coded using ICPC-2 and/or ICD-10", and
//! the visualization colors events by "different classes of medication"
//! (ATC groups). This crate implements the three code systems as navigable
//! hierarchies:
//!
//! * [`icpc`] — the International Classification of Primary Care, 2nd
//!   edition: 17 chapters × components, used by GP and emergency contacts;
//! * [`icd10`] — ICD-10 chapter/block/category structure, used by hospital
//!   episodes;
//! * [`atc`] — the Anatomical Therapeutic Chemical classification, 5 levels,
//!   used by prescriptions;
//! * [`mapping`] — a curated ICPC-2 ↔ ICD-10 bridge for the chronic
//!   conditions the cohort study follows (the aggregation step needs it to
//!   recognise that a GP's `T90` and a hospital's `E11` are the same
//!   diabetes);
//! * [`catalog`] — human-readable names for chapters, groups, and the codes
//!   the synthetic population uses (details-on-demand panels display them).
//!
//! Every system exposes the same two operations the query layer needs:
//! parsing with validation, and *hierarchy walking* (`parent`, `ancestors`,
//! `level`) which the ontology crate lifts into subsumption axioms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atc;
pub mod catalog;
pub mod icd10;
pub mod icpc;
pub mod mapping;

/// Which coding system a raw code string belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeSystem {
    /// ICPC-2 (primary care).
    Icpc2,
    /// ICD-10 (specialist/hospital care).
    Icd10,
    /// ATC (medications).
    Atc,
}

impl CodeSystem {
    /// Short identifier used in serialized output (`"ICPC2"`, …).
    pub fn tag(self) -> &'static str {
        match self {
            CodeSystem::Icpc2 => "ICPC2",
            CodeSystem::Icd10 => "ICD10",
            CodeSystem::Atc => "ATC",
        }
    }
}

impl std::fmt::Display for CodeSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// A code together with its system — the universal key used across the
/// model, query and ontology layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code {
    /// The owning code system.
    pub system: CodeSystem,
    /// The normalized code string (uppercase, no whitespace).
    pub value: String,
}

impl Code {
    /// Build a code, normalizing case and surrounding whitespace. Does not
    /// validate against the system grammar — use the per-system parsers for
    /// that.
    pub fn new(system: CodeSystem, value: &str) -> Code {
        Code { system, value: value.trim().to_ascii_uppercase() }
    }

    /// An ICPC-2 code.
    pub fn icpc(value: &str) -> Code {
        Code::new(CodeSystem::Icpc2, value)
    }

    /// An ICD-10 code.
    pub fn icd10(value: &str) -> Code {
        Code::new(CodeSystem::Icd10, value)
    }

    /// An ATC code.
    pub fn atc(value: &str) -> Code {
        Code::new(CodeSystem::Atc, value)
    }

    /// True if the code string is syntactically valid for its system.
    pub fn is_valid(&self) -> bool {
        match self.system {
            CodeSystem::Icpc2 => icpc::IcpcCode::parse(&self.value).is_some(),
            CodeSystem::Icd10 => icd10::Icd10Code::parse(&self.value).is_some(),
            CodeSystem::Atc => atc::AtcCode::parse(&self.value).is_some(),
        }
    }

    /// Immediate parent in the system hierarchy, if any.
    ///
    /// ICPC: `T90 → T` (chapter). ICD-10: `E11.9 → E11 → E10-E14 → IV`.
    /// ATC: `C07AB02 → C07AB → C07A → C07 → C`.
    pub fn parent(&self) -> Option<Code> {
        match self.system {
            CodeSystem::Icpc2 => {
                icpc::IcpcCode::parse(&self.value)?.parent().map(|p| Code::icpc(&p))
            }
            CodeSystem::Icd10 => icd10::hierarchy_parent(&self.value).map(|p| Code::icd10(&p)),
            CodeSystem::Atc => atc::AtcCode::parse(&self.value)?.parent().map(|p| Code::atc(&p)),
        }
    }

    /// All ancestors, nearest first.
    pub fn ancestors(&self) -> Vec<Code> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(c) = cur {
            cur = c.parent();
            out.push(c);
        }
        out
    }

    /// True if `self` is `other` or a descendant of it.
    pub fn is_within(&self, other: &Code) -> bool {
        if self.system != other.system {
            return false;
        }
        self == other || self.ancestors().contains(other)
    }

    /// Human-readable name from the catalog, if known.
    pub fn display_name(&self) -> Option<&'static str> {
        catalog::name_of(self.system, &self.value)
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.system.tag(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Code::icpc(" t90 ").value, "T90");
        assert_eq!(Code::atc("c07ab02").value, "C07AB02");
    }

    #[test]
    fn validity_dispatch() {
        assert!(Code::icpc("T90").is_valid());
        assert!(!Code::icpc("E11").is_valid()); // E is not an ICPC chapter
        assert!(Code::icd10("E11.9").is_valid());
        assert!(Code::atc("C07AB02").is_valid());
        assert!(!Code::atc("T90").is_valid());
    }

    #[test]
    fn ancestor_chains() {
        let c = Code::atc("C07AB02");
        let anc: Vec<String> = c.ancestors().into_iter().map(|a| a.value).collect();
        assert_eq!(anc, vec!["C07AB", "C07A", "C07", "C"]);
    }

    #[test]
    fn is_within_follows_hierarchy() {
        assert!(Code::atc("C07AB02").is_within(&Code::atc("C07")));
        assert!(Code::atc("C07").is_within(&Code::atc("C07")));
        assert!(!Code::atc("C07AB02").is_within(&Code::atc("A10")));
        assert!(!Code::icpc("T90").is_within(&Code::atc("C07"))); // cross-system
    }

    #[test]
    fn display_format() {
        assert_eq!(Code::icpc("T90").to_string(), "ICPC2:T90");
        assert_eq!(CodeSystem::Atc.to_string(), "ATC");
    }
}
