//! Human-readable names for codes.
//!
//! Fig. 1 shows "dynamic displays showing detailed information about the
//! history content under the mouse cursor" — details-on-demand needs
//! display names. We carry names for every code the synthetic population
//! emits plus all chapter/group levels.

use crate::{icd10, icpc, CodeSystem};

/// ICPC-2 code names (diagnoses, symptoms and process codes used by the
/// synthetic sources).
pub const ICPC_NAMES: [(&str, &str); 40] = [
    ("A01", "Pain, general/multiple sites"),
    ("A04", "Weakness/tiredness general"),
    ("A97", "No disease"),
    ("D01", "Abdominal pain/cramps general"),
    ("D84", "Oesophagus disease"),
    ("F83", "Retinopathy"),
    ("F92", "Cataract"),
    ("H71", "Acute otitis media/myringitis"),
    ("H86", "Deafness"),
    ("K22", "Risk factor for cardiovascular disease"),
    ("K74", "Ischaemic heart disease with angina"),
    ("K75", "Acute myocardial infarction"),
    ("K76", "Ischaemic heart disease without angina"),
    ("K77", "Heart failure"),
    ("K78", "Atrial fibrillation/flutter"),
    ("K86", "Hypertension uncomplicated"),
    ("K87", "Hypertension complicated"),
    ("K89", "Transient cerebral ischaemia"),
    ("K90", "Stroke/cerebrovascular accident"),
    ("L88", "Rheumatoid/seropositive arthritis"),
    ("L89", "Osteoarthrosis of hip"),
    ("L90", "Osteoarthrosis of knee"),
    ("N89", "Migraine"),
    ("P70", "Dementia"),
    ("P74", "Anxiety disorder/anxiety state"),
    ("P76", "Depressive disorder"),
    ("R02", "Shortness of breath/dyspnoea"),
    ("R05", "Cough"),
    ("R81", "Pneumonia"),
    ("R95", "Chronic obstructive pulmonary disease"),
    ("R96", "Asthma"),
    ("T86", "Hypothyroidism/myxoedema"),
    ("T89", "Diabetes insulin dependent"),
    ("T90", "Diabetes non-insulin dependent"),
    ("T93", "Lipid disorder"),
    ("U99", "Urinary disease, other"),
    ("A98", "Health maintenance/prevention"),
    ("K49", "Cardiovascular check-up"),          // process component
    ("T34", "Blood test endocrine/metabolic"),   // process component
    ("R31", "Respiratory function test"),        // process component
];

/// ICD-10 category names used by the synthetic hospital source.
pub const ICD_NAMES: [(&str, &str); 26] = [
    ("E03", "Other hypothyroidism"),
    ("E10", "Type 1 diabetes mellitus"),
    ("E11", "Type 2 diabetes mellitus"),
    ("E14", "Unspecified diabetes mellitus"),
    ("E78", "Disorders of lipoprotein metabolism"),
    ("F03", "Unspecified dementia"),
    ("F32", "Depressive episode"),
    ("F33", "Recurrent depressive disorder"),
    ("F41", "Other anxiety disorders"),
    ("G43", "Migraine"),
    ("G45", "Transient cerebral ischaemic attacks"),
    ("I10", "Essential (primary) hypertension"),
    ("I20", "Angina pectoris"),
    ("I21", "Acute myocardial infarction"),
    ("I24", "Other acute ischaemic heart diseases"),
    ("I25", "Chronic ischaemic heart disease"),
    ("I48", "Atrial fibrillation and flutter"),
    ("I50", "Heart failure"),
    ("I63", "Cerebral infarction"),
    ("I64", "Stroke, not specified"),
    ("J18", "Pneumonia, organism unspecified"),
    ("J44", "Other chronic obstructive pulmonary disease"),
    ("J45", "Asthma"),
    ("J46", "Status asthmaticus"),
    ("M06", "Other rheumatoid arthritis"),
    ("N18", "Chronic kidney disease"),
];

/// ATC group and substance names used by the synthetic prescription source.
pub const ATC_NAMES: [(&str, &str); 22] = [
    ("A10", "Drugs used in diabetes"),
    ("A10A", "Insulins and analogues"),
    ("A10B", "Blood glucose lowering drugs, excl. insulins"),
    ("A10BA02", "Metformin"),
    ("B01", "Antithrombotic agents"),
    ("B01AC06", "Acetylsalicylic acid"),
    ("C03", "Diuretics"),
    ("C07", "Beta blocking agents"),
    ("C07A", "Beta blocking agents"),
    ("C07AB02", "Metoprolol"),
    ("C07AB03", "Atenolol"),
    ("C09", "Agents acting on the renin-angiotensin system"),
    ("C09AA02", "Enalapril"),
    ("C10", "Lipid modifying agents"),
    ("C10AA01", "Simvastatin"),
    ("C10AA05", "Atorvastatin"),
    ("N02", "Analgesics"),
    ("N02BE01", "Paracetamol"),
    ("N06A", "Antidepressants"),
    ("N06AB04", "Citalopram"),
    ("R03", "Drugs for obstructive airway diseases"),
    ("R03AC02", "Salbutamol"),
];

/// Look up the display name of a code at any hierarchy level.
pub fn name_of(system: CodeSystem, value: &str) -> Option<&'static str> {
    match system {
        CodeSystem::Icpc2 => {
            if let Some(&(_, n)) = ICPC_NAMES.iter().find(|&&(c, _)| c == value) {
                return Some(n);
            }
            // Bare chapter letters.
            let code = icpc::IcpcCode::parse(value)?;
            code.number.is_none().then(|| code.chapter.title())
        }
        CodeSystem::Icd10 => {
            if let Some(&(_, n)) = ICD_NAMES.iter().find(|&&(c, _)| c == value) {
                return Some(n);
            }
            // Block ids and chapter numerals.
            if let Some(&(_, _, _, title)) =
                icd10::BLOCKS.iter().find(|&&(_, _, id, _)| id == value)
            {
                return Some(title);
            }
            icd10::CHAPTERS.iter().find(|c| c.numeral == value).map(|c| c.title)
        }
        CodeSystem::Atc => {
            if let Some(&(_, n)) = ATC_NAMES.iter().find(|&&(c, _)| c == value) {
                return Some(n);
            }
            crate::atc::LEVEL1_GROUPS
                .iter()
                .find(|&&(g, _)| value.len() == 1 && value.starts_with(g))
                .map(|&(_, n)| n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Code;

    #[test]
    fn leaf_names() {
        assert_eq!(name_of(CodeSystem::Icpc2, "T90"), Some("Diabetes non-insulin dependent"));
        assert_eq!(name_of(CodeSystem::Icd10, "I50"), Some("Heart failure"));
        assert_eq!(name_of(CodeSystem::Atc, "C07AB02"), Some("Metoprolol"));
    }

    #[test]
    fn hierarchy_level_names() {
        assert_eq!(name_of(CodeSystem::Icpc2, "K"), Some("Cardiovascular"));
        assert_eq!(name_of(CodeSystem::Icd10, "E10-E14"), Some("Diabetes mellitus"));
        assert_eq!(
            name_of(CodeSystem::Icd10, "IX"),
            Some("Diseases of the circulatory system")
        );
        assert_eq!(name_of(CodeSystem::Atc, "C"), Some("Cardiovascular system"));
        assert_eq!(name_of(CodeSystem::Atc, "C07"), Some("Beta blocking agents"));
    }

    #[test]
    fn unknown_codes_have_no_name() {
        assert_eq!(name_of(CodeSystem::Icpc2, "T91"), None);
        assert_eq!(name_of(CodeSystem::Atc, "V99X99"), None);
    }

    #[test]
    fn catalog_codes_are_syntactically_valid() {
        for (c, _) in ICPC_NAMES {
            assert!(Code::icpc(c).is_valid(), "bad catalog ICPC code {c}");
        }
        for (c, _) in ICD_NAMES {
            assert!(Code::icd10(c).is_valid(), "bad catalog ICD code {c}");
        }
        for (c, _) in ATC_NAMES {
            assert!(Code::atc(c).is_valid(), "bad catalog ATC code {c}");
        }
    }

    #[test]
    fn display_name_via_code() {
        assert_eq!(Code::icpc("t90").display_name(), Some("Diabetes non-insulin dependent"));
    }
}
