//! A from-scratch regular-expression engine for the PAsTAs workbench.
//!
//! The paper uses regular expressions as its *lingua franca* for selecting
//! subsets of code hierarchies ("to specify diagnoses concerning the eye (F)
//! or ear (H) one may specify `F.*|H.*`"), for NSEPter's node merging, and
//! for extracting structure from free text. The original relied on
//! `java.util.regex`; we build the engine ourselves so that
//!
//! * the workspace stays dependency-light, and
//! * matching is **guaranteed linear time** in the input (Thompson/Pike VM,
//!   no backtracking), which matters for interactive filters over 168,000
//!   histories.
//!
//! Supported syntax: literals, `.`, escapes (`\d \D \w \W \s \S \n \t \r`
//! and punctuation escapes), character classes `[a-z0-9_]` / `[^…]`,
//! alternation `|`, grouping `(…)` and `(?:…)`, repetition `* + ?` and
//! counted `{m}`, `{m,}`, `{m,n}` (greedy and lazy `*? +? ?? {m,n}?`), and
//! anchors `^ $`. Capturing groups are supported and used by the free-text
//! extractors in `pastas-ingest`.
//!
//! ```
//! use pastas_regex::Regex;
//! let eye_or_ear = Regex::new("F.*|H.*").unwrap();
//! assert!(eye_or_ear.is_full_match("F83"));   // eye diagnosis
//! assert!(eye_or_ear.is_full_match("H71"));   // ear diagnosis
//! assert!(!eye_or_ear.is_full_match("T90"));  // diabetes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
pub mod engine;
mod parser;
mod prefix;
mod vm;

pub use ast::{Ast, ClassItem};
pub use parser::{ParseError, ParseErrorKind};
pub use prefix::PrefixInfo;

use compile::CharPred;
use engine::Program;

/// A compiled regular expression.
///
/// Construction parses and compiles to an NFA program once; matching runs
/// the Pike VM in `O(input · program)` time with no backtracking.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program<CharPred>,
    /// Number of capturing groups (excluding group 0, the whole match).
    group_count: usize,
    /// Literal-prefix facts for index acceleration.
    prefix: PrefixInfo,
}

/// A successful match: byte offsets into the haystack plus capture groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Start byte offset of the whole match.
    pub start: usize,
    /// End byte offset (exclusive) of the whole match.
    pub end: usize,
    /// Byte ranges for each capturing group (index 0 = whole match);
    /// `None` when the group did not participate.
    pub groups: Vec<Option<(usize, usize)>>,
}

impl Match {
    /// The matched text of capture group `i` within `haystack`.
    pub fn group<'h>(&self, i: usize, haystack: &'h str) -> Option<&'h str> {
        let (s, e) = (*self.groups.get(i)?)?;
        haystack.get(s..e)
    }
}

impl Regex {
    /// Parse and compile `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        Self::with_options(pattern, false)
    }

    /// Parse and compile `pattern`, optionally case-insensitive (ASCII
    /// folding — clinical codes are ASCII; full Unicode folding is out of
    /// scope).
    pub fn with_options(pattern: &str, case_insensitive: bool) -> Result<Regex, ParseError> {
        let ast = parser::parse(pattern)?;
        let group_count = ast.count_groups();
        // Case folding invalidates the literal prefix; fall back to the
        // conservative empty prefix.
        let prefix = if case_insensitive { PrefixInfo::default() } else { prefix::analyze(&ast) };
        let program = compile::compile(&ast, case_insensitive);
        Ok(Regex { pattern: pattern.to_owned(), program, group_count, prefix })
    }

    /// Literal-prefix facts (every full match starts with
    /// `prefix_info().prefix`; if `exact`, the pattern IS that literal).
    /// Index implementations use this to replace vocabulary scans with
    /// B-tree range probes.
    pub fn prefix_info(&self) -> &PrefixInfo {
        &self.prefix
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capturing groups (excluding the implicit whole-match group).
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// True if the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        vm::search(&self.program, haystack, 0, false).is_some()
    }

    /// True if the pattern matches the *entire* `haystack`.
    ///
    /// This is the semantics used for code predicates: `F.*` selects every
    /// code in ICPC chapter F, but must not select `XF1`.
    pub fn is_full_match(&self, haystack: &str) -> bool {
        match vm::search(&self.program, haystack, 0, true) {
            Some(m) => m.start == 0 && m.end == haystack.len(),
            None => false,
        }
    }

    /// Leftmost match anywhere in `haystack`.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    /// Leftmost match starting at or after byte offset `start`.
    pub fn find_at(&self, haystack: &str, start: usize) -> Option<Match> {
        vm::search(&self.program, haystack, start, false)
    }

    /// Iterator over non-overlapping matches, left to right.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> Matches<'r, 'h> {
        Matches { re: self, haystack, at: 0 }
    }

    /// Convenience: the text of the first match.
    pub fn first<'h>(&self, haystack: &'h str) -> Option<&'h str> {
        let m = self.find(haystack)?;
        haystack.get(m.start..m.end)
    }
}

/// Iterator over non-overlapping matches. See [`Regex::find_iter`].
#[derive(Debug)]
pub struct Matches<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = self.re.find_at(self.haystack, self.at)?;
        // Advance past the match; for an empty match step one char so the
        // iterator always terminates.
        self.at = if m.end > m.start {
            m.end
        } else {
            next_char_boundary(self.haystack, m.end)
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, i: usize) -> usize {
    let mut j = i + 1;
    while j < s.len() && !s.is_char_boundary(j) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests;
#[cfg(test)]
mod proptests;
