//! The byte-regex entry point into the generic Pike VM.
//!
//! [`search`] adapts a `&str` haystack into the `(pos, next_pos, char)`
//! token stream expected by [`engine::leftmost`] and rebuilds a
//! [`Match`] from the winning capture slots. Runs in
//! `O(|haystack| · |program|)` time regardless of the pattern — the
//! property that keeps interactive filtering predictable at cohort
//! scale. Semantics are leftmost-first (Perl-like): earlier starting
//! positions win, and within a position, higher-priority threads
//! (greedy vs lazy split order) win.
//!
//! The pre-generalization VM survives below as the test-only
//! [`classic_search`], the differential oracle proving the generic
//! engine is byte-for-byte compatible on the proptest corpus.

use crate::compile::CharPred;
use crate::engine::{self, Bounds, Program, UNSET};
use crate::Match;

/// Search `haystack` for a match.
///
/// * `start` — byte offset at which the scan begins (must be a char
///   boundary).
/// * `full` — when true, the thread pool is seeded only at `start` and a
///   `Match` instruction only accepts at the end of the haystack; the caller
///   uses this for whole-string (code predicate) matching.
pub(crate) fn search(
    prog: &Program<CharPred>,
    haystack: &str,
    start: usize,
    full: bool,
) -> Option<Match> {
    if start > haystack.len() {
        return None;
    }
    let tokens = haystack[start..]
        .char_indices()
        .map(|(i, c)| (start + i, start + i + c.len_utf8(), c));
    let bounds = Bounds { begin: 0, end: haystack.len() };
    let saves = engine::leftmost(prog, tokens, bounds, &(), full)?;
    Some(match_from_saves(&saves))
}

/// Rebuild a [`Match`] from a winning thread's capture slots.
fn match_from_saves(saves: &[usize]) -> Match {
    let groups = saves
        .chunks(2)
        .map(|w| if w[0] == UNSET || w[1] == UNSET { None } else { Some((w[0], w[1])) })
        .collect::<Vec<_>>();
    // lint:allow(transitive-no-panic-hot-path) slots 0/1 are written before any Accept, so a match always has them
    let (s, e) = groups[0].expect("whole-match slots always set");
    Match { start: s, end: e, groups }
}

/// The original char-specialized Pike VM, kept verbatim as the
/// differential oracle for [`search`].
#[cfg(test)]
pub(crate) fn classic_search(
    prog: &Program<CharPred>,
    haystack: &str,
    start: usize,
    full: bool,
) -> Option<Match> {
    use crate::engine::Inst;

    #[derive(Clone)]
    struct Thread {
        pc: usize,
        saves: Vec<usize>,
    }

    fn add_thread(
        prog: &Program<CharPred>,
        haystack: &str,
        pos: usize,
        t: Thread,
        list: &mut Vec<Thread>,
        seen: &mut [bool],
    ) {
        if seen[t.pc] {
            return;
        }
        seen[t.pc] = true;
        match &prog.insts[t.pc] {
            Inst::Jmp(to) => add_thread(prog, haystack, pos, Thread { pc: *to, ..t }, list, seen),
            Inst::Split(a, b) => {
                let (a, b) = (*a, *b);
                add_thread(
                    prog,
                    haystack,
                    pos,
                    Thread { pc: a, saves: t.saves.clone() },
                    list,
                    seen,
                );
                add_thread(prog, haystack, pos, Thread { pc: b, saves: t.saves }, list, seen);
            }
            Inst::Save(slot) => {
                let mut saves = t.saves;
                saves[*slot] = pos;
                add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, saves }, list, seen);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, ..t }, list, seen);
                }
            }
            Inst::AssertEnd => {
                if pos == haystack.len() {
                    add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, ..t }, list, seen);
                }
            }
            Inst::Token { .. } | Inst::Match => list.push(t),
        }
    }

    if start > haystack.len() {
        return None;
    }
    let tail = &haystack[start..];

    let mut clist: Vec<Thread> = Vec::new();
    let mut nlist: Vec<Thread> = Vec::new();
    let mut cseen = vec![false; prog.insts.len()];
    let mut nseen = vec![false; prog.insts.len()];
    let mut best: Option<Vec<usize>> = None;

    let mut iter = tail.char_indices().map(|(i, c)| (start + i, Some(c)));
    let mut next_item = iter.next();

    loop {
        let (pos, cur) = match next_item {
            Some((i, ch)) => (i, ch),
            None => (haystack.len(), None),
        };

        let seed = best.is_none() && (!full || pos == start);
        if seed {
            let saves = vec![UNSET; prog.slots];
            add_thread(prog, haystack, pos, Thread { pc: 0, saves }, &mut clist, &mut cseen);
        }

        if clist.is_empty() && best.is_some() {
            break;
        }

        let mut i = 0;
        while i < clist.len() {
            let t = &clist[i];
            match &prog.insts[t.pc] {
                Inst::Token { guard, .. } => {
                    if let Some(ch) = cur {
                        if guard.matches(ch) {
                            let mut nt = clist[i].clone();
                            nt.pc += 1;
                            add_thread(
                                prog,
                                haystack,
                                pos + ch.len_utf8(),
                                nt,
                                &mut nlist,
                                &mut nseen,
                            );
                        }
                    }
                }
                Inst::Match => {
                    let accept = !full || cur.is_none();
                    if accept {
                        best = Some(clist[i].saves.clone());
                        clist.truncate(i + 1);
                        break;
                    }
                }
                _ => unreachable!("epsilon instruction in run list"),
            }
            i += 1;
        }

        if cur.is_none() {
            break;
        }
        std::mem::swap(&mut clist, &mut nlist);
        std::mem::swap(&mut cseen, &mut nseen);
        nlist.clear();
        nseen.iter_mut().for_each(|s| *s = false);
        next_item = iter.next();
        if clist.is_empty() && best.is_some() {
            break;
        }
    }

    best.map(|saves| match_from_saves(&saves))
}
