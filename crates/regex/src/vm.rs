//! The Pike VM: breadth-first NFA simulation with capture slots.
//!
//! Runs in `O(|haystack| · |program|)` time regardless of the pattern —
//! the property that keeps interactive filtering predictable at cohort
//! scale. Semantics are leftmost-first (Perl-like): earlier starting
//! positions win, and within a position, higher-priority threads (greedy
//! vs lazy split order) win.

use crate::compile::{Inst, Program};
use crate::Match;

const UNSET: usize = usize::MAX;

/// A live NFA thread: program counter plus capture slots.
#[derive(Clone)]
struct Thread {
    pc: usize,
    saves: Vec<usize>,
}

/// Search `haystack` for a match.
///
/// * `start` — byte offset at which the scan begins (must be a char
///   boundary).
/// * `full` — when true, the thread pool is seeded only at `start` and a
///   `Match` instruction only accepts at the end of the haystack; the caller
///   uses this for whole-string (code predicate) matching.
pub(crate) fn search(prog: &Program, haystack: &str, start: usize, full: bool) -> Option<Match> {
    if start > haystack.len() {
        return None;
    }
    // Positions: (byte_offset, char) for each char at or after `start`,
    // plus an end sentinel.
    let tail = &haystack[start..];

    let mut clist: Vec<Thread> = Vec::new();
    let mut nlist: Vec<Thread> = Vec::new();
    let mut cseen = vec![false; prog.insts.len()];
    let mut nseen = vec![false; prog.insts.len()];
    let mut best: Option<Vec<usize>> = None;

    let mut iter = tail.char_indices().map(|(i, c)| (start + i, Some(c)));
    let mut next_item = iter.next();

    loop {
        let (pos, cur) = match next_item {
            Some((i, ch)) => (i, ch),
            None => (haystack.len(), None),
        };

        // Seed a new start thread unless a match has been found (leftmost)
        // or we are in anchored/full mode past the start.
        let seed = best.is_none() && (!full || pos == start);
        if seed {
            let saves = vec![UNSET; prog.slots];
            add_thread(prog, haystack, pos, Thread { pc: 0, saves }, &mut clist, &mut cseen);
        }

        if clist.is_empty() && best.is_some() {
            break;
        }

        let mut i = 0;
        while i < clist.len() {
            let t = &clist[i];
            match &prog.insts[t.pc] {
                Inst::Char(pred) => {
                    if let Some(ch) = cur {
                        if pred.matches(ch) {
                            let mut nt = clist[i].clone();
                            nt.pc += 1;
                            add_thread(
                                prog,
                                haystack,
                                pos + ch.len_utf8(),
                                nt,
                                &mut nlist,
                                &mut nseen,
                            );
                        }
                    }
                }
                Inst::Match => {
                    let accept = !full || cur.is_none();
                    if accept {
                        best = Some(clist[i].saves.clone());
                        // Cut lower-priority threads: they can only produce
                        // worse (later-starting / lower-priority) matches.
                        clist.truncate(i + 1);
                        break;
                    }
                }
                // Eps instructions were resolved by add_thread.
                // lint:allow(transitive-no-panic-hot-path) add_thread's epsilon closure never enqueues eps instructions
                _ => unreachable!("epsilon instruction in run list"),
            }
            i += 1;
        }

        if cur.is_none() {
            break;
        }
        std::mem::swap(&mut clist, &mut nlist);
        std::mem::swap(&mut cseen, &mut nseen);
        nlist.clear();
        nseen.iter_mut().for_each(|s| *s = false);
        next_item = iter.next();
        if clist.is_empty() && best.is_some() {
            break;
        }
    }

    best.map(|saves| {
        let groups = saves
            .chunks(2)
            .map(|w| if w[0] == UNSET || w[1] == UNSET { None } else { Some((w[0], w[1])) })
            .collect::<Vec<_>>();
        // lint:allow(transitive-no-panic-hot-path) slots 0/1 are written before any Accept, so a match always has them
        let (s, e) = groups[0].expect("whole-match slots always set");
        Match { start: s, end: e, groups }
    })
}

/// Add a thread, transitively following epsilon instructions
/// (Split/Jmp/Save/Assert). `seen` deduplicates by program counter — the
/// first (highest-priority) arrival wins, which is what gives greedy/lazy
/// their meaning.
fn add_thread(
    prog: &Program,
    haystack: &str,
    pos: usize,
    t: Thread,
    list: &mut Vec<Thread>,
    seen: &mut [bool],
) {
    if seen[t.pc] {
        return;
    }
    seen[t.pc] = true;
    match &prog.insts[t.pc] {
        Inst::Jmp(to) => add_thread(prog, haystack, pos, Thread { pc: *to, ..t }, list, seen),
        Inst::Split(a, b) => {
            let (a, b) = (*a, *b);
            add_thread(prog, haystack, pos, Thread { pc: a, saves: t.saves.clone() }, list, seen);
            add_thread(prog, haystack, pos, Thread { pc: b, saves: t.saves }, list, seen);
        }
        Inst::Save(slot) => {
            let mut saves = t.saves;
            saves[*slot] = pos;
            add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, saves }, list, seen);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, ..t }, list, seen);
            }
        }
        Inst::AssertEnd => {
            if pos == haystack.len() {
                add_thread(prog, haystack, pos, Thread { pc: t.pc + 1, ..t }, list, seen);
            }
        }
        Inst::Char(_) | Inst::Match => list.push(t),
    }
}
