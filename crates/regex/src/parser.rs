//! Recursive-descent pattern parser.

use crate::ast::{Ast, ClassItem};
use std::fmt;

/// Maximum counted-repetition bound; `{m,n}` is compiled by expansion, so an
/// adversarial `{100000}` must be rejected rather than allocated.
const MAX_COUNTED_REPEAT: u32 = 1_000;

/// Why a pattern failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Pattern ended in the middle of a construct.
    UnexpectedEnd,
    /// `)` with no matching `(`.
    UnbalancedClose,
    /// `(` with no matching `)`.
    UnbalancedOpen,
    /// `[` with no matching `]`.
    UnclosedClass,
    /// Empty character class `[]`.
    EmptyClass,
    /// Class range with `hi < lo`, e.g. `[z-a]`.
    InvalidClassRange,
    /// Unknown escape like `\q`.
    InvalidEscape,
    /// `*`, `+`, `?` or `{…}` with nothing to repeat.
    NothingToRepeat,
    /// Malformed `{…}` quantifier.
    InvalidRepeat,
    /// Counted repetition above the compilation limit.
    RepeatTooLarge,
}

/// Pattern parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the pattern where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ParseErrorKind::UnexpectedEnd => "pattern ended unexpectedly",
            ParseErrorKind::UnbalancedClose => "unmatched ')'",
            ParseErrorKind::UnbalancedOpen => "unmatched '('",
            ParseErrorKind::UnclosedClass => "unclosed character class",
            ParseErrorKind::EmptyClass => "empty character class",
            ParseErrorKind::InvalidClassRange => "invalid class range",
            ParseErrorKind::InvalidEscape => "invalid escape sequence",
            ParseErrorKind::NothingToRepeat => "quantifier with nothing to repeat",
            ParseErrorKind::InvalidRepeat => "malformed {m,n} quantifier",
            ParseErrorKind::RepeatTooLarge => "counted repetition too large",
        };
        write!(f, "{what} at byte {}", self.position)
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser { chars: pattern.char_indices().collect(), pos: 0, next_group: 1 };
    let ast = p.parse_alternation(0)?;
    if p.pos < p.chars.len() {
        // Only a stray ')' can stop parse_alternation early at depth 0.
        return Err(p.error(ParseErrorKind::UnbalancedClose));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
}

impl Parser {
    fn error(&self, kind: ParseErrorKind) -> ParseError {
        let position = self
            .chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or_else(|| self.chars.last().map(|&(i, c)| i + c.len_utf8()).unwrap_or(0));
        ParseError { kind, position }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alternation(&mut self, depth: u32) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat(depth)?];
        while self.eat('|') {
            branches.push(self.parse_concat(depth)?);
        }
        Ok(if branches.len() == 1 { branches.pop().expect("one branch") } else {
            Ast::Alternate(branches)
        })
    }

    fn parse_concat(&mut self, depth: u32) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => {}
            }
            let atom = self.parse_atom(depth)?;
            let atom = self.parse_quantifier(atom)?;
            parts.push(atom);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_atom(&mut self, depth: u32) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(self.error(ParseErrorKind::UnexpectedEnd)),
            Some('(') => {
                self.pos += 1;
                let capturing = if self.peek() == Some('?') {
                    // Only (?:...) is supported.
                    self.pos += 1;
                    if !self.eat(':') {
                        return Err(self.error(ParseErrorKind::InvalidEscape));
                    }
                    false
                } else {
                    true
                };
                let index = if capturing {
                    let i = self.next_group;
                    self.next_group += 1;
                    Some(i)
                } else {
                    None
                };
                let inner = self.parse_alternation(depth + 1)?;
                if !self.eat(')') {
                    return Err(self.error(ParseErrorKind::UnbalancedOpen));
                }
                Ok(match index {
                    Some(index) => Ast::Group { index, inner: Box::new(inner) },
                    None => Ast::NonCapturing(Box::new(inner)),
                })
            }
            Some('[') => self.parse_class(),
            Some('.') => {
                self.pos += 1;
                Ok(Ast::Dot)
            }
            Some('^') => {
                self.pos += 1;
                Ok(Ast::AnchorStart)
            }
            Some('$') => {
                self.pos += 1;
                Ok(Ast::AnchorEnd)
            }
            Some('\\') => {
                self.pos += 1;
                self.parse_escape()
            }
            Some('*') | Some('+') | Some('?') => Err(self.error(ParseErrorKind::NothingToRepeat)),
            Some('{') => {
                // A '{' that doesn't follow an atom: treat as literal only if
                // it is not a valid quantifier shape; keeping it strict is
                // simpler and errs on the loud side.
                Err(self.error(ParseErrorKind::NothingToRepeat))
            }
            Some(c) => {
                self.pos += 1;
                Ok(Ast::Literal(c))
            }
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        let Some(c) = self.bump() else {
            return Err(self.error(ParseErrorKind::UnexpectedEnd));
        };
        let class = |items: Vec<ClassItem>, negated| Ast::Class { items, negated };
        Ok(match c {
            'd' => class(vec![ClassItem::Range('0', '9')], false),
            'D' => class(vec![ClassItem::Range('0', '9')], true),
            'w' => class(word_items(), false),
            'W' => class(word_items(), true),
            's' => class(space_items(), false),
            'S' => class(space_items(), true),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^'
            | '$' | '-' | '/' => Ast::Literal(c),
            _ => {
                self.pos -= 1;
                return Err(self.error(ParseErrorKind::InvalidEscape));
            }
        })
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.pos += 1;
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.error(ParseErrorKind::UnclosedClass));
            };
            let lo = match c {
                ']' => {
                    if items.is_empty() {
                        return Err(self.error(ParseErrorKind::EmptyClass));
                    }
                    return Ok(Ast::Class { items, negated });
                }
                '\\' => match self.bump() {
                    Some('d') => {
                        items.push(ClassItem::Range('0', '9'));
                        continue;
                    }
                    Some('w') => {
                        items.extend(word_items());
                        continue;
                    }
                    Some('s') => {
                        items.extend(space_items());
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(e @ ('\\' | ']' | '[' | '^' | '-' | '.')) => e,
                    Some(_) => {
                        self.pos -= 1;
                        return Err(self.error(ParseErrorKind::InvalidEscape));
                    }
                    None => return Err(self.error(ParseErrorKind::UnclosedClass)),
                },
                other => other,
            };
            // Range `lo-hi`? A '-' directly before ']' is a literal dash.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
            {
                self.pos += 1; // consume '-'
                let Some(hi) = self.bump() else {
                    return Err(self.error(ParseErrorKind::UnclosedClass));
                };
                let hi = if hi == '\\' {
                    match self.bump() {
                        Some(e @ ('\\' | ']' | '[' | '^' | '-' | '.')) => e,
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('r') => '\r',
                        _ => return Err(self.error(ParseErrorKind::InvalidEscape)),
                    }
                } else {
                    hi
                };
                if hi < lo {
                    return Err(self.error(ParseErrorKind::InvalidClassRange));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Char(lo));
            }
        }
    }

    fn parse_quantifier(&mut self, atom: Ast) -> Result<Ast, ParseError> {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                let save = self.pos;
                self.pos += 1;
                match self.parse_counted() {
                    Ok(pair) => pair,
                    Err(e) => {
                        self.pos = save;
                        return Err(e);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd | Ast::Empty) {
            return Err(self.error(ParseErrorKind::NothingToRepeat));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat { inner: Box::new(atom), min, max, greedy })
    }

    fn parse_counted(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.parse_number()?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') { None } else { Some(self.parse_number()?) }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.error(ParseErrorKind::InvalidRepeat));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.error(ParseErrorKind::InvalidRepeat));
            }
            if max > MAX_COUNTED_REPEAT {
                return Err(self.error(ParseErrorKind::RepeatTooLarge));
            }
        }
        if min > MAX_COUNTED_REPEAT {
            return Err(self.error(ParseErrorKind::RepeatTooLarge));
        }
        Ok((min, max))
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        digits.parse().map_err(|_| self.error(ParseErrorKind::InvalidRepeat))
    }
}

fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Char('_'),
    ]
}

fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Char(' '),
        ClassItem::Char('\t'),
        ClassItem::Char('\n'),
        ClassItem::Char('\r'),
        ClassItem::Char('\u{0b}'),
        ClassItem::Char('\u{0c}'),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(p: &str) -> ParseErrorKind {
        parse(p).unwrap_err().kind
    }

    #[test]
    fn parses_the_papers_example() {
        // "F.*|H.*" — diagnoses concerning the eye or the ear.
        let ast = parse("F.*|H.*").unwrap();
        let Ast::Alternate(branches) = ast else { panic!("expected alternation") };
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn literal_concat() {
        assert_eq!(
            parse("T90").unwrap(),
            Ast::Concat(vec![Ast::Literal('T'), Ast::Literal('9'), Ast::Literal('0')])
        );
    }

    #[test]
    fn quantifier_variants() {
        for (p, min, max, greedy) in [
            ("a*", 0, None, true),
            ("a+", 1, None, true),
            ("a?", 0, Some(1), true),
            ("a{3}", 3, Some(3), true),
            ("a{2,}", 2, None, true),
            ("a{2,5}", 2, Some(5), true),
            ("a*?", 0, None, false),
            ("a{2,5}?", 2, Some(5), false),
        ] {
            let Ast::Repeat { min: m, max: x, greedy: g, .. } = parse(p).unwrap() else {
                panic!("{p} did not parse to Repeat")
            };
            assert_eq!((m, x, g), (min, max, greedy), "pattern {p}");
        }
    }

    #[test]
    fn classes() {
        let Ast::Class { items, negated } = parse("[a-f0-9_]").unwrap() else {
            panic!("expected class")
        };
        assert!(!negated);
        assert_eq!(
            items,
            vec![
                ClassItem::Range('a', 'f'),
                ClassItem::Range('0', '9'),
                ClassItem::Char('_')
            ]
        );
        let Ast::Class { negated, .. } = parse("[^abc]").unwrap() else { panic!() };
        assert!(negated);
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        let Ast::Class { items, .. } = parse("[a-]").unwrap() else { panic!() };
        assert_eq!(items, vec![ClassItem::Char('a'), ClassItem::Char('-')]);
    }

    #[test]
    fn groups_are_numbered_in_order() {
        let ast = parse("(a)(?:b)(c(d))").unwrap();
        assert_eq!(ast.count_groups(), 3);
    }

    #[test]
    fn anchors() {
        assert_eq!(
            parse("^K74$").unwrap(),
            Ast::Concat(vec![
                Ast::AnchorStart,
                Ast::Literal('K'),
                Ast::Literal('7'),
                Ast::Literal('4'),
                Ast::AnchorEnd
            ])
        );
    }

    #[test]
    fn error_kinds() {
        assert_eq!(kind("a)"), ParseErrorKind::UnbalancedClose);
        assert_eq!(kind("(a"), ParseErrorKind::UnbalancedOpen);
        assert_eq!(kind("[ab"), ParseErrorKind::UnclosedClass);
        assert_eq!(kind("[]"), ParseErrorKind::EmptyClass);
        assert_eq!(kind("[z-a]"), ParseErrorKind::InvalidClassRange);
        assert_eq!(kind("\\q"), ParseErrorKind::InvalidEscape);
        assert_eq!(kind("*a"), ParseErrorKind::NothingToRepeat);
        assert_eq!(kind("a{2,1}"), ParseErrorKind::InvalidRepeat);
        assert_eq!(kind("a{}"), ParseErrorKind::InvalidRepeat);
        assert_eq!(kind("a{999999}"), ParseErrorKind::RepeatTooLarge);
    }

    #[test]
    fn error_positions_point_at_offender() {
        assert_eq!(parse("ab\\q").unwrap_err().position, 3);
        assert_eq!(parse("abc)").unwrap_err().position, 3);
    }

    #[test]
    fn escaped_punctuation() {
        assert_eq!(
            parse("\\.\\*\\\\").unwrap(),
            Ast::Concat(vec![Ast::Literal('.'), Ast::Literal('*'), Ast::Literal('\\')])
        );
    }

    #[test]
    fn empty_pattern_is_empty_ast() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert_eq!(parse("a|").unwrap(), Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty]));
    }
}
