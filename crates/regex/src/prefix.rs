//! Literal-prefix analysis — the query optimizer's hook.
//!
//! Code filters are overwhelmingly of the shapes `T90` (exact) and `K.*`
//! (prefix): the inverted index can answer those with a B-tree range scan
//! over the code vocabulary instead of testing every distinct code against
//! the automaton. This module extracts the guaranteed literal prefix of a
//! pattern (and whether the pattern is *exactly* that literal), computed
//! once at compile time.

use crate::ast::Ast;

/// The literal-prefix facts about a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefixInfo {
    /// Characters every full match must start with (may be empty).
    pub prefix: String,
    /// True when the pattern matches exactly the prefix string and nothing
    /// else (so index lookup degenerates to an equality probe).
    pub exact: bool,
}

/// Compute the prefix facts of a parsed pattern.
pub fn analyze(ast: &Ast) -> PrefixInfo {
    let (prefix, total) = walk(ast);
    PrefixInfo { exact: total, prefix }
}

/// Returns `(literal prefix, whole-node-is-exactly-that-literal)`.
fn walk(ast: &Ast) -> (String, bool) {
    match ast {
        Ast::Empty => (String::new(), true),
        Ast::Literal(c) => (c.to_string(), true),
        Ast::AnchorStart => (String::new(), true), // matches "" at the front
        Ast::Concat(parts) => {
            let mut prefix = String::new();
            for (i, p) in parts.iter().enumerate() {
                let (sub, total) = walk(p);
                prefix.push_str(&sub);
                if !total {
                    return (prefix, false);
                }
                let _ = i;
            }
            (prefix, true)
        }
        Ast::Group { inner, .. } | Ast::NonCapturing(inner) => walk(inner),
        Ast::Alternate(branches) => {
            // Common prefix of all branches; exact only if every branch is
            // the same exact literal (pathological, treat as not exact).
            let mut iter = branches.iter().map(walk);
            let Some((mut common, _)) = iter.next() else {
                return (String::new(), false);
            };
            for (sub, _) in iter {
                let shared = common
                    .chars()
                    .zip(sub.chars())
                    .take_while(|(a, b)| a == b)
                    .count();
                common = common.chars().take(shared).collect();
                if common.is_empty() {
                    break;
                }
            }
            (common, false)
        }
        Ast::Repeat { inner, min, .. } => {
            if *min == 0 {
                return (String::new(), false);
            }
            // One mandatory copy contributes its prefix.
            let (sub, _) = walk(inner);
            (sub, false)
        }
        // Classes, dot, end anchors contribute nothing certain.
        _ => (String::new(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn info(p: &str) -> PrefixInfo {
        analyze(&parse(p).unwrap())
    }

    #[test]
    fn exact_literals() {
        assert_eq!(info("T90"), PrefixInfo { prefix: "T90".into(), exact: true });
        assert_eq!(info(""), PrefixInfo { prefix: String::new(), exact: true });
        assert_eq!(info("^T90"), PrefixInfo { prefix: "T90".into(), exact: true });
    }

    #[test]
    fn prefix_patterns() {
        assert_eq!(info("K.*"), PrefixInfo { prefix: "K".into(), exact: false });
        assert_eq!(info("E1[014].*"), PrefixInfo { prefix: "E1".into(), exact: false });
        assert_eq!(info("C07AB.."), PrefixInfo { prefix: "C07AB".into(), exact: false });
    }

    #[test]
    fn alternation_takes_the_common_prefix() {
        assert_eq!(info("T90|T89").prefix, "T");
        assert_eq!(info("F.*|H.*").prefix, "");
        assert_eq!(info("K74|K77|K86").prefix, "K");
        assert!(!info("T90|T89").exact);
    }

    #[test]
    fn repeats_and_groups() {
        assert_eq!(info("(T9)0").prefix, "T90");
        assert!(info("(T9)0").exact);
        assert_eq!(info("a+b").prefix, "a");
        assert_eq!(info("a*b").prefix, "");
        assert_eq!(info("a{2,3}").prefix, "a");
        assert_eq!(info("(?:ab)+").prefix, "ab");
    }

    #[test]
    fn uncertain_heads_yield_empty_prefix() {
        for p in [".*", "[AB]1", "\\d+", "$"] {
            assert_eq!(info(p).prefix, "", "{p}");
            assert!(!info(p).exact, "{p}");
        }
    }
}
