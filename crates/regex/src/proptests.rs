//! Property tests: the engine is checked against a tiny reference
//! implementation (naive backtracking over the same AST) on small inputs,
//! plus structural invariants on arbitrary patterns.

use crate::ast::{Ast, ClassItem};
use crate::{parser, Regex};
use proptest::prelude::*;

/// A reference matcher: straightforward exponential backtracking over the
/// AST. Only used on tiny inputs where its cost is irrelevant. Returns
/// whether the whole string can be matched.
fn reference_full_match(ast: &Ast, input: &[char]) -> bool {
    fn go(ast: &Ast, input: &[char], i: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match ast {
            Ast::Empty => k(i),
            Ast::Literal(c) => i < input.len() && input[i] == *c && k(i + 1),
            Ast::Dot => i < input.len() && input[i] != '\n' && k(i + 1),
            Ast::Class { items, negated } => {
                i < input.len()
                    && (items.iter().any(|it| it.contains(input[i])) != *negated)
                    && k(i + 1)
            }
            Ast::Concat(parts) => {
                fn chain(
                    parts: &[Ast],
                    input: &[char],
                    i: usize,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    match parts.split_first() {
                        None => k(i),
                        Some((head, rest)) => {
                            go(head, input, i, &mut |j| chain(rest, input, j, k))
                        }
                    }
                }
                chain(parts, input, i, k)
            }
            Ast::Alternate(branches) => branches.iter().any(|b| go(b, input, i, k)),
            Ast::Repeat { inner, min, max, .. } => {
                fn rep(
                    inner: &Ast,
                    input: &[char],
                    i: usize,
                    done: u32,
                    min: u32,
                    max: Option<u32>,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    if done >= min && k(i) {
                        return true;
                    }
                    if max.is_some_and(|m| done >= m) {
                        return false;
                    }
                    // Bound runaway empty-iteration loops.
                    if done > input.len() as u32 + 2 {
                        return false;
                    }
                    go(inner, input, i, &mut |j| {
                        rep(inner, input, j, done + 1, min, max, k)
                    })
                }
                rep(inner, input, i, 0, *min, *max, k)
            }
            Ast::Group { inner, .. } | Ast::NonCapturing(inner) => go(inner, input, i, k),
            Ast::AnchorStart => i == 0 && k(i),
            Ast::AnchorEnd => i == input.len() && k(i),
        }
    }
    go(ast, input, 0, &mut |i| i == input.len())
}

/// Strategy: small patterns over a 3-letter alphabet, exercising every
/// construct the engine supports.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        Just(".".to_owned()),
        Just("[ab]".to_owned()),
        Just("[^a]".to_owned()),
        Just("[a-c]".to_owned()),
    ];
    // Depth is kept small: the *reference* matcher is an exponential
    // backtracker, and nested counted repeats at depth 3 occasionally
    // generate patterns it cannot decide within minutes.
    leaf.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(?:{a}|{b})")),
            inner.clone().prop_map(|a| format!("(?:{a})*")),
            inner.clone().prop_map(|a| format!("(?:{a})+")),
            inner.clone().prop_map(|a| format!("(?:{a})?")),
            inner.clone().prop_map(|a| format!("(?:{a}){{1,2}}")),
            inner.prop_map(|a| format!("({a})")),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('c'), Just('d')], 0..7)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The Pike VM agrees with the naive backtracker on full-match
    /// existence for every generated (pattern, input) pair.
    #[test]
    fn vm_agrees_with_reference(p in arb_pattern(), input in arb_input()) {
        let ast = parser::parse(&p).unwrap();
        let chars: Vec<char> = input.chars().collect();
        let expected = reference_full_match(&ast, &chars);
        let got = Regex::new(&p).unwrap().is_full_match(&input);
        prop_assert_eq!(got, expected, "pattern {} on {:?}", p, input);
    }

    /// `find` results are consistent: the reported range actually matches
    /// when re-checked in full-match mode, and lies within the haystack.
    #[test]
    fn find_reports_a_real_match(p in arb_pattern(), input in arb_input()) {
        let r = Regex::new(&p).unwrap();
        if let Some(m) = r.find(&input) {
            prop_assert!(m.start <= m.end && m.end <= input.len());
            prop_assert!(input.is_char_boundary(m.start) && input.is_char_boundary(m.end));
            prop_assert!(r.is_full_match(&input[m.start..m.end]),
                "reported range {:?} of {:?} does not full-match {}", (m.start, m.end), input, p);
        }
    }

    /// is_match is implied by is_full_match, and find is consistent with
    /// is_match.
    #[test]
    fn match_predicates_are_consistent(p in arb_pattern(), input in arb_input()) {
        let r = Regex::new(&p).unwrap();
        if r.is_full_match(&input) {
            prop_assert!(r.is_match(&input));
        }
        prop_assert_eq!(r.is_match(&input), r.find(&input).is_some());
    }

    /// Parsing never panics on arbitrary byte soup.
    #[test]
    fn parser_never_panics(p in "\\PC{0,24}") {
        let _ = Regex::new(&p);
    }

    /// find_iter terminates and yields non-overlapping, ordered matches.
    #[test]
    fn find_iter_is_ordered(p in arb_pattern(), input in arb_input()) {
        let r = Regex::new(&p).unwrap();
        let ms: Vec<_> = r.find_iter(&input).take(64).collect();
        for w in ms.windows(2) {
            prop_assert!(w[1].start >= w[0].end || (w[0].start == w[0].end && w[1].start > w[0].start));
        }
    }

    /// The generic token engine is byte-for-byte compatible with the
    /// pre-generalization char VM: identical `Match` (offsets *and*
    /// capture groups) at every start offset, in both search modes.
    #[test]
    fn generic_engine_agrees_with_classic_vm(p in arb_pattern(), input in arb_input()) {
        let r = Regex::new(&p).unwrap();
        for full in [false, true] {
            for start in 0..=input.len() {
                if !input.is_char_boundary(start) {
                    continue;
                }
                let classic = crate::vm::classic_search(&r.program, &input, start, full);
                let generic = crate::vm::search(&r.program, &input, start, full);
                prop_assert_eq!(
                    &generic, &classic,
                    "pattern {} on {:?} (start {}, full {})", p, input, start, full
                );
            }
        }
    }
}

#[test]
fn class_item_range_contains_is_transitive_sanity() {
    // Spot check that ClassItem agrees with char ordering.
    assert!(ClassItem::Range('a', 'z').contains('m'));
    assert!(!ClassItem::Range('a', 'z').contains('A'));
}
