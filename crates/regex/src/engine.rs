//! A Pike VM over an arbitrary token alphabet.
//!
//! The classic Pike VM (Thompson NFA simulation with capture slots)
//! consumes `char`s from a `&str`. Cohort queries need the same machine
//! over richer alphabets — clinical history entries with timestamps,
//! where a transition is admissible only if a *gap constraint* against
//! the previously consumed token holds. This module factors the VM out
//! over a generic token type `T` and a guard trait, so the byte regex
//! engine and the temporal-pattern engine share one simulation core.
//!
//! Two generalizations over the textbook VM:
//!
//! * **Guarded transitions.** A consuming instruction carries a
//!   [`TokenGuard`] instead of a character predicate. Guards see the
//!   token *and* per-thread state (e.g. the span of the previously
//!   matched event) and return a three-valued [`Outcome`]: advance,
//!   wait (stay parked at this instruction for the next token), or fail
//!   (kill the thread). `Wait` is what lets a temporal automaton skip
//!   interleaved non-matching events the way a `find`-based matcher
//!   would, while `Fail` lets it prune as soon as a sorted token stream
//!   passes the upper gap bound. A character guard never waits, which
//!   keeps byte-regex semantics exactly classical.
//! * **Per-thread state.** Threads carry `G::State` alongside capture
//!   slots; `Advance` produces the successor state observed by the next
//!   guard on that thread's lineage.
//!
//! Two drivers share the closure logic: [`leftmost`] reproduces the
//! classical leftmost-first search (used by the byte engine), and
//! [`run_every`] seeds an anchor thread at every token and streams every
//! accepting run to a callback (used by temporal pattern search, where
//! each anchor is an independent candidate match).

/// Sentinel for an unwritten capture slot.
pub const UNSET: usize = usize::MAX;

/// Verdict of a [`TokenGuard`] on one token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<S> {
    /// Consume the token and advance past the instruction, carrying the
    /// successor state.
    Advance(S),
    /// Do not consume; keep the thread parked at this instruction for
    /// the next token. (A skip: the token is ignored by this thread.)
    Wait,
    /// Kill the thread: no later token can satisfy the guard either.
    Fail,
}

/// A transition guard over tokens of type `T`.
pub trait TokenGuard<T> {
    /// Per-thread state threaded through a lineage of `Advance`s.
    type State: Clone;
    /// Judge `token` given the thread's current state.
    fn admit(&self, token: &T, state: &Self::State) -> Outcome<Self::State>;
}

/// One NFA instruction, generic over the guard type.
#[derive(Debug, Clone)]
pub enum Inst<G> {
    /// Consume one token admitted by the guard. When `slot` is set, the
    /// consumed token's position is recorded there on `Advance`.
    Token {
        /// The transition guard.
        guard: G,
        /// Capture slot receiving the consumed token's position.
        slot: Option<usize>,
    },
    /// Fork: try the first target first (higher priority).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Record the current position into capture slot `n`.
    Save(usize),
    /// Succeed only at the beginning of the token stream.
    AssertStart,
    /// Succeed only at the end of the token stream.
    AssertEnd,
    /// Accept.
    Match,
}

/// A compiled NFA program over guard type `G`.
#[derive(Debug, Clone)]
pub struct Program<G> {
    /// The instruction sequence.
    pub insts: Vec<Inst<G>>,
    /// Number of capture slots threads carry.
    pub slots: usize,
}

impl<G> Program<G> {
    /// True when every `Jmp`/`Split` target points strictly forward.
    ///
    /// Loop-free programs need no per-pc dedup during epsilon closure —
    /// the precondition for [`run_every`], whose threads carry distinct
    /// states and therefore cannot be deduplicated by pc alone.
    pub fn is_loop_free(&self) -> bool {
        self.insts.iter().enumerate().all(|(i, inst)| match inst {
            Inst::Jmp(t) => *t > i,
            Inst::Split(a, b) => *a > i && *b > i,
            _ => true,
        })
    }
}

/// Stream boundaries for the anchor assertions: `AssertStart` holds at
/// `begin`, `AssertEnd` at `end`.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Position of the start of the stream (`^`).
    pub begin: usize,
    /// Position one past the last token (`$`).
    pub end: usize,
}

/// A live thread: program counter, capture slots, guard state.
struct Thread<S> {
    pc: usize,
    saves: Vec<usize>,
    state: S,
}

/// Reusable buffers for [`run_every`], so repeated automaton runs (one
/// per candidate history) allocate nothing in steady state.
pub struct Scratch<S> {
    clist: Vec<Thread<S>>,
    nlist: Vec<Thread<S>>,
    pool: Vec<Vec<usize>>,
}

impl<S> Scratch<S> {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Scratch { clist: Vec::new(), nlist: Vec::new(), pool: Vec::new() }
    }
}

impl<S> Default for Scratch<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pull a slots buffer from the pool (or mint one) and fill it.
fn saves_from_pool(pool: &mut Vec<Vec<usize>>, init: &[usize]) -> Vec<usize> {
    let mut saves = pool.pop().unwrap_or_default();
    saves.clear();
    saves.extend_from_slice(init);
    saves
}

/// Pull a slots buffer from the pool (or mint one) reset to `UNSET`.
fn blank_saves(pool: &mut Vec<Vec<usize>>, slots: usize) -> Vec<usize> {
    let mut saves = pool.pop().unwrap_or_default();
    saves.clear();
    saves.resize(slots, UNSET);
    saves
}

/// Classical leftmost-first search over a token stream.
///
/// `tokens` yields `(pos, next_pos, token)` triples with strictly
/// increasing positions (for text, byte offset and offset + UTF-8
/// length). When `anchored`, the machine is seeded only at the first
/// position and `Match` accepts only at the end of the stream —
/// full-match mode. Returns the winning thread's capture slots.
///
/// Semantics are identical to the textbook byte VM: earlier seeds win,
/// and within a step higher-priority threads win (a `Match` cuts all
/// lower-priority threads). `Wait` outcomes park a thread for the next
/// token, deduplicated by pc like any other pending thread.
pub fn leftmost<T, G: TokenGuard<T>>(
    prog: &Program<G>,
    mut tokens: impl Iterator<Item = (usize, usize, T)>,
    bounds: Bounds,
    init: &G::State,
    anchored: bool,
) -> Option<Vec<usize>> {
    let mut clist: Vec<Thread<G::State>> = Vec::new();
    let mut nlist: Vec<Thread<G::State>> = Vec::new();
    let mut cseen = vec![false; prog.insts.len()];
    let mut nseen = vec![false; prog.insts.len()];
    let mut pool: Vec<Vec<usize>> = Vec::new();
    let mut best: Option<Vec<usize>> = None;

    let mut next_item = tokens.next();
    let mut first = true;

    loop {
        let at_end = next_item.is_none();
        let pos = match &next_item {
            Some((p, _, _)) => *p,
            None => bounds.end,
        };

        // Seed a new start thread unless a match has been found
        // (leftmost) or we are in anchored mode past the start.
        if best.is_none() && (!anchored || first) {
            let saves = blank_saves(&mut pool, prog.slots);
            let t = Thread { pc: 0, saves, state: init.clone() };
            close(prog, bounds, pos, t, &mut clist, &mut cseen, &mut pool);
        }
        first = false;

        if clist.is_empty() && best.is_some() {
            break;
        }

        let mut i = 0;
        while i < clist.len() {
            let pc = clist[i].pc;
            match &prog.insts[pc] {
                Inst::Token { guard, slot } => {
                    if let Some((tpos, tnext, tok)) = &next_item {
                        match guard.admit(tok, &clist[i].state) {
                            Outcome::Advance(state) => {
                                let mut saves = saves_from_pool(&mut pool, &clist[i].saves);
                                if let Some(k) = slot {
                                    saves[*k] = *tpos;
                                }
                                let t = Thread { pc: pc + 1, saves, state };
                                close(prog, bounds, *tnext, t, &mut nlist, &mut nseen, &mut pool);
                            }
                            Outcome::Wait => {
                                if !nseen[pc] {
                                    nseen[pc] = true;
                                    let saves = saves_from_pool(&mut pool, &clist[i].saves);
                                    nlist.push(Thread { pc, saves, state: clist[i].state.clone() });
                                }
                            }
                            Outcome::Fail => {}
                        }
                    }
                }
                Inst::Match => {
                    let accept = !anchored || at_end;
                    if accept {
                        best = Some(std::mem::take(&mut clist[i].saves));
                        // Cut lower-priority threads: they can only
                        // produce worse matches.
                        clist.truncate(i + 1);
                        break;
                    }
                }
                // Eps instructions were resolved by close().
                // lint:allow(transitive-no-panic-hot-path) close()'s epsilon closure never enqueues eps instructions
                _ => unreachable!("epsilon instruction in run list"),
            }
            i += 1;
        }

        if at_end {
            break;
        }
        std::mem::swap(&mut clist, &mut nlist);
        std::mem::swap(&mut cseen, &mut nseen);
        for t in nlist.drain(..) {
            pool.push(t.saves);
        }
        nseen.iter_mut().for_each(|s| *s = false);
        next_item = tokens.next();
        if clist.is_empty() && best.is_some() {
            break;
        }
    }

    best
}

/// Run the automaton with a fresh anchor thread seeded at *every* token
/// position, streaming each accepting run's capture slots to
/// `on_accept` as it completes. Returns the number of accepts
/// delivered; `on_accept` returning `false` aborts the whole run (the
/// short-circuit used by existence-only matching).
///
/// Unlike [`leftmost`], threads are *not* deduplicated by pc: each
/// anchor carries distinct guard state, so two threads at the same pc
/// are genuinely different candidates. That is only safe on loop-free
/// programs (`debug_assert`ed) — linear step chains, which is what
/// temporal patterns compile to. Accepts fire in completion order, not
/// anchor order; callers wanting anchor order sort on a captured slot.
pub fn run_every<T, G: TokenGuard<T>>(
    prog: &Program<G>,
    mut tokens: impl Iterator<Item = (usize, usize, T)>,
    bounds: Bounds,
    init: &G::State,
    scratch: &mut Scratch<G::State>,
    mut on_accept: impl FnMut(&[usize]) -> bool,
) -> usize {
    debug_assert!(prog.is_loop_free(), "run_every requires a loop-free program");
    let Scratch { clist, nlist, pool } = scratch;
    for t in clist.drain(..) {
        pool.push(t.saves);
    }
    for t in nlist.drain(..) {
        pool.push(t.saves);
    }

    let mut accepts = 0usize;
    let mut stop = false;
    let mut next_item = tokens.next();

    loop {
        let pos = match &next_item {
            Some((p, _, _)) => *p,
            None => bounds.end,
        };

        // Seed an anchor thread at this position.
        let saves = blank_saves(pool, prog.slots);
        let t = Thread { pc: 0, saves, state: init.clone() };
        close_acc(prog, bounds, pos, t, clist, pool, &mut on_accept, &mut stop, &mut accepts);
        if stop {
            break;
        }

        let Some((tpos, tnext, tok)) = &next_item else {
            // End of stream: parked Token threads can never advance.
            break;
        };

        let mut i = 0;
        while i < clist.len() {
            let pc = clist[i].pc;
            // close_acc() resolves eps instructions and consumes Match
            // immediately, so run lists hold only Token threads.
            match &prog.insts[pc] {
                Inst::Token { guard, slot } => match guard.admit(tok, &clist[i].state) {
                    Outcome::Advance(state) => {
                        let mut saves = std::mem::take(&mut clist[i].saves);
                        if let Some(k) = slot {
                            saves[*k] = *tpos;
                        }
                        let t = Thread { pc: pc + 1, saves, state };
                        close_acc(prog, bounds, *tnext, t, nlist, pool, &mut on_accept, &mut stop, &mut accepts);
                        if stop {
                            break;
                        }
                    }
                    Outcome::Wait => {
                        let saves = std::mem::take(&mut clist[i].saves);
                        nlist.push(Thread { pc, saves, state: clist[i].state.clone() });
                    }
                    Outcome::Fail => {
                        pool.push(std::mem::take(&mut clist[i].saves));
                    }
                },
                // lint:allow(transitive-no-panic-hot-path) close_acc never enqueues eps or Match instructions
                _ => unreachable!("non-token instruction in run list"),
            }
            i += 1;
        }
        if stop {
            break;
        }

        std::mem::swap(clist, nlist);
        for t in nlist.drain(..) {
            pool.push(t.saves);
        }
        next_item = tokens.next();
    }

    for t in clist.drain(..) {
        pool.push(t.saves);
    }
    for t in nlist.drain(..) {
        pool.push(t.saves);
    }
    accepts
}

/// Add a thread, transitively resolving epsilon instructions
/// (`Split`/`Jmp`/`Save`/asserts). `seen` deduplicates by pc — the
/// first (highest-priority) arrival wins, which is what gives
/// greedy/lazy splits their meaning.
fn close<G, S: Clone>(
    prog: &Program<G>,
    bounds: Bounds,
    pos: usize,
    t: Thread<S>,
    list: &mut Vec<Thread<S>>,
    seen: &mut [bool],
    pool: &mut Vec<Vec<usize>>,
) {
    if seen[t.pc] {
        pool.push(t.saves);
        return;
    }
    seen[t.pc] = true;
    match &prog.insts[t.pc] {
        Inst::Jmp(to) => close(prog, bounds, pos, Thread { pc: *to, ..t }, list, seen, pool),
        Inst::Split(a, b) => {
            let (a, b) = (*a, *b);
            let first = Thread { pc: a, saves: saves_from_pool(pool, &t.saves), state: t.state.clone() };
            close(prog, bounds, pos, first, list, seen, pool);
            close(prog, bounds, pos, Thread { pc: b, ..t }, list, seen, pool);
        }
        Inst::Save(slot) => {
            let mut saves = t.saves;
            saves[*slot] = pos;
            close(prog, bounds, pos, Thread { pc: t.pc + 1, saves, state: t.state }, list, seen, pool);
        }
        Inst::AssertStart => {
            if pos == bounds.begin {
                close(prog, bounds, pos, Thread { pc: t.pc + 1, ..t }, list, seen, pool);
            } else {
                pool.push(t.saves);
            }
        }
        Inst::AssertEnd => {
            if pos == bounds.end {
                close(prog, bounds, pos, Thread { pc: t.pc + 1, ..t }, list, seen, pool);
            } else {
                pool.push(t.saves);
            }
        }
        Inst::Token { .. } | Inst::Match => list.push(t),
    }
}

/// Epsilon closure for [`run_every`]: no pc dedup (threads carry
/// distinct states), and `Match` is consumed on the spot by handing the
/// capture slots to `on_accept` instead of parking the thread.
#[allow(clippy::too_many_arguments)]
fn close_acc<G, S: Clone>(
    prog: &Program<G>,
    bounds: Bounds,
    pos: usize,
    t: Thread<S>,
    list: &mut Vec<Thread<S>>,
    pool: &mut Vec<Vec<usize>>,
    on_accept: &mut impl FnMut(&[usize]) -> bool,
    stop: &mut bool,
    accepts: &mut usize,
) {
    if *stop {
        pool.push(t.saves);
        return;
    }
    match &prog.insts[t.pc] {
        Inst::Jmp(to) => {
            close_acc(prog, bounds, pos, Thread { pc: *to, ..t }, list, pool, on_accept, stop, accepts)
        }
        Inst::Split(a, b) => {
            let (a, b) = (*a, *b);
            let first = Thread { pc: a, saves: saves_from_pool(pool, &t.saves), state: t.state.clone() };
            close_acc(prog, bounds, pos, first, list, pool, on_accept, stop, accepts);
            close_acc(prog, bounds, pos, Thread { pc: b, ..t }, list, pool, on_accept, stop, accepts);
        }
        Inst::Save(slot) => {
            let mut saves = t.saves;
            saves[*slot] = pos;
            let t = Thread { pc: t.pc + 1, saves, state: t.state };
            close_acc(prog, bounds, pos, t, list, pool, on_accept, stop, accepts);
        }
        Inst::AssertStart => {
            if pos == bounds.begin {
                let t = Thread { pc: t.pc + 1, ..t };
                close_acc(prog, bounds, pos, t, list, pool, on_accept, stop, accepts);
            } else {
                pool.push(t.saves);
            }
        }
        Inst::AssertEnd => {
            if pos == bounds.end {
                let t = Thread { pc: t.pc + 1, ..t };
                close_acc(prog, bounds, pos, t, list, pool, on_accept, stop, accepts);
            } else {
                pool.push(t.saves);
            }
        }
        Inst::Match => {
            *accepts += 1;
            if !on_accept(&t.saves) {
                *stop = true;
            }
            pool.push(t.saves);
        }
        Inst::Token { .. } => list.push(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A guard over `u32` tokens: admit values in `lo..=hi`; values
    /// above `fail_above` kill the thread, anything else waits — except
    /// `strict` guards, which fail instead of waiting. Anchor (pc 0)
    /// guards must be strict so each [`run_every`] seed corresponds to
    /// exactly one candidate first token (a waiting seed would shadow
    /// its right neighbor and double-count accepts). State counts
    /// consumed tokens.
    struct RangeGuard {
        lo: u32,
        hi: u32,
        fail_above: u32,
        strict: bool,
    }

    impl RangeGuard {
        fn anchor(lo: u32, hi: u32) -> Self {
            RangeGuard { lo, hi, fail_above: u32::MAX, strict: true }
        }

        fn step(lo: u32, hi: u32, fail_above: u32) -> Self {
            RangeGuard { lo, hi, fail_above, strict: false }
        }
    }

    impl TokenGuard<u32> for RangeGuard {
        type State = u32;
        fn admit(&self, token: &u32, state: &u32) -> Outcome<u32> {
            if (self.lo..=self.hi).contains(token) {
                Outcome::Advance(state + 1)
            } else if self.strict || *token > self.fail_above {
                Outcome::Fail
            } else {
                Outcome::Wait
            }
        }
    }

    fn chain(guards: Vec<RangeGuard>) -> Program<RangeGuard> {
        let mut insts: Vec<Inst<RangeGuard>> = Vec::new();
        for (i, guard) in guards.into_iter().enumerate() {
            insts.push(Inst::Token { guard, slot: Some(i) });
        }
        let slots = insts.len();
        insts.push(Inst::Match);
        Program { insts, slots }
    }

    fn stream(tokens: &[u32]) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        tokens.iter().enumerate().map(|(i, &t)| (i, i + 1, t))
    }

    #[test]
    fn wait_skips_interleaved_tokens() {
        // 5 then 7, skipping anything else.
        let prog = chain(vec![RangeGuard::anchor(5, 5), RangeGuard::step(7, 7, 100)]);
        let tokens = [1, 5, 2, 3, 7, 9];
        let bounds = Bounds { begin: 0, end: tokens.len() };
        let mut scratch = Scratch::new();
        let mut hits = Vec::new();
        let n = run_every(&prog, stream(&tokens), bounds, &0, &mut scratch, |saves| {
            hits.push(saves.to_vec());
            true
        });
        assert_eq!(n, 1);
        assert_eq!(hits, vec![vec![1, 4]]);
    }

    #[test]
    fn fail_prunes_threads_early() {
        // A token above fail_above kills the parked thread before a
        // later admissible one appears.
        let prog = chain(vec![RangeGuard::anchor(5, 5), RangeGuard::step(7, 7, 50)]);
        let tokens = [5, 60, 7];
        let bounds = Bounds { begin: 0, end: tokens.len() };
        let mut scratch = Scratch::new();
        let n = run_every(&prog, stream(&tokens), bounds, &0, &mut scratch, |_| true);
        assert_eq!(n, 0);
    }

    #[test]
    fn every_anchor_is_tried() {
        // Two independent anchors both complete.
        let prog = chain(vec![RangeGuard::anchor(5, 9)]);
        let tokens = [5, 1, 9];
        let bounds = Bounds { begin: 0, end: tokens.len() };
        let mut scratch = Scratch::new();
        let mut hits = Vec::new();
        run_every(&prog, stream(&tokens), bounds, &0, &mut scratch, |saves| {
            hits.push(saves[0]);
            true
        });
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn on_accept_false_short_circuits() {
        let prog = chain(vec![RangeGuard::anchor(0, 100)]);
        let tokens = [1, 2, 3, 4];
        let bounds = Bounds { begin: 0, end: tokens.len() };
        let mut scratch = Scratch::new();
        let mut calls = 0;
        let n = run_every(&prog, stream(&tokens), bounds, &0, &mut scratch, |_| {
            calls += 1;
            false
        });
        assert_eq!(n, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn loop_freedom_is_detected() {
        let forward: Program<RangeGuard> =
            Program { insts: vec![Inst::Split(1, 2), Inst::Match, Inst::Match], slots: 0 };
        assert!(forward.is_loop_free());
        let backward: Program<RangeGuard> =
            Program { insts: vec![Inst::Match, Inst::Jmp(0)], slots: 0 };
        assert!(!backward.is_loop_free());
    }

    #[test]
    fn scratch_reuse_is_clean_across_runs() {
        let prog = chain(vec![RangeGuard::anchor(5, 5), RangeGuard::step(7, 7, 100)]);
        let mut scratch = Scratch::new();
        for _ in 0..3 {
            let tokens = [5, 7];
            let bounds = Bounds { begin: 0, end: tokens.len() };
            let n = run_every(&prog, stream(&tokens), bounds, &0, &mut scratch, |_| true);
            assert_eq!(n, 1);
            let empty: [u32; 0] = [];
            let bounds = Bounds { begin: 0, end: 0 };
            let n = run_every(&prog, stream(&empty), bounds, &0, &mut scratch, |_| true);
            assert_eq!(n, 0);
        }
    }
}
