//! AST → NFA program compilation (Thompson construction).
//!
//! Emits [`engine`](crate::engine) instructions over the `char` token
//! alphabet: the guard type is [`CharPred`], which never waits, so the
//! generic VM behaves exactly like the classic byte Pike VM.

use crate::ast::{Ast, ClassItem};
use crate::engine::{Inst, Outcome, Program, TokenGuard};
use std::sync::Arc;

/// A character predicate attached to a consuming instruction.
#[derive(Debug, Clone)]
pub(crate) enum CharPred {
    /// Exact character (pre-folded when case-insensitive).
    Literal { ch: char, folded: bool },
    /// `.` — anything but `\n`.
    Dot,
    /// Character class.
    Class { items: Arc<[ClassItem]>, negated: bool, folded: bool },
}

impl CharPred {
    pub(crate) fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Literal { ch, folded: false } => c == *ch,
            CharPred::Literal { ch, folded: true } => c.to_ascii_lowercase() == *ch,
            CharPred::Dot => c != '\n',
            CharPred::Class { items, negated, folded } => {
                let mut hit = items.iter().any(|it| it.contains(c));
                if *folded && !hit {
                    // Try the opposite ASCII case as well.
                    let alt = if c.is_ascii_uppercase() {
                        c.to_ascii_lowercase()
                    } else {
                        c.to_ascii_uppercase()
                    };
                    if alt != c {
                        hit = items.iter().any(|it| it.contains(alt));
                    }
                }
                hit != *negated
            }
        }
    }
}

/// A character guard never waits: it either consumes or kills the
/// thread, which is what makes the generic VM's behavior on text
/// coincide with the classic one.
impl TokenGuard<char> for CharPred {
    type State = ();
    fn admit(&self, token: &char, _state: &()) -> Outcome<()> {
        if self.matches(*token) {
            Outcome::Advance(())
        } else {
            Outcome::Fail
        }
    }
}

/// Compile `ast` to a program. Slot 0/1 bracket the whole match.
pub(crate) fn compile(ast: &Ast, case_insensitive: bool) -> Program<CharPred> {
    let mut c = Compiler { insts: Vec::new(), fold: case_insensitive };
    c.push(Inst::Save(0));
    c.emit(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program { insts: c.insts, slots: 2 * (ast.count_groups() + 1) }
}

struct Compiler {
    insts: Vec<Inst<CharPred>>,
    fold: bool,
}

impl Compiler {
    fn push(&mut self, inst: Inst<CharPred>) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch_split_second(&mut self, at: usize, to: usize) {
        if let Inst::Split(_, b) = &mut self.insts[at] {
            *b = to;
        }
    }

    fn patch_split_first(&mut self, at: usize, to: usize) {
        if let Inst::Split(a, _) = &mut self.insts[at] {
            *a = to;
        }
    }

    fn patch_jmp(&mut self, at: usize, to: usize) {
        if let Inst::Jmp(t) = &mut self.insts[at] {
            *t = to;
        }
    }

    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(ch) => {
                let (ch, folded) = if self.fold && ch.is_ascii_alphabetic() {
                    (ch.to_ascii_lowercase(), true)
                } else {
                    (*ch, false)
                };
                self.push(Inst::Token {
                    guard: CharPred::Literal { ch, folded },
                    slot: None,
                });
            }
            Ast::Dot => {
                self.push(Inst::Token { guard: CharPred::Dot, slot: None });
            }
            Ast::Class { items, negated } => {
                self.push(Inst::Token {
                    guard: CharPred::Class {
                        items: items.clone().into(),
                        negated: *negated,
                        folded: self.fold,
                    },
                    slot: None,
                });
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit(p);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { inner, min, max, greedy } => {
                self.emit_repeat(inner, *min, *max, *greedy)
            }
            Ast::Group { index, inner } => {
                self.push(Inst::Save(2 * (*index as usize)));
                self.emit(inner);
                self.push(Inst::Save(2 * (*index as usize) + 1));
            }
            Ast::NonCapturing(inner) => self.emit(inner),
            Ast::AnchorStart => {
                self.push(Inst::AssertStart);
            }
            Ast::AnchorEnd => {
                self.push(Inst::AssertEnd);
            }
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // Chain of Splits: each branch ends with a Jmp to the common exit.
        let mut jmp_holes = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split = self.push(Inst::Split(0, 0));
                let first = self.here();
                self.patch_split_first(split, first);
                self.emit(branch);
                jmp_holes.push(self.push(Inst::Jmp(0)));
                let next = self.here();
                self.patch_split_second(split, next);
            } else {
                self.emit(branch);
            }
        }
        let exit = self.here();
        for hole in jmp_holes {
            self.patch_jmp(hole, exit);
        }
    }

    fn emit_repeat(&mut self, inner: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix: `min` expanded copies.
        for _ in 0..min {
            self.emit(inner);
        }
        match max {
            None => {
                // Kleene tail: L: Split(body, out); body; Jmp(L)
                let loop_start = self.push(Inst::Split(0, 0));
                let body = self.here();
                self.emit(inner);
                self.push(Inst::Jmp(loop_start));
                let out = self.here();
                if greedy {
                    self.patch_split_first(loop_start, body);
                    self.patch_split_second(loop_start, out);
                } else {
                    self.patch_split_first(loop_start, out);
                    self.patch_split_second(loop_start, body);
                }
            }
            Some(max) => {
                // (max - min) nested optionals: each may bail to the exit.
                let mut holes = Vec::new();
                for _ in min..max {
                    let split = self.push(Inst::Split(0, 0));
                    let body = self.here();
                    if greedy {
                        self.patch_split_first(split, body);
                    } else {
                        self.patch_split_second(split, body);
                    }
                    holes.push(split);
                    self.emit(inner);
                }
                let out = self.here();
                for hole in holes {
                    if greedy {
                        self.patch_split_second(hole, out);
                    } else {
                        self.patch_split_first(hole, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program<CharPred> {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        // Save(0), Char(a), Char(b), Save(1), Match
        assert_eq!(p.insts.len(), 5);
        assert_eq!(p.slots, 2);
        assert!(matches!(p.insts[4], Inst::Match));
    }

    #[test]
    fn group_allocates_slots() {
        let p = prog("(a)(b)");
        assert_eq!(p.slots, 6);
    }

    #[test]
    fn counted_repeat_expands() {
        let three = prog("a{3}").insts.len();
        let one = prog("a").insts.len();
        assert_eq!(three, one + 2);
    }

    #[test]
    fn predicates() {
        assert!(CharPred::Dot.matches('x'));
        assert!(!CharPred::Dot.matches('\n'));
        let folded = CharPred::Literal { ch: 'k', folded: true };
        assert!(folded.matches('K'));
        assert!(folded.matches('k'));
        let class = CharPred::Class {
            items: vec![ClassItem::Range('a', 'f')].into(),
            negated: false,
            folded: true,
        };
        assert!(class.matches('C'));
        assert!(!class.matches('z'));
        let neg = CharPred::Class {
            items: vec![ClassItem::Char('x')].into(),
            negated: true,
            folded: false,
        };
        assert!(neg.matches('y'));
        assert!(!neg.matches('x'));
    }
}
