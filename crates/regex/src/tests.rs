//! Behavioural tests for the public `Regex` API.

use crate::Regex;

fn re(p: &str) -> Regex {
    Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?} failed: {e}"))
}

fn find_str<'h>(p: &str, h: &'h str) -> Option<&'h str> {
    re(p).first(h)
}

#[test]
fn literal_matching() {
    assert!(re("T90").is_match("xxT90yy"));
    assert!(!re("T90").is_match("T9"));
    assert_eq!(find_str("T90", "K74 T90 R95"), Some("T90"));
}

#[test]
fn the_papers_code_filter() {
    // §IV.A: eye (F) or ear (H) diagnoses.
    let filter = re("F.*|H.*");
    for code in ["F83", "F99", "H71", "H1"] {
        assert!(filter.is_full_match(code), "{code} should match");
    }
    for code in ["T90", "K74", "XF1", "AH2"] {
        assert!(!filter.is_full_match(code), "{code} should not match");
    }
}

#[test]
fn full_match_vs_search() {
    let r = re("K7[0-9]");
    assert!(r.is_match("note: K74 suspected"));
    assert!(!r.is_full_match("note: K74 suspected"));
    assert!(r.is_full_match("K74"));
}

#[test]
fn dot_does_not_cross_newlines() {
    assert!(re("a.b").is_match("axb"));
    assert!(!re("a.b").is_match("a\nb"));
}

#[test]
fn star_is_greedy() {
    let m = re("a*").find("aaab").unwrap();
    assert_eq!((m.start, m.end), (0, 3));
}

#[test]
fn lazy_star_matches_empty() {
    let m = re("a*?").find("aaa").unwrap();
    assert_eq!((m.start, m.end), (0, 0));
}

#[test]
fn lazy_plus_takes_minimum() {
    let m = re("a+?").find("aaa").unwrap();
    assert_eq!((m.start, m.end), (0, 1));
}

#[test]
fn alternation_prefers_left_branch() {
    let m = re("ab|a").find("ab").unwrap();
    assert_eq!((m.start, m.end), (0, 2));
    let m = re("a|ab").find("ab").unwrap();
    assert_eq!((m.start, m.end), (0, 1));
}

#[test]
fn leftmost_match_wins() {
    let m = re("b+").find("abbabbb").unwrap();
    assert_eq!((m.start, m.end), (1, 3));
}

#[test]
fn counted_repetition() {
    assert!(re("[0-9]{4}").is_full_match("2016"));
    assert!(!re("[0-9]{4}").is_full_match("201"));
    assert!(!re("[0-9]{4}").is_full_match("20166"));
    assert!(re("a{2,3}").is_full_match("aa"));
    assert!(re("a{2,3}").is_full_match("aaa"));
    assert!(!re("a{2,3}").is_full_match("a"));
    assert!(!re("a{2,3}").is_full_match("aaaa"));
    assert!(re("a{2,}").is_full_match("aaaaa"));
}

#[test]
fn anchors() {
    assert!(re("^K74").is_match("K74 xx"));
    assert!(!re("^K74").is_match("x K74"));
    assert!(re("74$").is_match("K74"));
    assert!(!re("74$").is_match("K74x"));
    assert!(re("^$").is_match(""));
    assert!(!re("^$").is_match("a"));
}

#[test]
fn classes_and_negation() {
    assert!(re("[A-Z][0-9][0-9]").is_full_match("T90"));
    assert!(!re("[A-Z][0-9][0-9]").is_full_match("t90"));
    assert!(re("[^0-9]+").is_full_match("abc"));
    assert!(!re("[^0-9]+").is_full_match("ab3"));
}

#[test]
fn escape_classes() {
    assert!(re(r"\d+").is_full_match("12345"));
    assert!(re(r"\w+").is_full_match("Ab_9"));
    assert!(re(r"\s").is_match("a b"));
    assert!(re(r"\D+").is_full_match("abc"));
    assert!(!re(r"\D+").is_match("123"));
}

#[test]
fn captures() {
    let r = re(r"([A-Z])(\d+)");
    let m = r.captures_test("T90");
    assert_eq!(m.group(0, "T90"), Some("T90"));
    assert_eq!(m.group(1, "T90"), Some("T"));
    assert_eq!(m.group(2, "T90"), Some("90"));
}

trait CapturesTest {
    fn captures_test(&self, h: &str) -> crate::Match;
}

impl CapturesTest for Regex {
    fn captures_test(&self, h: &str) -> crate::Match {
        self.find(h).expect("expected a match")
    }
}

#[test]
fn optional_group_is_none() {
    let r = re(r"a(b)?c");
    let m = r.find("ac").unwrap();
    assert_eq!(m.groups[1], None);
    let m = r.find("abc").unwrap();
    assert_eq!(m.group(1, "abc"), Some("b"));
}

#[test]
fn find_iter_non_overlapping() {
    let r = re(r"[A-Z]\d\d");
    let hits: Vec<_> = r.find_iter("K74 T90 R95").map(|m| (m.start, m.end)).collect();
    assert_eq!(hits, vec![(0, 3), (4, 7), (8, 11)]);
}

#[test]
fn find_iter_with_empty_matches_terminates() {
    let r = re("x*");
    let n = r.find_iter("abc").count();
    assert_eq!(n, 4); // empty match at each boundary
}

#[test]
fn case_insensitive_option() {
    let r = Regex::with_options("icpc", true).unwrap();
    assert!(r.is_match("ICPC-2 codes"));
    assert!(r.is_match("icpc"));
    assert!(r.is_match("IcPc"));
    let r = Regex::with_options("[a-f]+", true).unwrap();
    assert!(r.is_full_match("FACE"));
}

#[test]
fn unicode_haystacks() {
    // Norwegian text appears in free-text extracts (e.g. "tromsø").
    assert!(re("troms.").is_match("tromsø"));
    let m = re("ø").find("tromsø").unwrap();
    assert_eq!(m.start, 5);
    assert_eq!(m.end, 7); // ø is two bytes
}

#[test]
fn pathological_pattern_is_fast() {
    // (a|a)* over "aaaa…b" explodes a backtracker; the Pike VM is linear.
    let r = re("(?:a|a)*b");
    let hay = "a".repeat(2_000);
    assert!(!r.is_match(&hay));
    let hay = format!("{}b", "a".repeat(2_000));
    assert!(r.is_match(&hay));
}

#[test]
fn group_count_reporting() {
    assert_eq!(re("(a)(b(c))").group_count(), 3);
    assert_eq!(re("(?:a)").group_count(), 0);
    assert_eq!(re("abc").group_count(), 0);
}

#[test]
fn pattern_accessor() {
    assert_eq!(re("F.*|H.*").pattern(), "F.*|H.*");
}

#[test]
fn empty_pattern_matches_empty() {
    assert!(re("").is_match(""));
    assert!(re("").is_match("abc"));
    assert!(re("").is_full_match(""));
    assert!(!re("").is_full_match("abc"));
}

#[test]
fn find_at_offsets() {
    let r = re("a");
    assert_eq!(r.find_at("aba", 1).map(|m| m.start), Some(2));
    assert_eq!(r.find_at("aba", 3), None);
    assert_eq!(r.find_at("aba", 4), None); // past the end
}

#[test]
fn repeated_group_keeps_last_capture() {
    let r = re(r"(?:(\d)x)+");
    let m = r.find("1x2x3x").unwrap();
    assert_eq!(m.group(1, "1x2x3x"), Some("3"));
}

#[test]
fn icpc_chapter_regexes() {
    // The 17 ICPC-2 chapter letters; a filter per chapter must partition.
    let chapters = "ABDFHKLNPRSTUWXYZ";
    for ch in chapters.chars() {
        let r = re(&format!("{ch}.*"));
        assert!(r.is_full_match(&format!("{ch}01")));
        for other in chapters.chars().filter(|&o| o != ch) {
            assert!(!r.is_full_match(&format!("{other}01")));
        }
    }
}
