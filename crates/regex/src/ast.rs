//! Abstract syntax for parsed patterns.

/// One item inside a character class: a single char or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
}

impl ClassItem {
    /// True if `c` is covered by this item.
    pub fn contains(self, c: char) -> bool {
        match self {
            ClassItem::Char(x) => c == x,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
        }
    }
}

/// Parsed pattern syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    Dot,
    /// A character class; `negated` flips membership.
    Class {
        /// Items of the class body.
        items: Vec<ClassItem>,
        /// True for `[^…]`.
        negated: bool,
    },
    /// Concatenation, in order.
    Concat(Vec<Ast>),
    /// Alternation `a|b|…`, preferring earlier branches.
    Alternate(Vec<Ast>),
    /// Repetition of the inner pattern.
    Repeat {
        /// The repeated sub-pattern.
        inner: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
        /// Greedy (`a*`) vs lazy (`a*?`).
        greedy: bool,
    },
    /// A capturing group `(…)` with 1-based index.
    Group {
        /// 1-based capture index.
        index: u32,
        /// The grouped sub-pattern.
        inner: Box<Ast>,
    },
    /// A non-capturing group `(?:…)`.
    NonCapturing(Box<Ast>),
    /// `^` — start of input.
    AnchorStart,
    /// `$` — end of input.
    AnchorEnd,
}

impl Ast {
    /// Number of capturing groups in the tree.
    pub fn count_groups(&self) -> usize {
        match self {
            Ast::Group { index: _, inner } => 1 + inner.count_groups(),
            Ast::NonCapturing(inner) => inner.count_groups(),
            Ast::Repeat { inner, .. } => inner.count_groups(),
            Ast::Concat(parts) | Ast::Alternate(parts) => {
                parts.iter().map(Ast::count_groups).sum()
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_contains() {
        assert!(ClassItem::Char('a').contains('a'));
        assert!(!ClassItem::Char('a').contains('b'));
        assert!(ClassItem::Range('a', 'f').contains('c'));
        assert!(ClassItem::Range('a', 'f').contains('a'));
        assert!(ClassItem::Range('a', 'f').contains('f'));
        assert!(!ClassItem::Range('a', 'f').contains('g'));
    }

    #[test]
    fn group_counting() {
        let ast = Ast::Concat(vec![
            Ast::Group { index: 1, inner: Box::new(Ast::Literal('a')) },
            Ast::NonCapturing(Box::new(Ast::Group {
                index: 2,
                inner: Box::new(Ast::Dot),
            })),
        ]);
        assert_eq!(ast.count_groups(), 2);
    }
}
