//! NSEPter's merging algorithms — **including their documented flaws**.
//!
//! The serial regex merge is deliberately order-dependent and positional:
//! that is the behaviour the paper's E9 ablation measures against the
//! alignment-based consensus.

use crate::build::{DiGraph, NodeId};
use pastas_regex::Regex;
use std::collections::HashMap;

/// The serial merge of §II.A.1: collect, per history, the nodes whose code
/// matches `re` in occurrence order; then merge the first occurrence across
/// all histories into one node, the second across all histories into
/// another, and so on. Returns the merged node ids, one per occurrence
/// rank.
///
/// Faithfully fragile: if one history has an extra matching occurrence
/// early on, every later rank shifts — "the merging algorithm was not very
/// noise-resilient".
pub fn merge_on_regex(g: &mut DiGraph, re: &Regex) -> Vec<NodeId> {
    // Matching node ids per history, in position order.
    let mut per_history: HashMap<usize, Vec<NodeId>> = HashMap::new();
    let mut matching: Vec<(usize, usize, NodeId)> = Vec::new(); // (history, pos, node)
    for (id, node) in g.nodes().iter().enumerate() {
        if node.dead || !re.is_full_match(&node.code.value) {
            continue;
        }
        // Unmerged nodes have exactly one member.
        let &(hi, pos) = node.members.first().expect("live node has members");
        matching.push((hi, pos, id));
    }
    matching.sort();
    for (hi, _, id) in matching {
        per_history.entry(hi).or_default().push(id);
    }

    let max_rank = per_history.values().map(Vec::len).max().unwrap_or(0);
    let mut merged = Vec::new();
    for rank in 0..max_rank {
        let nodes: Vec<NodeId> = {
            let mut v: Vec<NodeId> = per_history
                .values()
                .filter_map(|list| list.get(rank).copied())
                .collect();
            v.sort_unstable();
            v
        };
        let Some((&target, victims)) = nodes.split_first() else { continue };
        let mut gg_target = target;
        // If the chosen target was merged away at an earlier rank (possible
        // when a history repeats codes), skip dead nodes.
        if g.nodes()[gg_target].dead {
            match victims.iter().find(|&&v| !g.nodes()[v].dead) {
                Some(&alive) => gg_target = alive,
                None => continue,
            }
        }
        g.merge_into(gg_target, victims);
        merged.push(gg_target);
    }
    merged
}

/// Recursive neighbour merging: from each node in `seeds`, group its
/// predecessors by code and merge equal-coded ones; likewise successors;
/// recurse on the merged neighbours up to `depth`.
pub fn merge_neighbors(g: &mut DiGraph, seeds: &[NodeId], depth: u32) {
    if depth == 0 {
        return;
    }
    let mut next_seeds = Vec::new();
    for &seed in seeds {
        if g.nodes()[seed].dead {
            continue;
        }
        for neighbours in [g.predecessors(seed), g.successors(seed)] {
            let mut by_code: HashMap<String, Vec<NodeId>> = HashMap::new();
            for n in neighbours {
                if !g.nodes()[n].dead {
                    by_code.entry(g.nodes()[n].code.to_string()).or_default().push(n);
                }
            }
            for (_, mut group) in by_code {
                group.sort_unstable();
                group.dedup();
                if group.len() > 1 {
                    let (&target, victims) = group.split_first().expect("non-empty");
                    g.merge_into(target, victims);
                    next_seeds.push(target);
                } else if let Some(&only) = group.first() {
                    next_seeds.push(only);
                }
            }
        }
    }
    next_seeds.sort_unstable();
    next_seeds.dedup();
    if !next_seeds.is_empty() {
        merge_neighbors(g, &next_seeds, depth - 1);
    }
}

/// The NSEPter "recovered pathway" used by E9: after a serial merge on
/// `anchor_re` and neighbour merging, read off the chain of heaviest edges
/// through the first merged node, forwards and backwards, as the merged
/// pathway estimate.
pub fn serial_pathway(g: &DiGraph, anchor: NodeId) -> Vec<String> {
    let mut path = vec![g.nodes()[anchor].code.value.clone()];
    // Walk backwards by heaviest incoming edge.
    let mut cur = anchor;
    let mut guard = 0;
    while guard < 100 {
        guard += 1;
        let best = g
            .edges()
            .filter(|&(_, b, _)| b == cur)
            .max_by_key(|&(_, _, w)| w);
        match best {
            Some((a, _, w)) if w * 2 >= g.history_count().max(1) => {
                path.insert(0, g.nodes()[a].code.value.clone());
                cur = a;
            }
            _ => break,
        }
    }
    // Forwards by heaviest outgoing edge.
    cur = anchor;
    guard = 0;
    while guard < 100 {
        guard += 1;
        let best = g
            .edges()
            .filter(|&(a, _, _)| a == cur)
            .max_by_key(|&(_, _, w)| w);
        match best {
            Some((_, b, w)) if w * 2 >= g.history_count().max(1) => {
                path.push(g.nodes()[b].code.value.clone());
                cur = b;
            }
            _ => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn figure_2a_merge_around_first_diabetes_code() {
        // "a small graph, merged around the first incidence of diabetes".
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["R05", "T90", "K74"]),
            seq(&["T90", "K77"]),
        ];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re("T90"));
        assert_eq!(merged.len(), 1, "each history has one T90");
        let t90 = merged[0];
        assert_eq!(g.nodes()[t90].members.len(), 3, "all three histories merged");
        // Thicker line after the merge: T90 -> K74 carried by two histories.
        merge_neighbors(&mut g, &merged, 1);
        assert!(
            g.edges().any(|(a, _, w)| a == t90 && w == 2),
            "edge weight should scale with history count"
        );
    }

    #[test]
    fn serial_merge_ranks_occurrences() {
        // Two T90 in each history: two merged nodes.
        let seqs = vec![seq(&["T90", "A01", "T90"]), seq(&["T90", "T90"])];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re("T90"));
        assert_eq!(merged.len(), 2);
        assert_eq!(g.nodes()[merged[0]].members.len(), 2);
        assert_eq!(g.nodes()[merged[1]].members.len(), 2);
    }

    #[test]
    fn serial_merge_is_noise_fragile_by_design() {
        // History 1 has a spurious early T90. NSEPter pairs rank-0 of both
        // histories — mixing the noise occurrence with the true one, and
        // rank-1 is left partnerless. This is the documented weakness.
        let seqs = vec![
            seq(&["T90", "A01", "T90", "K74"]), // noise T90 first
            seq(&["A01", "T90", "K74"]),
        ];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re("T90"));
        assert_eq!(merged.len(), 2);
        // Rank 0 merged the noise node of h0 with the true node of h1.
        let rank0 = &g.nodes()[merged[0]];
        let positions: Vec<usize> = rank0.members.iter().map(|&(_, p)| p).collect();
        assert!(positions.contains(&0), "noise occurrence absorbed into rank 0");
    }

    #[test]
    fn neighbour_merge_groups_equal_codes() {
        let seqs = vec![seq(&["A01", "T90"]), seq(&["A01", "T90"]), seq(&["R05", "T90"])];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re("T90"));
        merge_neighbors(&mut g, &merged, 2);
        // The two A01 predecessors merged; R05 stays separate.
        assert_eq!(g.node_count(), 3, "T90 + A01 + R05");
        let a01_edge = g
            .edges()
            .find(|&(a, _, _)| g.nodes()[a].code.value == "A01")
            .expect("A01 edge");
        assert_eq!(a01_edge.2, 2);
    }

    #[test]
    fn no_matches_changes_nothing() {
        let seqs = vec![seq(&["A01", "R05"])];
        let mut g = DiGraph::from_sequences(&seqs);
        let before = g.node_count();
        let merged = merge_on_regex(&mut g, &re("Z99"));
        assert!(merged.is_empty());
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn serial_pathway_reads_the_common_chain() {
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "T90", "K74"]),
        ];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re("T90"));
        merge_neighbors(&mut g, &merged, 3);
        let path = serial_pathway(&g, merged[0]);
        assert_eq!(path, vec!["A01", "T90", "K74"]);
    }
}
