//! Crowding metrics — quantifying Fig. 2(b)'s "virtually unreadable".
//!
//! E3 computes these for NSEPter graphs of growing cohorts and compares
//! them with the timeline design's fixed per-row footprint. The metrics
//! follow the graph-readability literature: node/edge counts, edge
//! crossings in the layered layout, and edge density (ink).

use crate::build::DiGraph;
use crate::layout::GraphLayout;

/// The crowding measurements of one laid-out graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphMetrics {
    /// Live nodes.
    pub nodes: usize,
    /// Edges.
    pub edges: usize,
    /// Edge crossings in the layered layout (counted between consecutive
    /// layers, the standard Sugiyama objective).
    pub crossings: usize,
    /// Total edge weight ("ink": thick edges deposit more ink).
    pub ink: usize,
    /// Edges per node — above ~2 the hairball threshold is near.
    pub density: f64,
    /// Nodes in the fullest layer (vertical crowding).
    pub max_layer_size: usize,
}

/// Compute crowding metrics for a graph under a layout.
pub fn crowding(g: &DiGraph, layout: &GraphLayout) -> GraphMetrics {
    let nodes = g.node_count();
    let edges = g.edge_count();
    let ink: usize = g.edges().map(|(_, _, w)| w).sum();

    // Crossings: for each pair of edges spanning the same consecutive
    // layer pair, they cross iff their endpoint orders flip.
    let mut spans: Vec<(usize, f64, f64)> = Vec::new(); // (layer of source, y_from, y_to)
    for (a, b, _) in g.edges() {
        let (Some(&(xa, ya)), Some(&(xb, yb))) = (layout.positions.get(&a), layout.positions.get(&b))
        else {
            continue;
        };
        // Only count simple spans between adjacent layers; long edges are
        // approximated by their endpoints (consistent across designs).
        if (xb - xa).abs() >= 0.5 {
            spans.push((xa as usize, ya, yb));
        }
    }
    let mut crossings = 0usize;
    for i in 0..spans.len() {
        for j in (i + 1)..spans.len() {
            let (la, a0, a1) = spans[i];
            let (lb, b0, b1) = spans[j];
            if la != lb {
                continue;
            }
            if (a0 - b0) * (a1 - b1) < 0.0 {
                crossings += 1;
            }
        }
    }

    GraphMetrics {
        nodes,
        edges,
        crossings,
        ink,
        density: if nodes == 0 { 0.0 } else { edges as f64 / nodes as f64 },
        max_layer_size: layout.max_layer_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::layout;
    use crate::merge::{merge_neighbors, merge_on_regex};
    use pastas_codes::Code;
    use pastas_regex::Regex;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn chain_has_no_crossings() {
        let g = DiGraph::from_sequences(&[seq(&["A01", "T90", "K74"])]);
        let m = crowding(&g, &layout(&g));
        assert_eq!(m.nodes, 3);
        assert_eq!(m.edges, 2);
        assert_eq!(m.crossings, 0);
        assert_eq!(m.ink, 2);
        assert!((m.density - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_detection() {
        // Two histories that swap positions create a crossing if orders
        // flip: h0: A->B, h1: C->D where layout puts A above C but B below
        // D. Construct directly: merge to force shared layers.
        let seqs = vec![seq(&["A01", "K74"]), seq(&["R05", "T90"])];
        let mut g = DiGraph::from_sequences(&seqs);
        // No merging: parallel chains never cross.
        let m = crowding(&g, &layout(&g));
        assert_eq!(m.crossings, 0);
        // Merge the second-layer nodes crosswise is impossible via API;
        // instead verify that merging shared codes reduces nodes.
        let merged = merge_on_regex(&mut g, &Regex::new(".*").unwrap());
        let _ = merged;
        assert!(g.node_count() <= 4);
    }

    #[test]
    fn crowding_grows_superlinearly_with_cohort_size() {
        // The Fig. 2(b) effect: metrics for 10 vs 50 noisy histories.
        let mk = |n: usize| -> GraphMetrics {
            let codes = ["A01", "R05", "D01", "T90", "K74", "K86", "P76", "L90"];
            let seqs: Vec<Vec<Code>> = (0..n)
                .map(|i| {
                    (0..6)
                        .map(|j| Code::icpc(codes[(i * 7 + j * 3 + i * j) % codes.len()]))
                        .collect()
                })
                .collect();
            let mut g = DiGraph::from_sequences(&seqs);
            let merged = merge_on_regex(&mut g, &Regex::new("T90").unwrap());
            merge_neighbors(&mut g, &merged, 2);
            crowding(&g, &layout(&g))
        };
        let small = mk(10);
        let large = mk(50);
        assert!(large.nodes > small.nodes);
        assert!(large.edges > small.edges);
        assert!(
            large.crossings > small.crossings * 4,
            "crossings should blow up: {} vs {}",
            large.crossings,
            small.crossings
        );
    }

    #[test]
    fn empty_graph_metrics() {
        let g = DiGraph::from_sequences(&[]);
        let m = crowding(&g, &layout(&g));
        assert_eq!(m.nodes, 0);
        assert_eq!(m.density, 0.0);
    }
}
