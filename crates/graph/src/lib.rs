//! The NSEPter prototype, rebuilt as the paper's baseline.
//!
//! §II.A.1 describes it exactly: each history on a horizontal line of
//! diagnosis nodes; regex-driven node merging "performed serially from the
//! beginning of the histories, so that the first occurrence of a node from
//! one history was merged with the first from all the other histories";
//! recursive neighbour merging "in a hope that the histories would exhibit
//! similar patterns before or after an important event"; edge widths
//! "scaled according to the number of histories exhibiting the transition".
//!
//! The paper also lists its weaknesses — time is lost, graphs become
//! "virtually unreadable" at scale (Fig. 2b), and the merge is noise-
//! fragile and order-dependent. We reproduce the behaviour *and* the
//! weaknesses faithfully: E3 quantifies the crowding against the timeline
//! design, and E9 quantifies the merge fragility against the alignment
//! consensus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod layout;
pub mod merge;
pub mod metrics;

pub use build::{DiGraph, NodeId};
pub use layout::{layout, GraphLayout};
pub use merge::{merge_neighbors, merge_on_regex};
pub use metrics::{crowding, GraphMetrics};
