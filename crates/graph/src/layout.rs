//! Layered graph layout (Sugiyama-lite): longest-path layering plus a few
//! barycenter ordering sweeps. Produces the node coordinates the SVG
//! renderer in `pastas-viz` draws — and the geometry the crowding metrics
//! of E3 measure.

use crate::build::{DiGraph, NodeId};
use std::collections::HashMap;

/// Node positions of a laid-out graph.
#[derive(Debug, Clone, Default)]
pub struct GraphLayout {
    /// `node → (x, y)` in abstract units (layer spacing 1.0).
    pub positions: HashMap<NodeId, (f64, f64)>,
    /// Number of layers.
    pub layers: usize,
    /// Maximum nodes in any layer.
    pub max_layer_size: usize,
}

/// Compute the layout of all live nodes.
pub fn layout(g: &DiGraph) -> GraphLayout {
    let live: Vec<NodeId> = (0..g.nodes().len()).filter(|&i| !g.nodes()[i].dead).collect();
    if live.is_empty() {
        return GraphLayout::default();
    }

    // Longest-path layering (graphs from histories are DAG-like; cycles
    // introduced by merging are broken by capping the iteration).
    let mut layer: HashMap<NodeId, usize> = live.iter().map(|&n| (n, 0)).collect();
    for _ in 0..live.len().min(64) {
        let mut changed = false;
        for (a, b, _) in g.edges() {
            let la = *layer.get(&a).unwrap_or(&0);
            let lb = *layer.get(&b).unwrap_or(&0);
            if lb < la + 1 && la + 1 < live.len().min(256) {
                layer.insert(b, la + 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let max_layer = layer.values().copied().max().unwrap_or(0);
    let mut by_layer: Vec<Vec<NodeId>> = vec![Vec::new(); max_layer + 1];
    for &n in &live {
        by_layer[layer[&n]].push(n);
    }
    for l in &mut by_layer {
        l.sort_unstable();
    }

    // Barycenter ordering sweeps.
    let mut order: HashMap<NodeId, f64> = HashMap::new();
    for l in &by_layer {
        for (i, &n) in l.iter().enumerate() {
            order.insert(n, i as f64);
        }
    }
    for _ in 0..4 {
        for l in &mut by_layer {
            l.sort_by(|&a, &b| {
                let bary = |n: NodeId| -> f64 {
                    let preds = g.predecessors(n);
                    if preds.is_empty() {
                        order[&n]
                    } else {
                        preds.iter().map(|p| order[p]).sum::<f64>() / preds.len() as f64
                    }
                };
                bary(a).partial_cmp(&bary(b)).unwrap_or(std::cmp::Ordering::Equal)
            });
            for (i, &n) in l.iter().enumerate() {
                order.insert(n, i as f64);
            }
        }
    }

    let mut positions = HashMap::new();
    let mut max_layer_size = 0;
    for (x, l) in by_layer.iter().enumerate() {
        max_layer_size = max_layer_size.max(l.len());
        for (y, &n) in l.iter().enumerate() {
            positions.insert(n, (x as f64, y as f64));
        }
    }
    GraphLayout { positions, layers: by_layer.len(), max_layer_size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn chain_lays_out_in_order() {
        let g = DiGraph::from_sequences(&[seq(&["A01", "T90", "K74"])]);
        let l = layout(&g);
        assert_eq!(l.layers, 3);
        assert_eq!(l.max_layer_size, 1);
        let x = |n: NodeId| l.positions[&n].0;
        assert!(x(0) < x(1) && x(1) < x(2));
    }

    #[test]
    fn parallel_histories_stack_vertically() {
        let g = DiGraph::from_sequences(&[seq(&["A01", "T90"]), seq(&["R05", "K74"])]);
        let l = layout(&g);
        assert_eq!(l.layers, 2);
        assert_eq!(l.max_layer_size, 2);
        // Distinct positions for all nodes.
        let mut seen: Vec<_> = l.positions.values().collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_sequences(&[]);
        let l = layout(&g);
        assert_eq!(l.layers, 0);
        assert!(l.positions.is_empty());
    }

    #[test]
    fn every_live_node_is_placed() {
        let g = DiGraph::from_sequences(&[
            seq(&["A01", "T90", "K74", "K77"]),
            seq(&["T90", "K74"]),
            seq(&["R05"]),
        ]);
        let l = layout(&g);
        assert_eq!(l.positions.len(), g.node_count());
    }
}
