//! Graph construction from diagnosis sequences.

use pastas_codes::Code;
use std::collections::BTreeMap;

/// A node handle.
pub type NodeId = usize;

/// One node: a diagnosis code plus the `(history, position)` occurrences
/// merged into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The code all members share.
    pub code: Code,
    /// Occurrences merged into this node.
    pub members: Vec<(usize, usize)>,
    /// True once the node has been removed by a merge.
    pub dead: bool,
}

/// The NSEPter directed graph: nodes per diagnosis occurrence, weighted
/// edges for adjacency within histories.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    /// All nodes (including dead ones; see [`Node::dead`]).
    nodes: Vec<Node>,
    /// Edge weights: `(from, to) → number of history transitions`.
    edges: BTreeMap<(NodeId, NodeId), usize>,
    /// Number of input histories.
    histories: usize,
}

impl DiGraph {
    /// Build the unmerged graph: one node per diagnosis occurrence, one
    /// weight-1 edge per adjacency ("an edge between nodes representing
    /// diagnoses adjacent to each other in the history").
    pub fn from_sequences(sequences: &[Vec<Code>]) -> DiGraph {
        let mut g = DiGraph { histories: sequences.len(), ..DiGraph::default() };
        for (hi, seq) in sequences.iter().enumerate() {
            let mut prev: Option<NodeId> = None;
            for (pos, code) in seq.iter().enumerate() {
                let id = g.nodes.len();
                g.nodes.push(Node { code: code.clone(), members: vec![(hi, pos)], dead: false });
                if let Some(p) = prev {
                    *g.edges.entry((p, id)).or_default() += 1;
                }
                prev = Some(id);
            }
        }
        g
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Number of edges between live nodes.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of input histories.
    pub fn history_count(&self) -> usize {
        self.histories
    }

    /// The node table (including dead nodes; check [`Node::dead`]).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterate live edges as `(from, to, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, usize)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// In-neighbours of a live node.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges.keys().filter(|&&(_, b)| b == id).map(|&(a, _)| a).collect()
    }

    /// Out-neighbours of a live node.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges.keys().filter(|&&(a, _)| a == id).map(|&(_, b)| b).collect()
    }

    /// Merge `victims` into `target`: members move, edges are re-pointed
    /// and their weights combined ("Common edges between merged nodes were
    /// scaled according to the number of histories exhibiting the
    /// transition"). Self-loops produced by the merge are dropped.
    pub fn merge_into(&mut self, target: NodeId, victims: &[NodeId]) {
        debug_assert!(!self.nodes[target].dead);
        for &v in victims {
            if v == target || self.nodes[v].dead {
                continue;
            }
            let members = std::mem::take(&mut self.nodes[v].members);
            self.nodes[target].members.extend(members);
            self.nodes[v].dead = true;
            // Re-point edges touching v.
            let touching: Vec<((NodeId, NodeId), usize)> = self
                .edges
                .iter()
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(&k, &w)| (k, w))
                .collect();
            for ((a, b), w) in touching {
                self.edges.remove(&(a, b));
                let na = if a == v { target } else { a };
                let nb = if b == v { target } else { b };
                if na != nb {
                    *self.edges.entry((na, nb)).or_default() += w;
                }
            }
        }
    }

    /// The heaviest edge weight (0 for an empty graph).
    pub fn max_edge_weight(&self) -> usize {
        self.edges.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn unmerged_graph_shape() {
        let g = DiGraph::from_sequences(&[seq(&["A01", "T90", "K74"]), seq(&["T90", "K74"])]);
        assert_eq!(g.node_count(), 5, "one node per occurrence");
        assert_eq!(g.edge_count(), 3, "one edge per adjacency");
        assert_eq!(g.history_count(), 2);
        assert_eq!(g.max_edge_weight(), 1);
    }

    #[test]
    fn merge_combines_members_and_edges() {
        // h0: a->b, h1: a'->b'. Merging a with a' and b with b' gives one
        // edge of weight 2.
        let g0 = DiGraph::from_sequences(&[seq(&["A01", "T90"]), seq(&["A01", "T90"])]);
        let mut g = g0.clone();
        g.merge_into(0, &[2]); // the two A01 nodes
        g.merge_into(1, &[3]); // the two T90 nodes
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.max_edge_weight(), 2);
        assert_eq!(g.nodes()[0].members.len(), 2);
    }

    #[test]
    fn merge_drops_self_loops() {
        let mut g = DiGraph::from_sequences(&[seq(&["T90", "T90"])]);
        g.merge_into(0, &[1]);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0, "self-loop dropped");
    }

    #[test]
    fn merge_is_idempotent_for_dead_nodes() {
        let mut g = DiGraph::from_sequences(&[seq(&["A01", "T90"]), seq(&["A01", "R05"])]);
        g.merge_into(0, &[2]);
        let nodes = g.node_count();
        g.merge_into(0, &[2]); // already dead: no-op
        assert_eq!(g.node_count(), nodes);
    }

    #[test]
    fn neighbour_queries() {
        let g = DiGraph::from_sequences(&[seq(&["A01", "T90", "K74"])]);
        assert_eq!(g.successors(0), vec![1]);
        assert_eq!(g.predecessors(1), vec![0]);
        assert_eq!(g.predecessors(0), Vec::<NodeId>::new());
        assert_eq!(g.successors(2), Vec::<NodeId>::new());
    }
}
