//! End-to-end tests over real sockets: keep-alive sessions, concurrent
//! clients, load shedding, malformed input handling, and graceful
//! shutdown.

use pastas_core::Workbench;
use pastas_serve::client::{self, Conn};
use pastas_serve::{serve, ServerConfig, ServerHandle};
use pastas_synth::{generate_collection, SynthConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn start(workers: usize, queue: usize) -> ServerHandle {
    let workbench =
        Workbench::from_collection(generate_collection(SynthConfig::with_patients(200), 11));
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    serve(workbench, config).expect("bind loopback")
}

#[test]
fn keep_alive_session_covers_every_endpoint() {
    let server = start(2, 16);
    let mut conn = Conn::connect(server.addr(), TIMEOUT).unwrap();

    let select = conn.post("/select", b"has(T90)").unwrap();
    assert_eq!(select.status, 200);
    let body = select.body_str().into_owned();
    assert!(body.contains("\"count\":") && body.contains("\"ids\":[\"P"), "{body}");

    let repeat = conn.post("/select", b"has(T90)").unwrap();
    assert_eq!(repeat.body_str(), body, "same query, same (cached) answer");

    let svg = conn.get("/cohort.svg?w=500&h=300").unwrap();
    assert_eq!(svg.status, 200);
    assert_eq!(svg.header("content-type"), Some("image/svg+xml"));
    assert!(svg.body_str().contains("<svg"));

    let txt = conn.get("/cohort.txt?cols=60&rows=12").unwrap();
    assert_eq!(txt.status, 200);
    assert_eq!(txt.body_str().lines().count(), 12);

    let cmd = conn
        .post("/command", br#"{"command":"sort","key":"entry_count"}"#)
        .unwrap();
    assert_eq!(cmd.status, 200);
    assert!(cmd.body_str().contains("\"version\":2"));

    let missing = conn.get("/timeline/P9999999").unwrap();
    assert_eq!(missing.status, 404);

    let metrics = conn.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str().into_owned();
    for field in ["\"requests_total\"", "\"cache_hits\"", "\"worker_panics\":0"] {
        assert!(text.contains(field), "missing {field} in {text}");
    }

    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_consistent_answers() {
    let server = start(4, 64);
    let addr = server.addr();
    let expected = client::post(addr, "/select", b"has(T90)", TIMEOUT)
        .unwrap()
        .body_str()
        .into_owned();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
                for _ in 0..25 {
                    let resp = conn.post("/select", b"has(T90)").unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.body_str(), expected);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let metrics = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert!(metrics.body_str().contains("\"worker_panics\":0"));
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // One worker, queue of one. Each open connection pins its worker for
    // the whole session, so: conn1 occupies the worker, conn2 sits in the
    // queue, conn3 must be shed by the acceptor.
    let server = start(1, 1);
    let addr = server.addr();
    let mut conn1 = Conn::connect(addr, TIMEOUT).unwrap();
    assert_eq!(conn1.get("/healthz").unwrap().status, 200);
    let _conn2 = TcpStream::connect(addr).unwrap();
    // Let the acceptor move conn2 into the queue before conn3 arrives.
    std::thread::sleep(Duration::from_millis(200));

    let mut conn3 = Conn::connect(addr, TIMEOUT).unwrap();
    let shed = conn3.get("/healthz").unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body_str().contains("overloaded"));

    // The admitted connection still works while the shed one was refused.
    assert_eq!(conn1.get("/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn malformed_requests_get_400_and_close() {
    let server = start(2, 8);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("Connection: close"), "{reply}");

    // Oversized declared body: typed rejection, not a hang.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"POST /select HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_inflight_work_and_refuses_new() {
    let server = start(2, 16);
    let addr = server.addr();
    // Clients hammering while we shut down.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut ok = 0u32;
                for _ in 0..50 {
                    match client::post(addr, "/select?count_only=1", b"has(T90)", TIMEOUT) {
                        Ok(resp) if resp.status == 200 => ok += 1,
                        // 503 (drained) or a refused/reset connection are
                        // the two legitimate outcomes during shutdown.
                        _ => break,
                    }
                }
                ok
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let served: u32 = workers.into_iter().map(|t| t.join().expect("client")).sum();
    assert!(served > 0, "some requests completed before the drain");

    // The port no longer answers.
    let gone = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    match gone {
        Err(_) => {}
        Ok(mut stream) => {
            // Accepted by a dying listener backlog at worst — it must not
            // serve anything.
            stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let _ = stream.read_to_end(&mut buf);
            assert!(buf.is_empty(), "post-shutdown request was answered");
        }
    }
}

/// A handler panic — injected while holding the response-cache mutex, the
/// worst case — must cost exactly one 500. The worker survives, the same
/// connection keeps serving, and the poisoned lock recovers on next use.
/// Debug builds only: the `/__fault` route is compiled out of release.
#[cfg(debug_assertions)]
#[test]
fn handler_panic_returns_500_and_the_worker_survives() {
    let server = start(2, 16);
    let mut conn = Conn::connect(server.addr(), TIMEOUT).unwrap();

    // Warm the cache so post-fault hits exercise the poisoned mutex.
    let before = conn.post("/select", b"has(T90)").unwrap();
    assert_eq!(before.status, 200);

    let fault = conn.post("/__fault/cache-poison", b"").unwrap();
    assert_eq!(fault.status, 500, "injected panic surfaces as a 500");
    assert!(fault.body_str().contains("internal handler panic"));

    // Same connection, same worker: the keep-alive loop survived the
    // panic and the cache lock recovered via PoisonError::into_inner.
    let after = conn.post("/select", b"has(T90)").unwrap();
    assert_eq!(after.status, 200, "worker and poisoned cache both recovered");
    assert_eq!(after.body_str(), before.body_str());

    let metrics = conn.get("/metrics").unwrap().body_str().into_owned();
    assert!(metrics.contains("\"worker_panics\":0"), "pool workers unharmed: {metrics}");
    assert!(metrics.contains("\"handler_panics\":1"), "panic was counted: {metrics}");

    server.shutdown();
}
