//! A deliberately small HTTP/1.1 implementation: incremental request
//! parsing with hard budgets, and response serialization.
//!
//! The parser's contract is the one the fuzz tests assert: **any** byte
//! stream — malformed request lines, oversized headers, truncated bodies,
//! bytes arriving one at a time — produces either a well-formed
//! [`Request`] or a typed [`HttpError`]; it never panics and never reads
//! more than its configured budgets.

use std::io::{self, Read, Write};

/// Hard budgets on a single request. Both the header block and the body
/// are bounded so one client cannot balloon server memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including the blank line).
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length` above this is
    /// rejected before any body byte is read).
    pub max_body_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_head_bytes: 16 * 1024, max_body_bytes: 1024 * 1024, max_headers: 64 }
    }
}

/// Typed request-parsing failure. [`HttpError::status`] maps each variant
/// to the response the connection handler writes before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request — the peer ended a
    /// keep-alive session; not an error to report.
    ConnectionClosed,
    /// EOF in the middle of a request head or declared body.
    Truncated,
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// An HTTP version this server does not speak.
    UnsupportedVersion,
    /// A header line without a colon, an empty name, or control bytes.
    BadHeader,
    /// The header block exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// More than [`Limits::max_headers`] header fields.
    TooManyHeaders,
    /// `Content-Length` was present but unparsable (or conflicting).
    BadContentLength,
    /// The declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// `Transfer-Encoding` the server does not implement (e.g. chunked).
    UnsupportedTransferEncoding,
    /// An I/O error (read timeouts surface here as `TimedOut`/`WouldBlock`).
    Io(io::ErrorKind),
}

impl HttpError {
    /// The HTTP status to answer with, or `None` when no response should
    /// be written (peer already gone).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::ConnectionClosed | HttpError::Truncated | HttpError::Io(_) => None,
            HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength => Some(400),
            HttpError::UnsupportedVersion => Some(505),
            HttpError::HeadTooLarge | HttpError::TooManyHeaders => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::UnsupportedTransferEncoding => Some(501),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Truncated => write!(f, "truncated request"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BadContentLength => write!(f, "bad Content-Length"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "unsupported transfer encoding")
            }
            HttpError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Header fields in order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Query parameter parsed as `T`, or `default` when absent/unparsable.
    pub fn param_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.param(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Incremental request reader over any byte stream. Owns the carry-over
/// buffer, so pipelined requests and arbitrary read fragmentation (one
/// byte per `read` call in the tests) parse identically to a single
/// contiguous buffer.
pub struct RequestReader<R> {
    inner: R,
    buf: Vec<u8>,
    limits: Limits,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R, limits: Limits) -> RequestReader<R> {
        RequestReader { inner, buf: Vec::new(), limits }
    }

    /// Read and parse the next request.
    pub fn next_request(&mut self) -> Result<Request, HttpError> {
        let head_end = self.fill_until_head_end()?;
        // Split off the head; keep everything after it buffered.
        let rest = self.buf.split_off(head_end.total);
        let head = std::mem::replace(&mut self.buf, rest);
        let head_bytes = head.get(..head_end.head).ok_or(HttpError::BadHeader)?;
        let head_text = std::str::from_utf8(head_bytes).map_err(|_| HttpError::BadHeader)?;
        let mut parsed = parse_head(head_text, &self.limits)?;
        let body_len = content_length(&parsed)?;
        if body_len > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        parsed.body = self.fill_body(body_len)?;
        Ok(parsed)
    }

    /// Grow the buffer until it contains a full header block; returns the
    /// length of the head proper and of head + terminator.
    fn fill_until_head_end(&mut self) -> Result<HeadEnd, HttpError> {
        let mut scanned = 0;
        loop {
            if let Some(end) = find_head_end(&self.buf, scanned) {
                return Ok(end);
            }
            scanned = self.buf.len().saturating_sub(3);
            if self.buf.len() >= self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            let before = self.buf.len();
            self.read_some()?;
            if self.buf.len() == before {
                return if before == 0 {
                    Err(HttpError::ConnectionClosed)
                } else {
                    Err(HttpError::Truncated)
                };
            }
        }
    }

    fn fill_body(&mut self, body_len: usize) -> Result<Vec<u8>, HttpError> {
        while self.buf.len() < body_len {
            let before = self.buf.len();
            self.read_some()?;
            if self.buf.len() == before {
                return Err(HttpError::Truncated);
            }
        }
        let rest = self.buf.split_off(body_len);
        Ok(std::mem::replace(&mut self.buf, rest))
    }

    fn read_some(&mut self) -> Result<(), HttpError> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(()),
                Ok(n) => {
                    // A broken Read impl may report n > chunk.len(); treat it
                    // as a protocol error instead of panicking the worker.
                    let filled =
                        chunk.get(..n).ok_or(HttpError::Io(io::ErrorKind::InvalidData))?;
                    self.buf.extend_from_slice(filled);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e.kind())),
            }
        }
    }
}

struct HeadEnd {
    /// Bytes of request line + headers (terminator excluded).
    head: usize,
    /// Bytes up to and including the blank-line terminator.
    total: usize,
}

/// Find the end of the header block: `\r\n\r\n`, or a bare `\n\n` (the
/// parser is lenient about line endings, like most real servers).
fn find_head_end(buf: &[u8], from: usize) -> Option<HeadEnd> {
    let start = from.min(buf.len());
    for i in start..buf.len() {
        if buf.get(i) == Some(&b'\n') {
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(HeadEnd { head: i + 1, total: i + 2 });
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(HeadEnd { head: i + 1, total: i + 3 });
            }
        }
    }
    None
}

fn parse_head(head: &str, limits: &Limits) -> Result<Request, HttpError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminator's empty line
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty()
            || name.bytes().any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
            || value.bytes().any(|b| b.is_ascii_control() && b != b'\t')
        {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw);
    let query = query_raw.map(parse_query_string).unwrap_or_default();

    Ok(Request { method: method.to_owned(), path, query, headers, body: Vec::new() })
}

fn content_length(req: &Request) -> Result<usize, HttpError> {
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut lengths = req.headers.iter().filter(|(n, _)| n == "content-length");
    let Some((_, first)) = lengths.next() else {
        return Ok(0);
    };
    if lengths.next().is_some() {
        return Err(HttpError::BadContentLength); // request-smuggling guard
    }
    first.parse::<usize>().map_err(|_| HttpError::BadContentLength)
}

fn parse_query_string(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Capacity hint ceiling for [`percent_decode`]: the output is never
/// longer than the input, but the pre-allocation itself must not be
/// sized by an unclamped request-derived length.
const DECODE_CAPACITY_CLAMP: usize = 8 * 1024;

/// Percent-decode (`%41` → `A`, `+` → space). Invalid escapes pass
/// through literally — decoding never fails.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len().min(DECODE_CAPACITY_CLAMP));
    // A hex digit as its nibble value; `None` for non-hex or end of input.
    let nibble = |b: Option<&u8>| {
        b.and_then(|&b| (b as char).to_digit(16)).and_then(|d| u8::try_from(d).ok())
    };
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => match (nibble(bytes.get(i + 1)), nibble(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Retry-After`, …).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn status(status: u16) -> Response {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A response with a body and content type.
    pub fn with_body(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response::status(status)
            .header("Content-Type", content_type)
            .body_bytes(body.into())
    }

    /// JSON body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::with_body(status, "application/json", body)
    }

    /// Plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::with_body(status, "text/plain; charset=utf-8", body)
    }

    /// A backpressure response: JSON body plus the `Retry-After` header.
    /// The single constructor behind every `429`/`503` the server emits
    /// (ingest-queue-full and acceptor load shedding), so neither path
    /// can forget the header the other relies on.
    pub fn retry_later_json(
        status: u16,
        body: impl Into<Vec<u8>>,
        retry_after_secs: u32,
    ) -> Response {
        Response::json(status, body).header("Retry-After", &retry_after_secs.to_string())
    }

    /// Add a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Set the body.
    pub fn body_bytes(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serialize to the wire. `keep_alive` controls the `Connection`
    /// header; `Content-Length` is always explicit.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = String::with_capacity(128);
        use std::fmt::Write as _;
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        );
        for (name, value) in &self.headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        let _ = write!(head, "Content-Length: {}\r\n", self.body.len());
        let _ = write!(
            head,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        );
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        RequestReader::new(bytes, Limits::default()).next_request()
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /cohort.svg?w=800&h=400 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/cohort.svg");
        assert_eq!(req.param("w"), Some("800"));
        assert_eq!(req.param_or("h", 0.0f64), 400.0);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn retry_later_carries_the_header_for_both_backpressure_statuses() {
        for status in [429u16, 503] {
            let resp = Response::retry_later_json(status, "{\"error\":\"busy\"}", 7);
            assert_eq!(resp.status, status);
            assert!(
                resp.headers.iter().any(|(n, v)| n == "Retry-After" && v == "7"),
                "{:?}",
                resp.headers
            );
            assert!(
                resp.headers.iter().any(|(n, v)| n == "Content-Type" && v == "application/json")
            );
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /select HTTP/1.1\r\nContent-Length: 8\r\n\r\nhas(T90)").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str(), "has(T90)");
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let bytes: &[u8] =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new(bytes, Limits::default());
        assert_eq!(reader.next_request().unwrap().path, "/a");
        let second = reader.next_request().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
        assert_eq!(reader.next_request().unwrap().path, "/c");
        assert_eq!(reader.next_request(), Err(HttpError::ConnectionClosed));
    }

    #[test]
    fn one_byte_reads_parse_identically() {
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let bytes = b"POST /select HTTP/1.1\r\nContent-Length: 8\r\n\r\nhas(T90)";
        let whole = parse(bytes).unwrap();
        let trickled = RequestReader::new(OneByte(bytes), Limits::default())
            .next_request()
            .unwrap();
        assert_eq!(whole, trickled);
    }

    #[test]
    fn malformed_request_lines_are_typed_errors() {
        assert_eq!(parse(b"\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(parse(b"GET\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(parse(b"GET /a HTTP/1.1 junk\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(parse(b"get /a HTTP/1.1\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(parse(b"GET a HTTP/1.1\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(parse(b"GET /a HTTP/2\r\n\r\n"), Err(HttpError::UnsupportedVersion));
    }

    #[test]
    fn header_budgets_are_enforced() {
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 20 * 1024));
        assert_eq!(parse(&big), Err(HttpError::HeadTooLarge));

        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse(&many), Err(HttpError::TooManyHeaders));

        assert_eq!(parse(b"GET / HTTP/1.1\r\nno-colon\r\n\r\n"), Err(HttpError::BadHeader));
        assert_eq!(parse(b"GET / HTTP/1.1\r\n: empty\r\n\r\n"), Err(HttpError::BadHeader));
    }

    #[test]
    fn body_budgets_are_enforced_before_reading() {
        // Declared length over budget: rejected even though no body bytes
        // follow — the server never tries to buffer it.
        let req = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse(req), Err(HttpError::BodyTooLarge));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn truncation_is_typed() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHost: x"), Err(HttpError::Truncated));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        );
        assert_eq!(parse(b""), Err(HttpError::ConnectionClosed));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%E2%9C%93"), "\u{2713}");
        assert_eq!(percent_decode("100%"), "100%", "invalid escape passes through");
        let req = parse(b"GET /x?q=has%28T90%29 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.param("q"), Some("has(T90)"));
    }

    #[test]
    fn responses_serialize_with_explicit_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        Response::status(503)
            .header("Retry-After", "2")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }
}
