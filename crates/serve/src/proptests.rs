//! Fuzz-style properties for the HTTP parser. The contract under test:
//! **any** byte stream, delivered in **any** fragmentation, produces
//! either well-formed [`Request`]s or a typed [`HttpError`] — never a
//! panic, never an unbounded read.

use crate::http::{HttpError, Limits, Request, RequestReader};
use proptest::prelude::*;
use std::io::{self, Read};

/// Delivers `data` in caller-chosen fragment sizes (then EOF) — models a
/// peer whose TCP segments split anywhere, including mid-header.
struct Fragmented {
    data: Vec<u8>,
    sizes: Vec<usize>,
    pos: usize,
    turn: usize,
}

impl Read for Fragmented {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || out.is_empty() {
            return Ok(0);
        }
        let want = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = want.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drain a byte stream through the parser: requests until close or the
/// first error. Totality is the property — reaching the end *is* the test.
fn drain(bytes: Vec<u8>, sizes: Vec<usize>, limits: Limits) -> Vec<Result<Request, HttpError>> {
    let reader = Fragmented { data: bytes, sizes, pos: 0, turn: 0 };
    let mut reader = RequestReader::new(reader, limits);
    let mut out = Vec::new();
    loop {
        match reader.next_request() {
            Err(HttpError::ConnectionClosed) => break,
            result => {
                let stop = result.is_err();
                out.push(result);
                if stop {
                    break;
                }
            }
        }
    }
    out
}

/// Tight budgets so the generators actually reach them.
fn small_limits() -> Limits {
    Limits { max_head_bytes: 256, max_body_bytes: 128, max_headers: 8 }
}

/// Plausible-but-mutated request text: mostly valid pieces with junk mixed
/// in, which exercises far deeper parser states than uniform noise.
fn arb_requestish() -> impl Strategy<Value = Vec<u8>> {
    let method = prop_oneof![
        Just("GET".to_owned()),
        Just("POST".to_owned()),
        Just("get".to_owned()),
        Just("".to_owned()),
        "[A-Z%~]{1,6}".boxed(),
    ];
    let target = prop_oneof![
        Just("/select".to_owned()),
        Just("/cohort.svg?w=900&h=%zz".to_owned()),
        Just("no-slash".to_owned()),
        "[ -~]{0,20}".boxed().prop_map(|s| format!("/{s}")),
    ];
    let version = prop_oneof![
        Just("HTTP/1.1".to_owned()),
        Just("HTTP/1.0".to_owned()),
        Just("HTTP/2".to_owned()),
        Just("HTTP/1.1 junk".to_owned()),
        Just("".to_owned()),
    ];
    let headers = proptest::collection::vec(
        prop_oneof![
            Just("Host: x".to_owned()),
            Just("Connection: close".to_owned()),
            Just("Content-Length: 5".to_owned()),
            Just("Content-Length: nope".to_owned()),
            Just("Content-Length: 999999".to_owned()),
            Just("Transfer-Encoding: chunked".to_owned()),
            Just("no-colon-here".to_owned()),
            Just(": empty-name".to_owned()),
            "[ -~]{0,30}".boxed(),
        ],
        0..10,
    );
    let body = "[ -~]{0,40}".boxed();
    (method, target, version, headers, body).prop_map(|(m, t, v, hs, b)| {
        let mut text = format!("{m} {t} {v}\r\n");
        for h in hs {
            text.push_str(&h);
            text.push_str("\r\n");
        }
        text.push_str("\r\n");
        text.push_str(&b);
        text.into_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Uniform byte soup never panics the parser, under any fragmentation.
    #[test]
    fn parser_is_total_over_byte_soup(
        bytes in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..400),
        sizes in proptest::collection::vec(1usize..17, 1..5),
    ) {
        let results = drain(bytes, sizes, small_limits());
        // At most one error, and only as the final element.
        for (i, r) in results.iter().enumerate() {
            prop_assert!(r.is_ok() || i == results.len() - 1);
        }
    }

    /// Mutated near-valid requests never panic and classify as parse or
    /// typed error, under any fragmentation.
    #[test]
    fn parser_is_total_over_requestish_input(
        bytes in arb_requestish(),
        sizes in proptest::collection::vec(1usize..33, 1..5),
    ) {
        let _ = drain(bytes, sizes, Limits::default());
    }

    /// Fragmentation never changes the outcome: byte-at-a-time parses
    /// exactly like one contiguous buffer.
    #[test]
    fn fragmentation_is_invisible(bytes in arb_requestish()) {
        let whole = drain(bytes.clone(), vec![usize::MAX >> 1], Limits::default());
        let trickled = drain(bytes, vec![1], Limits::default());
        prop_assert_eq!(whole, trickled);
    }

    /// Every proper prefix of a valid request is `Truncated` (or parses a
    /// complete earlier request) — never a panic, never a bogus success.
    #[test]
    fn truncation_yields_typed_errors(cut in 0usize..64) {
        let full: &[u8] = b"POST /select HTTP/1.1\r\nContent-Length: 8\r\n\r\nhas(T90)";
        let cut = cut.min(full.len() - 1);
        let results = drain(full[..cut].to_vec(), vec![3], Limits::default());
        match results.last() {
            None => prop_assert!(cut == 0),
            Some(Err(e)) => prop_assert_eq!(e, &HttpError::Truncated),
            Some(Ok(_)) => prop_assert!(false, "prefix of length {} parsed", cut),
        }
    }

    /// Oversized declared bodies are rejected by type without buffering.
    #[test]
    fn declared_body_budget_is_enforced(extra in 1u64..1_000_000) {
        let limits = small_limits();
        let declared = limits.max_body_bytes as u64 + extra;
        let head = format!("POST / HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let results = drain(head.into_bytes(), vec![7], limits);
        prop_assert_eq!(results.last(), Some(&Err(HttpError::BodyTooLarge)));
    }

    /// Arbitrary put/get interleavings keep the LRU cache's deep
    /// invariants: exact byte accounting and both bounds, checked by
    /// `debug_validate` after every operation.
    #[test]
    fn cache_invariants_hold_under_arbitrary_workloads(
        max_entries in 1usize..6,
        max_bytes in 1usize..64,
        ops in proptest::collection::vec(
            (0u8..2, 0u8..8, proptest::collection::vec(proptest::strategy::any::<u8>(), 0..24)),
            0..40,
        ),
    ) {
        use crate::cache::ResponseCache;
        use crate::http::Response;
        use std::sync::Arc;
        let cache = ResponseCache::new(max_entries, max_bytes);
        for (op, key, body) in ops {
            let key = format!("k{key}");
            if op == 0 {
                cache.put(key, Arc::new(Response::text(200, body)));
            } else {
                let _ = cache.get(&key);
            }
            cache.debug_validate();
        }
    }
}
