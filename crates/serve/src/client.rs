//! A minimal loopback HTTP/1.1 client for tests, the smoke mode, and the
//! load benchmark. Speaks exactly the dialect the server emits: explicit
//! `Content-Length`, `Connection: keep-alive`/`close`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// A keep-alive connection to one server.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Connect with a read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn { stream, buf: Vec::new() })
    }

    /// `GET path` over this connection.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a body over this connection.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    /// Send one request and read one response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            if !self.read_more()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof before response head",
                ));
            }
        };
        let rest = self.buf.split_off(head_end);
        let head = std::mem::replace(&mut self.buf, rest);
        let head = String::from_utf8_lossy(&head);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        let length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        while self.buf.len() < length {
            if !self.read_more()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside response body",
                ));
            }
        }
        let rest = self.buf.split_off(length);
        let body = std::mem::replace(&mut self.buf, rest);
        Ok(ClientResponse { status, headers, body })
    }

    fn read_more(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    let filled = chunk
                        .get(..n)
                        .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidData))?;
                    self.buf.extend_from_slice(filled);
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// One-shot `GET` on a fresh connection.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
    Conn::connect(addr, timeout)?.get(path)
}

/// One-shot `POST` on a fresh connection.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    Conn::connect(addr, timeout)?.post(path, body)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}
