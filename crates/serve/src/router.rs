//! Request routing: one function from [`Request`] to [`Response`].
//!
//! Endpoints (all responses JSON unless noted):
//!
//! | route | what it does |
//! |---|---|
//! | `POST /select` | body = query-language text → cohort ids/counts |
//! | `POST /cohort` | body = query text → materialized cohort handle id |
//! | `GET /cohort/{id}/stats?k=` | dimension histograms over a frozen cohort |
//! | `GET /cohort/{id}/timeline` | monthly event counts over a frozen cohort |
//! | `GET /cohort/{id}.svg?w=&h=` | histogram small-multiples panel (SVG) |
//! | `GET /timeline/{patient}` | one patient's personal timeline (HTML) |
//! | `GET /cohort.svg?w=&h=&overview=` | current view rendered as SVG |
//! | `GET /cohort.txt?cols=&rows=` | current view rendered as terminal text |
//! | `POST /command` | JSON view command (sort/align/filter) → new version |
//! | `GET /details?x=&y=&w=&h=` | details-on-demand under a cursor |
//! | `GET /metrics` | live counters, cache stats, latency percentiles |
//! | `GET /healthz` | liveness probe (text) |
//!
//! Cacheable GET/select responses go through the [`ResponseCache`]; the
//! key prefix is the snapshot's `(version, collection fingerprint)` pair,
//! the suffix the endpoint's own parameters — for `/select`, the query's
//! canonical [`HistoryQuery::fingerprint`](pastas_query::HistoryQuery::fingerprint).

use crate::cache::ResponseCache;
use crate::http::{Request, Response};
use crate::ingest::{IngestConfig, IngestQueue};
use crate::state::{ServeState, Snapshot};
use pastas_core::export::json_string;
use pastas_core::{CohortLookup, CohortRegistry, RegistryConfig, Selection, ViewCommand};
use pastas_ingest::json::Json;
use pastas_ingest::DeltaFormat;
use pastas_model::PatientId;
use pastas_query::{parse_query, EntryPredicate, SortKey};
use std::fmt::Write as _;
use std::sync::Arc;

/// Everything a handler can touch. The server owns one and hands
/// references to every connection.
pub struct RouterCtx {
    /// The swap point for published snapshots.
    pub state: ServeState,
    /// The shared response cache.
    pub cache: ResponseCache,
    /// The server's request metrics; the router reads it for `/metrics`.
    pub metrics: crate::metrics::Metrics,
    /// The bounded streaming-ingest queue behind `POST /ingest`.
    pub ingest: IngestQueue,
    /// Materialized cohort handles behind `POST /cohort` and
    /// `GET /cohort/{id}/*`, pinned to the snapshot version they were
    /// frozen against.
    pub cohorts: CohortRegistry,
    /// Worker-pool gauges, wired in by the server once the pool exists.
    pub pool_stats: std::sync::OnceLock<pastas_par::pool::PoolStats>,
}

impl RouterCtx {
    /// A context over an initial workbench with a cache bounded to
    /// `cache_entries` responses / `cache_bytes` body bytes and default
    /// ingest tuning.
    pub fn new(
        workbench: pastas_core::Workbench,
        cache_entries: usize,
        cache_bytes: usize,
    ) -> RouterCtx {
        RouterCtx::with_ingest_config(workbench, cache_entries, cache_bytes, IngestConfig::default())
    }

    /// [`RouterCtx::new`] with explicit ingest tuning (queue capacity,
    /// compaction threshold, 429 `Retry-After`).
    pub fn with_ingest_config(
        workbench: pastas_core::Workbench,
        cache_entries: usize,
        cache_bytes: usize,
        ingest: IngestConfig,
    ) -> RouterCtx {
        RouterCtx {
            ingest: IngestQueue::new(&workbench, ingest),
            state: ServeState::new(workbench),
            cache: ResponseCache::new(cache_entries, cache_bytes),
            metrics: crate::metrics::Metrics::new(),
            pool_stats: std::sync::OnceLock::new(),
            cohorts: CohortRegistry::new(RegistryConfig::default()),
        }
    }
}

fn error_json(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
}

/// Route one request. Never panics: every failure path is a status code.
/// (Sole exception: the debug-only `/__fault/cache-poison` route panics
/// by design, to exercise the connection loop's catch and the poisoned-
/// lock recovery — it is compiled out of release binaries.)
pub fn route(req: &Request, ctx: &RouterCtx) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok"),
        ("GET", "/metrics") => metrics_response(ctx),
        ("POST", "/select") => select(req, ctx),
        ("POST", "/cohort") => cohort_materialize(req, ctx),
        ("POST", "/command") => command(req, ctx),
        ("POST", "/ingest") => ingest(req, ctx),
        ("POST", "/compact") => compact(ctx),
        ("GET", "/cohort.svg") => cohort_svg(req, ctx),
        ("GET", "/cohort.txt") => cohort_txt(req, ctx),
        ("GET", "/details") => details(req, ctx),
        ("GET", path) if path.starts_with("/timeline/") => timeline(path, ctx),
        // Frozen-cohort reads; "/cohort.svg" (the live view) has an
        // exact arm above and never reaches this prefix match.
        ("GET", path) if path.starts_with("/cohort/") => cohort_read(path, req, ctx),
        // Fault injection for the poisoned-lock regression test: panics
        // while holding the cache mutex. Debug builds only — the route
        // does not exist in a release binary.
        #[cfg(debug_assertions)]
        ("POST", "/__fault/cache-poison") => {
            ctx.cache.poison_for_test();
            // lint:allow(no-panic-hot-path) deliberate fault injection, debug builds only
            unreachable!("poison_for_test always panics")
        }
        (
            _,
            "/select" | "/cohort" | "/command" | "/ingest" | "/compact" | "/cohort.svg"
            | "/cohort.txt" | "/details" | "/metrics",
        ) => error_json(405, "method not allowed"),
        _ => error_json(404, "no such route"),
    }
}

/// Serve from cache or compute-and-fill. The whole response object is
/// shared via `Arc` internally; what goes to the wire is a clone of the
/// cached value.
fn cached(
    ctx: &RouterCtx,
    snapshot: &Snapshot,
    suffix: &str,
    build: impl FnOnce() -> Response,
) -> Response {
    let key = format!("{}:{}", snapshot.cache_prefix(), suffix);
    if let Some(hit) = ctx.cache.get(&key) {
        return (*hit).clone();
    }
    let response = build();
    if response.status == 200 {
        ctx.cache.put(key, Arc::new(response.clone()));
    }
    response
}

fn select(req: &Request, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let text = req.body_str();
    let text = text.trim();
    if text.is_empty() {
        return error_json(400, "empty query: POST the query text, e.g. has(T90)");
    }
    // The reference date for age(..) clauses: the collection's last event
    // (queries are relative to the data, not the server's wall clock),
    // precomputed at publication because stats() walks every entry.
    let query = match parse_query(text, snapshot.reference_date) {
        Ok(q) => q,
        Err(e) => return error_json(400, &e.to_string()),
    };
    let count_only = req.param("count_only").is_some_and(|v| v != "0");
    let explain = req.param("explain").is_some_and(|v| v != "0");
    // The cache keys on the *canonical* fingerprint, so commuted or
    // double-negated spellings of one query share a cached response.
    let suffix = format!(
        "select:{}:{}:{}",
        u8::from(count_only),
        u8::from(explain),
        pastas_query::canonical_fingerprint(&query)
    );
    cached(ctx, &snapshot, &suffix, || {
        let (ids, explained) = if explain {
            let (positions, info) = snapshot.workbench.select_explain(&query);
            let histories = snapshot.workbench.collection().histories();
            let ids: Vec<PatientId> =
                positions.iter().filter_map(|&i| histories.get(i as usize)).map(|h| h.id()).collect();
            (ids, Some(info))
        } else {
            (Selection::from_query(&snapshot.workbench, &query).iter().collect(), None)
        };
        let mut body = String::with_capacity(32 + ids.len() * 12);
        let _ = write!(body, "{{\"version\":{},\"count\":{}", snapshot.version, ids.len());
        if !count_only {
            body.push_str(",\"ids\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(body, "\"{id}\"");
            }
            body.push(']');
        }
        if let Some(info) = explained {
            let _ = write!(
                body,
                ",\"explain\":{{\"full_scan\":{},\"plan\":{}}}",
                info.used_full_scan(),
                info.render_json()
            );
        }
        body.push('}');
        Response::json(200, body)
    })
}

/// `POST /cohort`: run the selection once, freeze the resulting posting
/// bitmap in the registry, and answer `201` with the handle id. Every
/// later `GET /cohort/{id}/*` reuses the frozen positions without
/// re-planning. Re-materializing an equivalent query (same canonical
/// fingerprint) at the same version returns the existing handle.
fn cohort_materialize(req: &Request, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let text = req.body_str();
    let text = text.trim();
    if text.is_empty() {
        return error_json(400, "empty query: POST the query text, e.g. has(T90)");
    }
    let query = match parse_query(text, snapshot.reference_date) {
        Ok(q) => q,
        Err(e) => return error_json(400, &e.to_string()),
    };
    let positions = snapshot.workbench.select_positions(&query);
    let fingerprint = snapshot.workbench.canonical_query_fingerprint(&query);
    let handle = ctx.cohorts.materialize(snapshot.version, &fingerprint, text, &positions);
    Response::json(
        201,
        format!(
            "{{\"id\":{},\"version\":{},\"count\":{}}}",
            json_string(&handle.id),
            handle.version,
            handle.count
        ),
    )
}

/// `GET /cohort/{id}/stats`, `/cohort/{id}/timeline`, `/cohort/{id}.svg`:
/// reads over a frozen cohort. A handle pinned to a superseded snapshot
/// answers `410 Gone` with the original query as a re-materialize hint.
fn cohort_read(path: &str, req: &Request, ctx: &RouterCtx) -> Response {
    let rest = path.get("/cohort/".len()..).unwrap_or_default();
    let (id, kind) = if let Some(id) = rest.strip_suffix(".svg") {
        (id, "svg")
    } else if let Some((id, kind)) = rest.split_once('/') {
        (id, kind)
    } else {
        return error_json(404, "no such route");
    };
    let snapshot = ctx.state.snapshot();
    let handle = match ctx.cohorts.lookup(id, snapshot.version) {
        CohortLookup::Hit(handle) => handle,
        CohortLookup::Stale { version, query } => {
            return Response::json(
                410,
                format!(
                    "{{\"error\":\"cohort is stale\",\"id\":{},\"materialized_version\":{},\
                     \"current_version\":{},\"query\":{},\
                     \"hint\":\"POST /cohort with the query to re-materialize\"}}",
                    json_string(id),
                    version,
                    snapshot.version,
                    json_string(&query)
                ),
            );
        }
        CohortLookup::Missing => return error_json(404, &format!("no cohort {id:?}")),
    };
    // Cold reads decode the frozen bitmap once and aggregate; the
    // planner never runs. Warm reads stop at the response cache.
    let decode = || {
        let mut positions = Vec::with_capacity(handle.count as usize);
        handle.positions.decode_into(0, &mut positions);
        positions
    };
    match kind {
        "stats" => {
            let k = req.param_or("k", 20_usize).clamp(1, 200);
            let suffix = format!("cohort:{}:stats:{k}", handle.id);
            cached(ctx, &snapshot, &suffix, || {
                let profile =
                    snapshot.workbench.cohort_profile(&decode(), snapshot.reference_date, k);
                Response::json(
                    200,
                    format!(
                        "{{\"id\":{},\"version\":{},\"profile\":{}}}",
                        json_string(&handle.id),
                        handle.version,
                        profile.to_json()
                    ),
                )
            })
        }
        "timeline" => {
            let suffix = format!("cohort:{}:timeline", handle.id);
            cached(ctx, &snapshot, &suffix, || {
                let months = snapshot.workbench.cohort_monthly(&decode());
                let mut body = String::with_capacity(64 + months.len() * 16);
                let _ = write!(
                    body,
                    "{{\"id\":{},\"version\":{},\"count\":{},\"months\":[",
                    json_string(&handle.id),
                    handle.version,
                    handle.count
                );
                for (i, (month, n)) in months.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    let _ =
                        write!(body, "[\"{:04}-{:02}\",{n}]", month.year(), month.month());
                }
                body.push_str("]}");
                Response::json(200, body)
            })
        }
        "svg" => {
            let w = dim(req, "w", 900.0);
            let h = dim(req, "h", 600.0);
            let suffix = format!("cohort:{}:svg:{w}:{h}", handle.id);
            cached(ctx, &snapshot, &suffix, || {
                let profile =
                    snapshot.workbench.cohort_profile(&decode(), snapshot.reference_date, 20);
                let svg = pastas_viz::histogram::panel_svg(&profile, w, h);
                Response::with_body(200, "image/svg+xml", svg)
            })
        }
        other => error_json(404, &format!("no cohort endpoint {other:?}")),
    }
}

/// `POST /ingest?format=<source>`: parse one source increment and queue
/// its deltas for the compaction worker. `202 Accepted` with parse
/// counts, or `429 Too Many Requests` + `Retry-After` when the bounded
/// queue is full — explicit backpressure, never an unbounded buffer.
fn ingest(req: &Request, ctx: &RouterCtx) -> Response {
    let Some(format) = req.param("format").and_then(DeltaFormat::from_name) else {
        return error_json(
            400,
            "ingest needs ?format= one of persons|claims|hospital|municipal|prescriptions",
        );
    };
    let text = req.body_str();
    if text.trim().is_empty() {
        return error_json(400, "empty ingest body: POST the source rows, header line first");
    }
    match ctx.ingest.try_push(format, &text) {
        Ok(receipt) => Response::json(
            202,
            format!(
                "{{\"accepted\":true,\"format\":\"{}\",\"rows_read\":{},\"parse_errors\":{},\
                 \"unlinked_rows\":{},\"entries\":{},\"queue_depth\":{}}}",
                format.name(),
                receipt.rows_read,
                receipt.parse_errors,
                receipt.unlinked_rows,
                receipt.entries,
                receipt.queue_depth
            ),
        ),
        Err(full) => Response::retry_later_json(
            429,
            format!("{{\"error\":\"ingest queue full\",\"queue_depth\":{}}}", full.queue_depth),
            ctx.ingest.retry_after_secs(),
        ),
    }
}

/// `POST /compact`: synchronously drain the ingest queue, apply every
/// pending delta, fold the side-index, and publish. The quiesce point —
/// after a 200, everything previously 202'd is queryable from the main
/// index.
fn compact(ctx: &RouterCtx) -> Response {
    let report = ctx.ingest.drain_and_apply(&ctx.state, true);
    let snapshot = ctx.state.snapshot();
    Response::json(
        200,
        format!(
            "{{\"version\":{},\"batches_applied\":{},\"entries_applied\":{},\
             \"compacted\":{},\"side_rows\":{}}}",
            snapshot.version,
            report.batches,
            report.entries_applied,
            report.compacted,
            snapshot.workbench.index().side_rows()
        ),
    )
}

fn command(req: &Request, ctx: &RouterCtx) -> Response {
    let doc = match Json::parse(&req.body_str()) {
        Ok(doc) => doc,
        Err(e) => return error_json(400, &format!("bad JSON: {e}")),
    };
    let command = match parse_command(&doc) {
        Ok(c) => c,
        Err(message) => return error_json(400, &message),
    };
    match ctx.state.apply(&command) {
        Ok(version) => Response::json(200, format!("{{\"version\":{version}}}")),
        Err(e) => error_json(400, &e.to_string()),
    }
}

fn parse_command(doc: &Json) -> Result<ViewCommand, String> {
    let name = doc
        .get("command")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"command\"".to_owned())?;
    match name {
        "sort" => {
            let key = match doc.get("key").and_then(Json::as_str) {
                Some("patient_id") | None => SortKey::PatientId,
                Some("first_entry") => SortKey::FirstEntry,
                Some("entry_count") => SortKey::EntryCount,
                Some("span") => SortKey::Span,
                Some(other) => return Err(format!("unknown sort key {other:?}")),
            };
            Ok(ViewCommand::Sort(key))
        }
        "align" => {
            let pattern = doc
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or_else(|| "align needs \"pattern\"".to_owned())?;
            Ok(ViewCommand::AlignOnCode(pattern.to_owned()))
        }
        "clear_alignment" => Ok(ViewCommand::ClearAlignment),
        "filter" => match doc.get("code").and_then(Json::as_str) {
            Some(pattern) => EntryPredicate::code_regex(pattern)
                .map(|p| ViewCommand::SetFilter(Some(p)))
                .map_err(|e| e.to_string()),
            None => match doc.get("kind").and_then(Json::as_str) {
                Some("diagnosis") => Ok(ViewCommand::SetFilter(Some(EntryPredicate::IsDiagnosis))),
                Some("medication") => {
                    Ok(ViewCommand::SetFilter(Some(EntryPredicate::IsMedication)))
                }
                Some("interval") => Ok(ViewCommand::SetFilter(Some(EntryPredicate::IsInterval))),
                Some(other) => Err(format!("unknown filter kind {other:?}")),
                None => Ok(ViewCommand::SetFilter(None)),
            },
        },
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Clamp a user-supplied canvas dimension to something renderable.
fn dim(req: &Request, name: &str, default: f64) -> f64 {
    req.param_or(name, default).clamp(16.0, 16_384.0)
}

fn cohort_svg(req: &Request, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let w = dim(req, "w", 900.0);
    let h = dim(req, "h", 500.0);
    let overview = req.param("overview").is_some_and(|v| v != "0");
    let suffix = format!("svg:{w}:{h}:{}", u8::from(overview));
    cached(ctx, &snapshot, &suffix, || {
        let svg = if overview {
            snapshot.workbench.render_overview_svg(w, h)
        } else {
            snapshot.workbench.render_svg(w, h)
        };
        Response::with_body(200, "image/svg+xml", svg)
    })
}

fn cohort_txt(req: &Request, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let cols = req.param_or("cols", 100_usize).clamp(16, 1024);
    let rows = req.param_or("rows", 30_usize).clamp(4, 512);
    let suffix = format!("txt:{cols}:{rows}");
    cached(ctx, &snapshot, &suffix, || {
        Response::text(200, snapshot.workbench.render_ascii(cols, rows))
    })
}

fn timeline(path: &str, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let raw = path.get("/timeline/".len()..).unwrap_or_default();
    let Ok(id) = raw.trim_start_matches('P').parse::<u64>() else {
        return error_json(400, &format!("bad patient id {raw:?}"));
    };
    let suffix = format!("timeline:{id}");
    cached(ctx, &snapshot, &suffix, || {
        match snapshot.workbench.export_personal_timeline(PatientId(id)) {
            Some(html) => Response::with_body(200, "text/html; charset=utf-8", html),
            None => error_json(404, &format!("no patient {raw}")),
        }
    })
}

fn details(req: &Request, ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let w = dim(req, "w", 900.0);
    let h = dim(req, "h", 500.0);
    let (Some(x), Some(y)) = (
        req.param("x").and_then(|v| v.parse::<f64>().ok()),
        req.param("y").and_then(|v| v.parse::<f64>().ok()),
    ) else {
        return error_json(400, "details needs numeric x and y");
    };
    if !(x.is_finite() && y.is_finite()) {
        return error_json(400, "details needs finite x and y");
    }
    let viewport = snapshot.workbench.default_viewport(w, h);
    match snapshot.workbench.details_at(&viewport, x, y) {
        Some(text) => Response::json(
            200,
            format!(
                "{{\"version\":{},\"details\":{}}}",
                snapshot.version,
                json_string(&text)
            ),
        ),
        None => error_json(404, "nothing under the cursor"),
    }
}

fn metrics_response(ctx: &RouterCtx) -> Response {
    let snapshot = ctx.state.snapshot();
    let wb = &snapshot.workbench;
    let index_footprint = wb.index().footprint();
    let cache_lookups = ctx.cache.hits() + ctx.cache.misses();
    let hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        ctx.cache.hits() as f64 / cache_lookups as f64
    };
    let mut extra: Vec<(&'static str, f64)> = vec![
        ("state_version", snapshot.version as f64),
        ("patients", wb.collection().len() as f64),
        ("cache_entries", ctx.cache.len() as f64),
        ("cache_bytes", ctx.cache.bytes() as f64),
        ("cache_hits", ctx.cache.hits() as f64),
        ("cache_misses", ctx.cache.misses() as f64),
        ("cache_hit_rate", hit_rate),
        ("selection_cache_entries", wb.selection_cache_len() as f64),
        ("selection_cache_hits", wb.selection_cache_hits() as f64),
        ("selection_cache_misses", wb.selection_cache_misses() as f64),
        ("select_index_hits", wb.select_index_hits() as f64),
        ("select_scan_fallbacks", wb.select_scan_fallbacks() as f64),
        ("pattern_candidates", wb.pattern_candidates() as f64),
        ("pattern_automaton_runs", wb.pattern_automaton_runs() as f64),
        ("shards", index_footprint.shards as f64),
        ("postings_compressed_bytes", index_footprint.postings_compressed_bytes as f64),
        (
            "postings_uncompressed_bytes_est",
            index_footprint.postings_uncompressed_bytes_est as f64,
        ),
        ("side_index_rows", wb.index().side_rows() as f64),
        ("side_index_postings", wb.index().side_postings_total() as f64),
        ("ingest_queue_depth", ctx.ingest.depth() as f64),
        ("ingest_pending_entries", ctx.ingest.pending_entries() as f64),
        ("ingest_batches_total", ctx.ingest.batches_total() as f64),
        ("ingest_rejected_total", ctx.ingest.rejected_total() as f64),
        ("ingest_applied_entries_total", ctx.ingest.applied_entries_total() as f64),
        ("compactions_total", ctx.ingest.compactions_total() as f64),
        ("cohort_registry_size", ctx.cohorts.len() as f64),
        ("cohort_registry_bytes", ctx.cohorts.bytes() as f64),
        ("cohort_materializations_total", ctx.cohorts.materializations_total() as f64),
        ("cohort_stale_hits_total", ctx.cohorts.stale_hits_total() as f64),
    ];
    if let Some(pool) = ctx.pool_stats.get() {
        extra.push(("queue_depth", pool.queue_depth() as f64));
        extra.push(("connections_in_flight", pool.in_flight() as f64));
        extra.push(("worker_panics", pool.panic_count() as f64));
        extra.push(("connections_completed", pool.completed() as f64));
    }
    Response::json(200, ctx.metrics.render_json(&extra))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestReader};
    use pastas_core::Workbench;
    use pastas_synth::{generate_collection, SynthConfig};

    fn ctx() -> RouterCtx {
        RouterCtx::new(
            Workbench::from_collection(generate_collection(SynthConfig::with_patients(150), 11)),
            64,
            1 << 20,
        )
    }

    fn request(raw: &[u8]) -> Request {
        RequestReader::new(raw, Limits::default()).next_request().unwrap()
    }

    fn post(path: &str, body: &str) -> Request {
        request(
            format!("POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len())
                .as_bytes(),
        )
    }

    fn get(path: &str) -> Request {
        request(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
    }

    #[test]
    fn select_returns_ids_and_caches_the_repeat() {
        let ctx = ctx();
        let first = route(&post("/select", "has(T90)"), &ctx);
        assert_eq!(first.status, 200);
        let body = String::from_utf8(first.body.clone()).unwrap();
        assert!(body.contains("\"count\":"), "{body}");
        assert!(body.contains("\"ids\":[\"P"), "{body}");
        assert_eq!(ctx.cache.misses(), 1);
        let second = route(&post("/select", "has(T90)"), &ctx);
        assert_eq!(second.body, first.body);
        assert_eq!(ctx.cache.hits(), 1, "repeat is a cache hit");
        // Whitespace-insensitive via the canonical query fingerprint.
        let third = route(&post("/select", "  has(T90)  "), &ctx);
        assert_eq!(third.body, first.body);
        assert_eq!(ctx.cache.hits(), 2);
    }

    #[test]
    fn select_explain_renders_the_plan() {
        let ctx = ctx();
        // Compound query with a negated code clause: the acceptance-
        // criteria shape. Must be index-served, and say so.
        let resp = route(&post("/select?explain=1", "has(K.*) and lacks(T90)"), &ctx);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body.clone()).unwrap();
        assert!(body.contains("\"explain\":{"), "{body}");
        assert!(body.contains("\"full_scan\":false"), "{body}");
        assert!(body.contains("\"op\":\"IndexFetch\""), "{body}");
        assert!(Json::parse(&body).is_ok(), "explain response is valid JSON");
        // Same query without explain: same count, no explain payload,
        // distinct cache slot.
        let plain = route(&post("/select", "has(K.*) and lacks(T90)"), &ctx);
        let plain_body = String::from_utf8(plain.body).unwrap();
        assert!(!plain_body.contains("explain"), "{plain_body}");
        assert_eq!(ctx.cache.misses(), 2, "explain and plain cache separately");
        // And the counters surfaced through /metrics reflect the planner.
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"select_index_hits\":"), "{metrics}");
        assert!(metrics.contains("\"select_scan_fallbacks\":0"), "{metrics}");
    }

    #[test]
    fn select_explain_renders_pattern_scans() {
        let ctx = ctx();
        // A temporal sequence over two covered code steps: the planner
        // must prefilter through the index, and the explain tree must
        // show the PatternScan with its candidate counters.
        let resp = route(&post("/select?explain=1", "seq(T90 then[0d..3650d] K.*)"), &ctx);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"op\":\"PatternScan\""), "{body}");
        assert!(body.contains("\"counters\""), "{body}");
        assert!(body.contains("\"full_scan\":false"), "{body}");
        assert!(Json::parse(&body).is_ok(), "{body}");
        // The pattern gauges made it to /metrics.
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"pattern_candidates\":"), "{metrics}");
        assert!(metrics.contains("\"pattern_automaton_runs\":"), "{metrics}");
        assert!(!metrics.contains("\"pattern_candidates\":0"), "explain ran: {metrics}");
    }

    #[test]
    fn commuted_select_spellings_share_a_cached_response() {
        let ctx = ctx();
        let first = route(&post("/select", "has(T90) and age(40..90)"), &ctx);
        assert_eq!(first.status, 200);
        assert_eq!(ctx.cache.misses(), 1);
        let swapped = route(&post("/select", "age(40..90) and has(T90)"), &ctx);
        assert_eq!(swapped.body, first.body);
        assert_eq!(ctx.cache.hits(), 1, "commuted clauses hit the response cache");
    }

    #[test]
    fn snapshot_swap_to_sharded_store_keeps_warm_select_correct() {
        let ctx = ctx();
        let query = "has(K.*) and lacks(T90)";
        let v1 = route(&post("/select", query), &ctx);
        assert_eq!(v1.status, 200);
        let v1_body = String::from_utf8(v1.body.clone()).unwrap();
        assert!(v1_body.contains("\"version\":1"), "{v1_body}");
        route(&post("/select", query), &ctx);
        assert_eq!(ctx.cache.hits(), 1, "v1 cache is warm");
        // The same population rebuilt on a patient-range-sharded store
        // (three arenas), published as version 2 over the warm cache.
        let config = SynthConfig { shard_patients: 64, ..SynthConfig::with_patients(150) };
        let collection = generate_collection(config, 11);
        assert_eq!(collection.sharded_store().shard_count(), 3);
        assert_eq!(ctx.state.replace(Workbench::from_collection(collection)), 2);
        let v2 = route(&post("/select", query), &ctx);
        assert_eq!(v2.status, 200);
        let v2_body = String::from_utf8(v2.body).unwrap();
        assert!(v2_body.contains("\"version\":2"), "{v2_body}");
        assert_eq!(ctx.cache.hits(), 1, "stale v1 entry is unreachable, not served");
        // Same cohort either way: identical count and ids.
        let after = |b: &str, k: &str| b.split(k).nth(1).map(str::to_owned);
        assert_eq!(after(&v1_body, "\"count\":"), after(&v2_body, "\"count\":"));
        assert_eq!(after(&v1_body, "\"ids\":"), after(&v2_body, "\"ids\":"));
        // The v2 repeat is served warm again.
        let repeat = route(&post("/select", query), &ctx);
        assert_eq!(ctx.cache.hits(), 2, "v2 repeat hits the cache");
        assert_eq!(String::from_utf8(repeat.body).unwrap(), v2_body);
        // And the postings gauges are visible on /metrics.
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"shards\":1"), "{metrics}");
        assert!(metrics.contains("\"postings_compressed_bytes\":"), "{metrics}");
        assert!(metrics.contains("\"postings_uncompressed_bytes_est\":"), "{metrics}");
    }

    const DELTA_PERSONS: &str = "nin;birth_date;sex\nNIN-0900001;1950-01-01;F\n";
    const DELTA_CLAIMS: &str =
        "claim_id;patient;date;provider;icpc;note\nX1;NIN-0900001;04.05.2013;GP;T90;\n";

    fn count_of(body: &[u8]) -> u64 {
        let text = String::from_utf8_lossy(body);
        Json::parse(&text)
            .ok()
            .and_then(|doc| doc.get("count").and_then(|c| c.as_f64()))
            .map(|v| v as u64)
            .expect("count field")
    }

    #[test]
    fn ingest_then_compact_makes_the_delta_selectable() {
        let ctx = ctx();
        let before = count_of(&route(&post("/select", "has(T90)"), &ctx).body);
        let accepted = route(&post("/ingest?format=persons", DELTA_PERSONS), &ctx);
        assert_eq!(accepted.status, 202);
        let accepted = route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx);
        assert_eq!(accepted.status, 202);
        let body = String::from_utf8(accepted.body).unwrap();
        assert!(body.contains("\"accepted\":true"), "{body}");
        assert!(body.contains("\"entries\":1"), "{body}");
        let compacted = route(&post("/compact", ""), &ctx);
        assert_eq!(compacted.status, 200);
        let body = String::from_utf8(compacted.body).unwrap();
        assert!(body.contains("\"batches_applied\":2"), "{body}");
        assert!(body.contains("\"compacted\":true"), "{body}");
        assert!(body.contains("\"side_rows\":0"), "{body}");
        let after = count_of(&route(&post("/select", "has(T90)"), &ctx).body);
        assert_eq!(after, before + 1, "streamed patient joins the cohort");
        // Replaying the same rows is absorbed by fingerprint dedup: the
        // queue accepts them, application drops them, nothing re-publishes.
        let version = ctx.state.version();
        route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx);
        let second = route(&post("/compact", ""), &ctx);
        assert_eq!(second.status, 200);
        assert_eq!(ctx.state.version(), version, "duplicate delta publishes nothing");
        // The ingest gauges made it to /metrics.
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"compactions_total\":1"), "{metrics}");
        assert!(metrics.contains("\"ingest_batches_total\":3"), "{metrics}");
        assert!(metrics.contains("\"ingest_applied_entries_total\":1"), "{metrics}");
        assert!(metrics.contains("\"side_index_rows\":0"), "{metrics}");
        assert!(metrics.contains("\"ingest_queue_depth\":0"), "{metrics}");
    }

    /// The response-cache invalidation regression the streaming path must
    /// not break: a `/select` answered before an ingest is never served
    /// again after the compaction publishes, while caching keeps working
    /// for post-compaction responses.
    #[test]
    fn ingest_invalidates_stale_selects_without_breaking_the_cache() {
        let ctx = ctx();
        let stale = route(&post("/select", "has(T90)"), &ctx);
        let unrelated = route(&post("/select", "has(K74)"), &ctx);
        let unrelated_count = count_of(&unrelated.body);
        assert_eq!(ctx.cache.misses(), 2);
        route(&post("/ingest?format=persons", DELTA_PERSONS), &ctx);
        route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx);
        assert_eq!(route(&post("/compact", ""), &ctx).status, 200);
        // The stale pre-ingest answer is unreachable (new version in the
        // key): the select recomputes and sees the streamed patient.
        let hits_before = ctx.cache.hits();
        let fresh = route(&post("/select", "has(T90)"), &ctx);
        assert_eq!(ctx.cache.hits(), hits_before, "stale entry not served");
        assert_eq!(count_of(&fresh.body), count_of(&stale.body) + 1);
        assert_ne!(fresh.body, stale.body);
        // Caching still works at the new version, for this query and for
        // one the ingest did not touch.
        let repeat = route(&post("/select", "has(T90)"), &ctx);
        assert_eq!(ctx.cache.hits(), hits_before + 1, "fresh entry is cached");
        assert_eq!(repeat.body, fresh.body);
        let unrelated_fresh = route(&post("/select", "has(K74)"), &ctx);
        assert_eq!(count_of(&unrelated_fresh.body), unrelated_count);
        route(&post("/select", "has(K74)"), &ctx);
        assert_eq!(ctx.cache.hits(), hits_before + 2);
    }

    #[test]
    fn ingest_backpressure_answers_429_with_retry_after() {
        let ctx = RouterCtx::with_ingest_config(
            Workbench::from_collection(generate_collection(SynthConfig::with_patients(50), 3)),
            64,
            1 << 20,
            crate::ingest::IngestConfig { queue_capacity: 1, ..Default::default() },
        );
        assert_eq!(route(&post("/ingest?format=persons", DELTA_PERSONS), &ctx).status, 202);
        let refused = route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx);
        assert_eq!(refused.status, 429);
        assert!(
            refused.headers.iter().any(|(n, v)| n == "Retry-After" && !v.is_empty()),
            "{:?}",
            refused.headers
        );
        assert!(String::from_utf8(refused.body).unwrap().contains("queue full"));
        // Draining the queue re-opens admission.
        assert_eq!(route(&post("/compact", ""), &ctx).status, 200);
        assert_eq!(route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx).status, 202);
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"ingest_rejected_total\":1"), "{metrics}");
    }

    fn cohort_id(body: &[u8]) -> String {
        let text = String::from_utf8_lossy(body);
        Json::parse(&text)
            .ok()
            .and_then(|doc| doc.get("id").and_then(Json::as_str).map(str::to_owned))
            .expect("id field")
    }

    #[test]
    fn cohort_materialize_then_read_stats_timeline_and_svg() {
        let ctx = ctx();
        let made = route(&post("/cohort", "has(T90)"), &ctx);
        assert_eq!(made.status, 201);
        let made_body = String::from_utf8(made.body.clone()).unwrap();
        assert!(made_body.contains("\"version\":1"), "{made_body}");
        let id = cohort_id(&made.body);
        let count = count_of(&made.body);
        assert!(count > 0, "synthetic collection has T90 patients");
        // An equivalent spelling at the same version dedups to the
        // same handle instead of burning a new id.
        let again = route(&post("/cohort", "  has(T90)  "), &ctx);
        assert_eq!(again.status, 201);
        assert_eq!(cohort_id(&again.body), id);
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"cohort_registry_size\":1"), "{metrics}");
        assert!(metrics.contains("\"cohort_materializations_total\":1"), "{metrics}");
        assert!(metrics.contains("\"cohort_registry_bytes\":"), "{metrics}");

        let stats = route(&get(&format!("/cohort/{id}/stats")), &ctx);
        assert_eq!(stats.status, 200);
        let stats_body = String::from_utf8(stats.body).unwrap();
        assert!(Json::parse(&stats_body).is_ok(), "stats is valid JSON: {stats_body}");
        assert!(stats_body.contains(&format!("\"cohort_size\":{count}")), "{stats_body}");
        assert!(stats_body.contains("\"age_band\""), "{stats_body}");
        assert!(stats_body.contains("\"icd_chapter\""), "{stats_body}");

        let timeline = route(&get(&format!("/cohort/{id}/timeline")), &ctx);
        assert_eq!(timeline.status, 200);
        let timeline_body = String::from_utf8(timeline.body).unwrap();
        assert!(timeline_body.contains("\"months\":[[\""), "{timeline_body}");

        let svg = route(&get(&format!("/cohort/{id}.svg?w=800&h=500")), &ctx);
        assert_eq!(svg.status, 200);
        let svg_body = String::from_utf8(svg.body).unwrap();
        assert!(svg_body.contains("<svg"), "{svg_body}");
        assert!(svg_body.contains("age band"), "{svg_body}");

        assert_eq!(route(&get(&format!("/cohort/{id}/nope")), &ctx).status, 404);
        assert_eq!(route(&get("/cohort/c999/stats"), &ctx).status, 404);
        assert_eq!(route(&get("/cohort"), &ctx).status, 405);
        assert_eq!(route(&post("/cohort", ""), &ctx).status, 400);
        assert_eq!(route(&post("/cohort", "has(T90["), &ctx).status, 400);
    }

    /// The acceptance criterion for the registry hit path: a warm
    /// `/cohort/{id}/stats` answers without invoking the planner. The
    /// plan-path counters (selection cache, index hits, scan fallbacks)
    /// must not move across stats reads — cold or warm.
    #[test]
    fn cohort_stats_answers_without_invoking_the_planner() {
        let ctx = ctx();
        let made = route(&post("/cohort", "has(K.*) and lacks(T90)"), &ctx);
        assert_eq!(made.status, 201);
        let id = cohort_id(&made.body);
        let counters = || {
            let snapshot = ctx.state.snapshot();
            let wb = &snapshot.workbench;
            (
                wb.selection_cache_hits(),
                wb.selection_cache_misses(),
                wb.select_index_hits(),
                wb.select_scan_fallbacks(),
            )
        };
        let before = counters();
        let cold = route(&get(&format!("/cohort/{id}/stats?k=10")), &ctx);
        assert_eq!(cold.status, 200);
        assert_eq!(counters(), before, "cold stats aggregates the frozen bitmap, no planning");
        let hits = ctx.cache.hits();
        let warm = route(&get(&format!("/cohort/{id}/stats?k=10")), &ctx);
        assert_eq!(warm.body, cold.body);
        assert_eq!(ctx.cache.hits(), hits + 1, "warm stats is a response-cache hit");
        assert_eq!(counters(), before, "warm stats never touches the planner");
    }

    #[test]
    fn publishing_a_new_version_invalidates_cohort_handles() {
        let ctx = ctx();
        let made = route(&post("/cohort", "has(T90)"), &ctx);
        let id = cohort_id(&made.body);
        let count = count_of(&made.body);
        assert_eq!(route(&get(&format!("/cohort/{id}/stats")), &ctx).status, 200);
        route(&post("/ingest?format=persons", DELTA_PERSONS), &ctx);
        route(&post("/ingest?format=claims", DELTA_CLAIMS), &ctx);
        assert_eq!(route(&post("/compact", ""), &ctx).status, 200);
        let published = ctx.state.version();
        assert!(published > 1, "compaction published a new version");
        // First touch after the publish: 410 with the re-materialize hint.
        let gone = route(&get(&format!("/cohort/{id}/stats")), &ctx);
        assert_eq!(gone.status, 410);
        let gone_body = String::from_utf8(gone.body).unwrap();
        assert!(gone_body.contains("\"materialized_version\":1"), "{gone_body}");
        assert!(gone_body.contains(&format!("\"current_version\":{published}")), "{gone_body}");
        assert!(gone_body.contains("\"query\":\"has(T90)\""), "{gone_body}");
        assert!(gone_body.contains("re-materialize"), "{gone_body}");
        // The stale handle was dropped on that touch: now it's just gone.
        assert_eq!(route(&get(&format!("/cohort/{id}/stats")), &ctx).status, 404);
        // Re-materializing at version 2 sees the streamed patient.
        let remade = route(&post("/cohort", "has(T90)"), &ctx);
        assert_eq!(remade.status, 201);
        let remade_body = String::from_utf8(remade.body.clone()).unwrap();
        assert!(remade_body.contains(&format!("\"version\":{published}")), "{remade_body}");
        assert_ne!(cohort_id(&remade.body), id, "stale id is not recycled");
        assert_eq!(count_of(&remade.body), count + 1);
        let metrics = String::from_utf8(route(&get("/metrics"), &ctx).body).unwrap();
        assert!(metrics.contains("\"cohort_stale_hits_total\":1"), "{metrics}");
        assert!(metrics.contains("\"cohort_registry_size\":1"), "{metrics}");
    }

    #[test]
    fn cohort_reads_cache_on_version_id_and_params() {
        let ctx = ctx();
        let a = cohort_id(&route(&post("/cohort", "has(T90)"), &ctx).body);
        let b = cohort_id(&route(&post("/cohort", "has(K74)"), &ctx).body);
        assert_ne!(a, b);
        let misses = ctx.cache.misses();
        route(&get(&format!("/cohort/{a}/stats?k=5")), &ctx);
        assert_eq!(ctx.cache.misses(), misses + 1);
        route(&get(&format!("/cohort/{a}/stats?k=5")), &ctx);
        assert_eq!(ctx.cache.misses(), misses + 1, "same (id, params) is warm");
        route(&get(&format!("/cohort/{a}/stats?k=7")), &ctx);
        assert_eq!(ctx.cache.misses(), misses + 2, "k is part of the key");
        route(&get(&format!("/cohort/{b}/stats?k=5")), &ctx);
        assert_eq!(ctx.cache.misses(), misses + 3, "cohort id is part of the key");
        route(&get(&format!("/cohort/{a}.svg?w=400&h=300")), &ctx);
        route(&get(&format!("/cohort/{a}.svg?w=400&h=300")), &ctx);
        assert_eq!(ctx.cache.misses(), misses + 4, "svg panel caches too");
    }

    #[test]
    fn ingest_rejects_bad_formats_and_methods() {
        let ctx = ctx();
        assert_eq!(route(&post("/ingest", DELTA_PERSONS), &ctx).status, 400);
        assert_eq!(route(&post("/ingest?format=nope", DELTA_PERSONS), &ctx).status, 400);
        assert_eq!(route(&post("/ingest?format=claims", "   "), &ctx).status, 400);
        assert_eq!(route(&get("/ingest"), &ctx).status, 405);
        assert_eq!(route(&get("/compact"), &ctx).status, 405);
    }

    #[test]
    fn select_count_only_and_errors() {
        let ctx = ctx();
        let resp = route(&post("/select?count_only=1", "has(T90)"), &ctx);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"count\":") && !body.contains("\"ids\""), "{body}");
        assert_eq!(route(&post("/select", ""), &ctx).status, 400);
        let bad = route(&post("/select", "has(T90["), &ctx);
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8(bad.body).unwrap().contains("\"error\""));
    }

    #[test]
    fn command_bumps_version_and_invalidates_cached_views() {
        let ctx = ctx();
        let svg1 = route(&get("/cohort.svg?w=400&h=300"), &ctx);
        assert_eq!(svg1.status, 200);
        assert_eq!(ctx.cache.misses(), 1);
        let resp = route(&post("/command", r#"{"command":"sort","key":"entry_count"}"#), &ctx);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"version\":2"));
        // New version → new cache key → recomputed (a miss), under a new order.
        let svg2 = route(&get("/cohort.svg?w=400&h=300"), &ctx);
        assert_eq!(svg2.status, 200);
        assert_eq!(ctx.cache.misses(), 2, "old cached view unreachable");
        assert_eq!(route(&post("/command", r#"{"command":"nope"}"#), &ctx).status, 400);
        assert_eq!(route(&post("/command", "not json"), &ctx).status, 400);
        assert_eq!(
            route(&post("/command", r#"{"command":"align","pattern":"T90["}"#), &ctx).status,
            400,
            "bad regex is a 400, not a new version"
        );
        assert_eq!(ctx.state.version(), 2);
    }

    #[test]
    fn renders_and_timeline() {
        let ctx = ctx();
        let svg = route(&get("/cohort.svg"), &ctx);
        assert!(String::from_utf8(svg.body).unwrap().contains("<svg"));
        let overview = route(&get("/cohort.svg?overview=1"), &ctx);
        assert!(String::from_utf8(overview.body).unwrap().contains("Overview"));
        let txt = route(&get("/cohort.txt?cols=80&rows=20"), &ctx);
        assert_eq!(String::from_utf8(txt.body).unwrap().lines().count(), 20);

        let id = ctx.state.snapshot().workbench.collection().histories()[0].id();
        let page = route(&get(&format!("/timeline/{id}")), &ctx);
        assert_eq!(page.status, 200);
        assert!(String::from_utf8(page.body).unwrap().contains("<svg"));
        assert_eq!(route(&get("/timeline/P9999999"), &ctx).status, 404);
        assert_eq!(route(&get("/timeline/xyz"), &ctx).status, 400);
    }

    #[test]
    fn details_on_demand() {
        let ctx = ctx();
        let snapshot = ctx.state.snapshot();
        let viewport = snapshot.workbench.default_viewport(900.0, 500.0);
        let (_, hits) = snapshot.workbench.layout(&viewport);
        let record = hits.iter().next().expect("something drawn");
        let cx = (record.bbox.0 + record.bbox.2) / 2.0;
        let cy = (record.bbox.1 + record.bbox.3) / 2.0;
        let resp = route(&get(&format!("/details?x={cx}&y={cy}")), &ctx);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"details\":\""));
        assert_eq!(route(&get("/details?x=-9999&y=-9999"), &ctx).status, 404);
        assert_eq!(route(&get("/details?x=abc&y=1"), &ctx).status, 400);
        assert_eq!(route(&get("/details"), &ctx).status, 400);
    }

    #[test]
    fn metrics_and_routing_edges() {
        let ctx = ctx();
        let _ = route(&post("/select", "has(T90)"), &ctx);
        let resp = route(&get("/metrics"), &ctx);
        let body = String::from_utf8(resp.body).unwrap();
        for field in [
            "\"requests_total\"",
            "\"latency_p50_ms\"",
            "\"cache_hit_rate\"",
            "\"state_version\":1",
            "\"selection_cache_misses\":1",
        ] {
            assert!(body.contains(field), "missing {field} in {body}");
        }
        assert!(Json::parse(&body).is_ok(), "metrics is valid JSON");
        assert_eq!(route(&get("/nope"), &ctx).status, 404);
        assert_eq!(route(&get("/select"), &ctx).status, 405);
        assert_eq!(route(&request(b"DELETE /command HTTP/1.1\r\n\r\n"), &ctx).status, 405);
        assert_eq!(route(&get("/healthz"), &ctx).status, 200);
    }
}
