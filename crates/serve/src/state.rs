//! Shared server state: `Arc`-swapped immutable snapshots.
//!
//! Readers (`/select`, `/cohort.svg`, …) clone an `Arc` out of a read
//! lock held for nanoseconds and then work entirely on their private
//! snapshot — a slow render never blocks a `/command` or an ingest, and
//! vice versa. Writers serialize among themselves, build the *next*
//! snapshot off to the side ([`pastas_core::Workbench::snapshot`] makes
//! that an O(histories) pointer copy), and publish it with one pointer
//! swap. Every snapshot carries a monotone version; response-cache keys
//! include it, so stale cached responses are unreachable the moment a new
//! snapshot lands.

use pastas_core::{CoreError, IngestStats, ViewCommand, Workbench};
use pastas_ingest::DeltaBatch;
use pastas_time::Date;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One immutable published state.
pub struct Snapshot {
    /// The workbench as of this version (never mutated once published).
    pub workbench: Workbench,
    /// Monotone publication counter (1 = the initial state).
    pub version: u64,
    /// The date `age(..)` clauses evaluate at: the collection's last
    /// event. Computed once at publication — `CollectionStats` walks every
    /// entry, far too slow for the per-request path.
    pub reference_date: Date,
}

impl Snapshot {
    /// The response-cache key prefix binding an entry to this exact state:
    /// publication version plus collection fingerprint.
    pub fn cache_prefix(&self) -> String {
        format!(
            "v{}:c{:016x}",
            self.version,
            self.workbench.collection_fingerprint()
        )
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Run at every publication: validates each history's span and
    /// ordering, each *distinct* backing arena exactly once (collections
    /// usually share one store, so this stays O(entries), not
    /// O(histories × entries)), and the inverted code index.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        let mut seen_stores = Vec::new();
        for history in self.workbench.collection().histories() {
            history.debug_validate();
            let ptr = std::sync::Arc::as_ptr(history.store());
            if !seen_stores.contains(&ptr) {
                seen_stores.push(ptr);
                history.store().debug_validate();
            }
        }
        self.workbench.index().debug_validate();
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}
}

/// The swap point.
pub struct ServeState {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers; readers never take it.
    write: Mutex<()>,
    version: AtomicU64,
}

impl ServeState {
    /// Publish an initial workbench as version 1.
    pub fn new(workbench: Workbench) -> ServeState {
        let reference_date = reference_date_of(&workbench);
        let initial = Arc::new(Snapshot { workbench, version: 1, reference_date });
        initial.debug_validate();
        ServeState {
            current: RwLock::new(initial),
            write: Mutex::new(()),
            version: AtomicU64::new(1),
        }
    }

    /// The current snapshot (an `Arc` clone; the caller can hold it for as
    /// long as it likes without blocking anyone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Current publication version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Apply a view command against the current snapshot and publish the
    /// result as a new version. Returns the new version. On error nothing
    /// is published.
    pub fn apply(&self, command: &ViewCommand) -> Result<u64, CoreError> {
        let _writer = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.snapshot();
        let mut workbench = base.workbench.snapshot();
        // lint:allow(blocking-call-under-lock) the writer mutex exists to serialize writers; readers never take it, so the par join only delays other writers
        workbench.apply_command(command)?;
        // lint:allow(guard-held-across-snapshot-publish) publication under the writer mutex is the design: readers go through `current`, never `write`
        Ok(self.publish(workbench))
    }

    /// Replace the whole workbench (the batch-reload path) and publish
    /// it. Returns the new version.
    pub fn replace(&self, workbench: Workbench) -> u64 {
        let _writer = self.write.lock().unwrap_or_else(|e| e.into_inner());
        // lint:allow(guard-held-across-snapshot-publish) publication under the writer mutex is the design: readers go through `current`, never `write`
        self.publish(workbench)
    }

    /// Apply streaming delta batches to a clone of the current snapshot
    /// and publish the result. The published snapshot still carries its
    /// side-index debt — readers see the appended rows immediately,
    /// served by the side-index, without waiting for a compaction.
    /// Publishes nothing when the batches net out to no change.
    pub fn ingest(&self, batches: &[DeltaBatch]) -> (u64, IngestStats) {
        let _writer = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.snapshot();
        let mut workbench = base.workbench.snapshot();
        let stats = workbench.apply_ingest(batches);
        if stats.patients_touched == 0 {
            return (base.version, stats);
        }
        // lint:allow(guard-held-across-snapshot-publish) publication under the writer mutex is the design: readers go through `current`, never `write`
        (self.publish(workbench), stats)
    }

    /// Fold the side-index into the main postings off to the side and
    /// publish the compacted state. Readers keep answering from the
    /// pre-compaction snapshot until the single pointer swap — the
    /// "pause" a reader can observe is one `Arc` clone. Returns `None`
    /// (publishing nothing) when there is no side-index debt.
    pub fn compact(&self) -> Option<u64> {
        let _writer = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.snapshot();
        let mut workbench = base.workbench.snapshot();
        if !workbench.compact() {
            return None;
        }
        // lint:allow(guard-held-across-snapshot-publish) publication under the writer mutex is the design: readers go through `current`, never `write`
        Some(self.publish(workbench))
    }

    fn publish(&self, workbench: Workbench) -> u64 {
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        let reference_date = reference_date_of(&workbench);
        let next = Arc::new(Snapshot { workbench, version, reference_date });
        // Debug builds prove the deep invariants of everything the
        // readers are about to share; release builds skip the walk.
        next.debug_validate();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
        version
    }
}

/// Walks the whole collection — call only at publication, never per
/// request.
fn reference_date_of(workbench: &Workbench) -> Date {
    workbench
        .collection()
        .stats()
        .last
        .map(|dt| dt.date())
        // lint:allow(no-panic-hot-path) 2013-01-01 is a valid constant date
        .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_query::SortKey;
    use pastas_synth::{generate_collection, SynthConfig};

    fn state() -> ServeState {
        ServeState::new(Workbench::from_collection(generate_collection(
            SynthConfig::with_patients(120),
            5,
        )))
    }

    #[test]
    fn commands_publish_new_versions_and_old_snapshots_survive() {
        let state = state();
        let before = state.snapshot();
        assert_eq!(before.version, 1);
        let v = state.apply(&ViewCommand::Sort(SortKey::EntryCount)).unwrap();
        assert_eq!(v, 2);
        let after = state.snapshot();
        assert_eq!(after.version, 2);
        // The pre-command snapshot still reads its own consistent state.
        assert_ne!(before.workbench.order(), after.workbench.order());
        assert_eq!(before.version, 1);
        // Same collection → same fingerprint, different version → new keys.
        assert_ne!(before.cache_prefix(), after.cache_prefix());
        assert_eq!(
            before.workbench.collection_fingerprint(),
            after.workbench.collection_fingerprint()
        );
    }

    #[test]
    fn failed_commands_publish_nothing() {
        let state = state();
        assert!(state.apply(&ViewCommand::AlignOnCode("T90[".into())).is_err());
        assert_eq!(state.version(), 1);
    }

    #[test]
    fn replace_swaps_the_collection() {
        let state = state();
        let fp_before = state.snapshot().workbench.collection_fingerprint();
        let v = state.replace(Workbench::from_collection(generate_collection(
            SynthConfig::with_patients(40),
            9,
        )));
        assert_eq!(v, 2);
        let snap = state.snapshot();
        assert_eq!(snap.workbench.collection().len(), 40);
        assert_ne!(snap.workbench.collection_fingerprint(), fp_before);
    }

    #[test]
    fn readers_share_the_selection_cache_across_versions() {
        use pastas_query::QueryBuilder;
        let state = state();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let a = state.snapshot();
        let _ = a.workbench.select_positions(&q);
        state.apply(&ViewCommand::Sort(SortKey::Span)).unwrap();
        let b = state.snapshot();
        let hits = b.workbench.selection_cache_hits();
        let _ = b.workbench.select_positions(&q);
        assert_eq!(
            b.workbench.selection_cache_hits(),
            hits + 1,
            "same collection, new version: selection cache still hits"
        );
    }
}
