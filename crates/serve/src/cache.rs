//! A bounded LRU response cache.
//!
//! Keys are strings of the form
//! `v{state version}:c{collection fingerprint}:{endpoint}:{params…}` —
//! the query component reuses [`pastas_query::HistoryQuery::fingerprint`],
//! so two structurally identical queries share an entry no matter how they
//! were written. Including the state version means a `/command` or ingest
//! swap *implicitly* invalidates every stale entry: old keys are simply
//! never asked for again and age out of the LRU.
//!
//! Bounded two ways (entry count and total body bytes) so a burst of
//! distinct heavy renders cannot balloon memory. Eviction is
//! least-recently-used by a monotone use tick; the scan is O(entries) but
//! entries are capped in the hundreds, so eviction stays in the noise next
//! to rendering.

use crate::http::Response;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Slot {
    last_used: u64,
    response: Arc<Response>,
}

struct Inner {
    slots: HashMap<String, Slot>,
    tick: u64,
    bytes: usize,
}

/// The cache. Cheap to share: lookups clone an `Arc`, not the body.
pub struct ResponseCache {
    inner: Mutex<Inner>,
    max_entries: usize,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// A cache bounded by `max_entries` entries and `max_bytes` total body
    /// bytes (both at least 1).
    pub fn new(max_entries: usize, max_bytes: usize) -> ResponseCache {
        ResponseCache {
            inner: Mutex::new(Inner { slots: HashMap::new(), tick: 0, bytes: 0 }),
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Response>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let response = Arc::clone(&slot.response);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used entries
    /// until both bounds hold. A body larger than the whole byte budget is
    /// simply not cached.
    pub fn put(&self, key: String, response: Arc<Response>) {
        let size = response.body.len();
        if size > self.max_bytes {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.slots.insert(key, Slot { last_used: tick, response }) {
            inner.bytes -= old.response.body.len();
        }
        inner.bytes += size;
        while inner.slots.len() > self.max_entries || inner.bytes > self.max_bytes {
            let Some(victim) = inner
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(slot) = inner.slots.remove(&victim) {
                inner.bytes -= slot.response.body.len();
            }
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached body bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the byte accounting is *exact* — the cached `bytes`
    /// counter equals the recomputed sum of resident body lengths — and
    /// both LRU bounds hold, and no slot claims a recency tick from the
    /// future.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let actual: usize = inner.slots.values().map(|s| s.response.body.len()).sum();
        assert_eq!(
            inner.bytes, actual,
            "cache: byte accounting drifted (counter {} vs resident {})",
            inner.bytes, actual
        );
        assert!(
            inner.slots.len() <= self.max_entries,
            "cache: {} entries exceed the bound {}",
            inner.slots.len(),
            self.max_entries
        );
        assert!(
            inner.bytes <= self.max_bytes,
            "cache: {} bytes exceed the budget {}",
            inner.bytes,
            self.max_bytes
        );
        for (key, slot) in &inner.slots {
            assert!(
                slot.last_used <= inner.tick,
                "cache: entry {key:?} used at tick {} but the clock is at {}",
                slot.last_used,
                inner.tick
            );
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}

    /// Fault injection for the poisoned-lock regression test: panic while
    /// holding the cache mutex, leaving it poisoned. Debug builds only —
    /// the `/__fault` route behind it does not exist in release binaries.
    #[cfg(debug_assertions)]
    #[doc(hidden)]
    pub fn poison_for_test(&self) {
        let _guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // lint:allow(no-panic-hot-path) deliberate fault injection, debug builds only
        panic!("injected fault: poisoning the response-cache lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> Arc<Response> {
        Arc::new(Response::text(200, body))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResponseCache::new(8, 1024);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), resp("body"));
        let hit = cache.get("a").expect("hit");
        assert_eq!(hit.body, b"body");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.bytes(), 4);
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let cache = ResponseCache::new(2, 1024);
        cache.put("a".into(), resp("1"));
        cache.put("b".into(), resp("2"));
        let _ = cache.get("a"); // refresh a; b is now LRU
        cache.put("c".into(), resp("3"));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn byte_bound_evicts_and_rejects_oversized() {
        let cache = ResponseCache::new(100, 10);
        cache.put("a".into(), resp("aaaa"));
        cache.put("b".into(), resp("bbbb"));
        cache.put("c".into(), resp("cccc")); // 12 bytes total -> evict LRU "a"
        assert!(cache.get("a").is_none());
        assert!(cache.bytes() <= 10);
        cache.put("huge".into(), resp("xxxxxxxxxxxxxxxx"));
        assert!(cache.get("huge").is_none(), "over-budget body is not cached");
    }

    #[test]
    fn reinserting_a_key_replaces_its_bytes() {
        let cache = ResponseCache::new(8, 1024);
        cache.put("a".into(), resp("aaaa"));
        cache.put("a".into(), resp("bb"));
        assert_eq!(cache.bytes(), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap().body, b"bb");
    }
}
