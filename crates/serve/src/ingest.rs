//! Streaming ingest: the bounded delta queue between `POST /ingest` and
//! the compaction worker.
//!
//! `POST /ingest` parses the posted rows *immediately* (so the client's
//! 202 carries real parse/linkage counts) against a registry that lives
//! for the whole server — persons batches register identities that later
//! claims/hospital/municipal/prescription batches resolve against. The
//! parsed [`DeltaBatch`] then waits in a **bounded** queue; when the queue
//! is full the endpoint answers `429 Too Many Requests` with a
//! `Retry-After` header instead of buffering without limit — the same
//! explicit-backpressure stance the acceptor takes with its 503 shed.
//!
//! A single compaction worker drains the queue, applies the deltas to a
//! cloned workbench ([`pastas_core::Workbench::apply_ingest`]), and
//! publishes the result as a new snapshot — readers keep answering from
//! the previous snapshot throughout and see the appended rows the moment
//! the pointer swaps, served by the query side-index. When the side-index
//! grows past a threshold (or on an explicit `POST /compact`), the worker
//! folds it into the main roaring postings and publishes again.

use crate::state::ServeState;
use pastas_core::Workbench;
use pastas_ingest::{parse_delta, DeltaBatch, DeltaFormat, IdentityRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Ingest tuning knobs, a sub-config of
/// [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Bounded queue of parsed-but-unapplied delta batches; beyond this
    /// `POST /ingest` answers 429 with `Retry-After`.
    pub queue_capacity: usize,
    /// Side-index rows that trigger a background compaction.
    pub compact_threshold: usize,
    /// `Retry-After` seconds advertised on ingest 429s.
    pub retry_after_secs: u32,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig { queue_capacity: 256, compact_threshold: 4096, retry_after_secs: 1 }
    }
}

/// What `POST /ingest` tells the client about an accepted batch.
#[derive(Debug, Clone)]
pub struct IngestReceipt {
    /// Data rows read from the posted text (header excluded).
    pub rows_read: usize,
    /// Rows that failed to parse (counted, not fatal — batch semantics).
    pub parse_errors: usize,
    /// Rows whose patient identifier resolved to no registered person.
    pub unlinked_rows: usize,
    /// Entries queued for application.
    pub entries: usize,
    /// Queue depth after this batch was admitted.
    pub queue_depth: usize,
}

/// The queue refused a batch: it is at capacity.
#[derive(Debug, Clone, Copy)]
pub struct QueueFull {
    /// Depth at refusal (== capacity).
    pub queue_depth: usize,
}

/// What one drain-and-apply pass did.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppliedReport {
    /// Batches drained and applied this pass.
    pub batches: usize,
    /// Entries that survived dedup/validation and landed in the store.
    pub entries_applied: usize,
    /// Whether this pass folded the side-index into the main postings.
    pub compacted: bool,
    /// Version of the last snapshot this pass published (0 = none).
    pub version: u64,
}

struct QueueInner {
    queue: VecDeque<DeltaBatch>,
    registry: IdentityRegistry,
}

/// The bounded ingest queue plus its identity registry and counters.
pub struct IngestQueue {
    inner: Mutex<QueueInner>,
    /// Wakes the compaction worker when a batch arrives.
    work: Condvar,
    /// Serializes drain+apply passes, so a synchronous `POST /compact`
    /// cannot overtake a worker pass that already drained batches but has
    /// not yet published them.
    apply: Mutex<()>,
    config: IngestConfig,
    batches_total: AtomicU64,
    rejected_total: AtomicU64,
    applied_entries_total: AtomicU64,
    compactions_total: AtomicU64,
    /// Entries parsed and queued but not yet applied — the ingest lag, in
    /// entries.
    pending_entries: AtomicU64,
}

impl IngestQueue {
    /// A queue whose registry is seeded with every patient already in the
    /// workbench, so deltas for known patients link without a fresh
    /// persons upload.
    pub fn new(workbench: &Workbench, config: IngestConfig) -> IngestQueue {
        let mut registry = IdentityRegistry::new();
        for history in workbench.collection().histories() {
            let p = history.patient();
            registry.register(p.id.0, p.birth_date, p.sex);
        }
        IngestQueue {
            inner: Mutex::new(QueueInner { queue: VecDeque::new(), registry }),
            work: Condvar::new(),
            apply: Mutex::new(()),
            config,
            batches_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            applied_entries_total: AtomicU64::new(0),
            compactions_total: AtomicU64::new(0),
            pending_entries: AtomicU64::new(0),
        }
    }

    /// Parse `text` as one `format` increment and enqueue the resulting
    /// deltas. Fails fast (without parsing) when the queue is full.
    pub fn try_push(&self, format: DeltaFormat, text: &str) -> Result<IngestReceipt, QueueFull> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.queue.len() >= self.config.queue_capacity {
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
            return Err(QueueFull { queue_depth: inner.queue.len() });
        }
        // Parsing under the lock keeps registry updates (persons batches)
        // ordered with the deltas that resolve against them.
        let batch = parse_delta(format, text, &mut inner.registry);
        let entries = batch.entries();
        let receipt = IngestReceipt {
            rows_read: batch.rows_read,
            parse_errors: batch.parse_errors,
            unlinked_rows: batch.unlinked_rows,
            entries,
            queue_depth: inner.queue.len() + 1,
        };
        // lint:allow(no-unbounded-ingest-buffer) bounded: capacity checked above, overflow answers 429
        inner.queue.push_back(batch);
        drop(inner);
        self.pending_entries.fetch_add(entries as u64, Ordering::Relaxed);
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.work.notify_one();
        Ok(receipt)
    }

    /// Drain every queued batch, apply them to a fresh snapshot, and
    /// publish. Compacts when forced or when the published side-index has
    /// grown past the configured threshold. Safe to call from both the
    /// compaction worker and a synchronous `POST /compact`.
    pub fn drain_and_apply(&self, state: &ServeState, force_compact: bool) -> AppliedReport {
        let _applying = self.apply.lock().unwrap_or_else(|e| e.into_inner());
        let batches: Vec<DeltaBatch> = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.drain(..).collect()
        };
        let mut report = AppliedReport { batches: batches.len(), ..AppliedReport::default() };
        if !batches.is_empty() {
            let queued: usize = batches.iter().map(DeltaBatch::entries).sum();
            // lint:allow(guard-held-across-snapshot-publish) the apply mutex serializes appliers across drain+publish; readers never take it
            let (version, stats) = state.ingest(&batches);
            self.pending_entries.fetch_sub(queued as u64, Ordering::Relaxed);
            self.applied_entries_total
                .fetch_add(stats.entries_applied as u64, Ordering::Relaxed);
            report.entries_applied = stats.entries_applied;
            report.version = version;
        }
        let side_rows = state.snapshot().workbench.index().side_rows();
        if force_compact || side_rows >= self.config.compact_threshold {
            // lint:allow(guard-held-across-snapshot-publish) the apply mutex serializes appliers across drain+publish; readers never take it
            if let Some(version) = state.compact() {
                self.compactions_total.fetch_add(1, Ordering::Relaxed);
                report.compacted = true;
                report.version = version;
            }
        }
        report
    }

    /// Block until a batch is queued, up to `timeout`. The compaction
    /// worker's idle loop.
    pub fn wait_for_work(&self, timeout: Duration) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.queue.is_empty() {
            let _ = self.work.wait_timeout(inner, timeout);
        }
    }

    /// Wake a worker blocked in [`IngestQueue::wait_for_work`] (shutdown).
    pub fn notify(&self) {
        self.work.notify_all();
    }

    /// Batches currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }

    /// Entries parsed and queued but not yet applied (the ingest lag).
    pub fn pending_entries(&self) -> u64 {
        self.pending_entries.load(Ordering::Relaxed)
    }

    /// Batches accepted since startup.
    pub fn batches_total(&self) -> u64 {
        self.batches_total.load(Ordering::Relaxed)
    }

    /// Batches refused with 429 since startup.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total.load(Ordering::Relaxed)
    }

    /// Entries that survived dedup/validation and were applied.
    pub fn applied_entries_total(&self) -> u64 {
        self.applied_entries_total.load(Ordering::Relaxed)
    }

    /// Side-index folds published since startup.
    pub fn compactions_total(&self) -> u64 {
        self.compactions_total.load(Ordering::Relaxed)
    }

    /// `Retry-After` seconds to advertise on a 429.
    pub fn retry_after_secs(&self) -> u32 {
        self.config.retry_after_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_synth::{generate_collection, SynthConfig};

    const PERSONS: &str = "nin;birth_date;sex\nNIN-0900001;1950-01-01;F\n";
    const CLAIMS: &str =
        "claim_id;patient;date;provider;icpc;note\nX1;NIN-0900001;04.05.2013;GP;T90;\n";

    fn queue_and_state(capacity: usize) -> (IngestQueue, ServeState) {
        let wb = Workbench::from_collection(generate_collection(
            SynthConfig::with_patients(80),
            5,
        ));
        let queue = IngestQueue::new(
            &wb,
            IngestConfig { queue_capacity: capacity, ..IngestConfig::default() },
        );
        (queue, ServeState::new(wb))
    }

    #[test]
    fn push_apply_compact_lifecycle() {
        let (queue, state) = queue_and_state(8);
        queue.try_push(DeltaFormat::Persons, PERSONS).unwrap();
        let receipt = queue.try_push(DeltaFormat::Claims, CLAIMS).unwrap();
        assert_eq!(receipt.entries, 1);
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pending_entries(), 1);
        let report = queue.drain_and_apply(&state, false);
        assert_eq!(report.batches, 2);
        assert_eq!(report.entries_applied, 1);
        assert!(!report.compacted, "below the threshold, no fold yet");
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.pending_entries(), 0);
        let snap = state.snapshot();
        assert_eq!(snap.workbench.collection().len(), 81);
        assert_eq!(snap.workbench.index().side_rows(), 1, "served by the side-index");
        let report = queue.drain_and_apply(&state, true);
        assert!(report.compacted);
        assert_eq!(queue.compactions_total(), 1);
        assert!(state.snapshot().workbench.index().side_is_empty());
    }

    #[test]
    fn full_queue_refuses_without_parsing() {
        let (queue, _state) = queue_and_state(1);
        queue.try_push(DeltaFormat::Persons, PERSONS).unwrap();
        let full = queue.try_push(DeltaFormat::Claims, CLAIMS).unwrap_err();
        assert_eq!(full.queue_depth, 1);
        assert_eq!(queue.rejected_total(), 1);
        assert_eq!(queue.pending_entries(), 0, "refused batch was never parsed");
    }

    #[test]
    fn registry_links_deltas_to_preloaded_patients() {
        let (queue, state) = queue_and_state(8);
        let id = state.snapshot().workbench.collection().histories()[0].id();
        let claims = format!(
            "claim_id;patient;date;provider;icpc;note\nX9;NIN-{:07};04.05.2013;GP;Z98;\n",
            id.0
        );
        let receipt = queue.try_push(DeltaFormat::Claims, &claims).unwrap();
        assert_eq!(receipt.unlinked_rows, 0, "seeded registry resolves {id}");
        assert_eq!(receipt.entries, 1);
    }
}
