//! Live server metrics: lock-free counters and a latency ring.
//!
//! Every request increments atomic counters and stamps its wall-clock
//! latency into a fixed ring of the most recent [`RING`] observations;
//! `GET /metrics` sorts a copy of the ring to report p50/p99. The ring
//! trades exactness-over-all-time for zero allocation and bounded memory —
//! the percentiles are over the last few thousand requests, which is what
//! an operator watching a live system wants anyway.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Latency observations kept (most recent wins; power of two).
const RING: usize = 4096;

/// All counters the server exposes. One instance per server, shared by
/// every worker through an `Arc`.
pub struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// 503s sent because the bounded queue was full — the shed-load count.
    shed_total: AtomicU64,
    /// Connections dropped for parse/read failures.
    bad_requests: AtomicU64,
    /// Handler panics converted to 500s by the connection loop's catch.
    handler_panics: AtomicU64,
    ring: Vec<AtomicU64>,
    ring_next: AtomicUsize,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            ring: (0..RING).map(|_| AtomicU64::new(u64::MAX)).collect(),
            ring_next: AtomicUsize::new(0),
        }
    }

    /// Record one served request: its status class and latency.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX - 1);
        let slot = self.ring_next.fetch_add(1, Ordering::Relaxed) % RING;
        // lint:allow(no-panic-hot-path) slot < RING == ring.len() by the modulo
        self.ring[slot].store(micros, Ordering::Relaxed);
    }

    /// Record a request shed with `503` because the queue was full.
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection that died on a malformed request.
    pub fn record_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a handler panic caught and converted to a 500.
    pub fn record_handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught so far.
    pub fn handler_panics(&self) -> u64 {
        self.handler_panics.load(Ordering::Relaxed)
    }

    /// Requests served (any status).
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Requests shed with 503.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// `(p50, p99)` over the retained latency ring, in milliseconds.
    /// Zeros when nothing has been recorded yet.
    pub fn latency_percentiles_ms(&self) -> (f64, f64) {
        let mut sample: Vec<u64> = self
            .ring
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .filter(|&v| v != u64::MAX)
            .collect();
        if sample.is_empty() {
            return (0.0, 0.0);
        }
        sample.sort_unstable();
        let at = |q: f64| {
            let idx = ((sample.len() - 1) as f64 * q).round() as usize;
            // lint:allow(no-panic-hot-path) q <= 1.0 keeps idx <= len - 1
            sample[idx] as f64 / 1e3
        };
        (at(0.50), (at(0.99)))
    }

    /// Render the full metrics document as JSON. The caller contributes
    /// the gauges only it can see (queue depth, cache counters, worker
    /// panics) via `extra` — pairs of `(name, value)` appended verbatim.
    pub fn render_json(&self, extra: &[(&str, f64)]) -> String {
        use std::fmt::Write as _;
        let (p50, p99) = self.latency_percentiles_ms();
        let mut out = String::with_capacity(512);
        out.push('{');
        let _ = write!(
            out,
            "\"uptime_s\":{:.1},\"requests_total\":{},\"responses_2xx\":{},\
             \"responses_4xx\":{},\"responses_5xx\":{},\"shed_total\":{},\
             \"bad_requests\":{},\"handler_panics\":{},\
             \"latency_p50_ms\":{p50:.3},\"latency_p99_ms\":{p99:.3}",
            self.started.elapsed().as_secs_f64(),
            self.requests_total.load(Ordering::Relaxed),
            self.responses_2xx.load(Ordering::Relaxed),
            self.responses_4xx.load(Ordering::Relaxed),
            self.responses_5xx.load(Ordering::Relaxed),
            self.shed_total.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
            self.handler_panics.load(Ordering::Relaxed),
        );
        for (name, value) in extra {
            if value.fract() == 0.0 && value.abs() < 1e15 {
                let _ = write!(out, ",\"{name}\":{}", *value as i64);
            } else {
                let _ = write!(out, ",\"{name}\":{value:.4}");
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_classes() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(100));
        m.record(200, Duration::from_micros(300));
        m.record(404, Duration::from_micros(50));
        m.record(503, Duration::from_micros(10));
        m.record_shed();
        assert_eq!(m.requests_total(), 4);
        assert_eq!(m.shed_total(), 1);
        let json = m.render_json(&[("queue_depth", 3.0), ("cache_hit_rate", 0.5)]);
        assert!(json.contains("\"requests_total\":4"), "{json}");
        assert!(json.contains("\"responses_2xx\":2"));
        assert!(json.contains("\"responses_4xx\":1"));
        assert!(json.contains("\"responses_5xx\":1"));
        assert!(json.contains("\"queue_depth\":3"));
        assert!(json.contains("\"cache_hit_rate\":0.5000"));
        // Parses with the workspace's own JSON parser.
        assert!(pastas_ingest::json::Json::parse(&json).is_ok());
    }

    #[test]
    fn percentiles_over_the_ring() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record(200, Duration::from_micros(i * 1000));
        }
        let (p50, p99) = m.latency_percentiles_ms();
        assert!((p50 - 50.0).abs() <= 1.5, "p50 {p50}");
        assert!((p99 - 99.0).abs() <= 1.5, "p99 {p99}");
    }

    #[test]
    fn empty_ring_reports_zero() {
        assert_eq!(Metrics::new().latency_percentiles_ms(), (0.0, 0.0));
    }

    #[test]
    fn ring_wraps_without_growth() {
        let m = Metrics::new();
        for _ in 0..(RING * 2 + 17) {
            m.record(200, Duration::from_micros(5));
        }
        assert_eq!(m.requests_total() as usize, RING * 2 + 17);
        let (p50, _) = m.latency_percentiles_ms();
        assert!((p50 - 0.005).abs() < 1e-9);
    }
}
