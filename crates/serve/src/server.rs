//! The server proper: acceptor thread, bounded worker pool, per-connection
//! keep-alive loop, load shedding, and graceful shutdown.
//!
//! Threading model (DESIGN.md §8):
//!
//! * **one acceptor** blocks on [`TcpListener::accept`] and does almost
//!   nothing per connection — stamp socket timeouts, try to hand the
//!   connection to the pool;
//! * **`workers` pool threads** each own one connection at a time and run
//!   its whole keep-alive session (read → route → write, repeat);
//! * when the pool's bounded queue is full the **acceptor itself** writes
//!   `503 Service Unavailable` + `Retry-After` and closes — overload
//!   degrades into fast, explicit rejections instead of unbounded queues;
//! * [`ServerHandle::shutdown`] stops admissions, nudges the acceptor
//!   awake, and drains: every connection already accepted finishes its
//!   in-flight request (responses carry `Connection: close` once draining
//!   starts) before the workers are joined.

use crate::http::{HttpError, Limits, RequestReader, Response};
use crate::ingest::IngestConfig;
use crate::router::{route, RouterCtx};
use pastas_par::pool::{Submitter, WorkerPool};
use std::io::{self, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit the loopback benches; a real
/// deployment would mostly raise `queue_capacity` and the timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = loopback, OS-assigned port).
    pub addr: String,
    /// Worker threads (connection concurrency). 0 = available parallelism.
    pub workers: usize,
    /// Bounded queue of accepted-but-unclaimed connections; beyond this
    /// the acceptor sheds with 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout (also the idle keep-alive cap).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// `Retry-After` seconds advertised on shed 503s.
    pub retry_after_secs: u32,
    /// Requests served per connection before it is closed (an upper bound
    /// on how long one client can pin a worker).
    pub max_requests_per_connection: usize,
    /// Request parsing budgets.
    pub limits: Limits,
    /// Response-cache entry bound.
    pub cache_entries: usize,
    /// Response-cache byte bound.
    pub cache_bytes: usize,
    /// Bounded ingest-delta queue; beyond this `POST /ingest` answers
    /// 429 with `Retry-After` — explicit backpressure, not a buffer.
    pub ingest_queue_capacity: usize,
    /// Side-index rows that trigger a background compaction.
    pub compact_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_capacity: 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
            max_requests_per_connection: 10_000,
            limits: Limits::default(),
            cache_entries: 512,
            cache_bytes: 256 << 20,
            ingest_queue_capacity: 256,
            compact_threshold: 4096,
        }
    }
}

struct ServerShared {
    ctx: RouterCtx,
    config: ServerConfig,
    draining: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    compactor: Option<std::thread::JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

/// Bind, spawn the acceptor and workers, and return immediately.
pub fn start(ctx: RouterCtx, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Workers are connection-bound, not CPU-bound: an idle keep-alive
    // connection pins one until it times out, so floor the default well
    // above the core count of small machines.
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(4)
    } else {
        config.workers
    };
    let pool = WorkerPool::new(workers, config.queue_capacity);
    let _ = ctx.pool_stats.set(pool.stats());
    let shared = Arc::new(ServerShared { ctx, config, draining: AtomicBool::new(false) });

    let acceptor = {
        let shared = Arc::clone(&shared);
        let submit = pool.submitter();
        std::thread::Builder::new()
            .name("pastas-serve-acceptor".to_owned())
            .spawn(move || accept_loop(listener, shared, submit))
            // One-time server startup, not a request path.
            // lint:allow(no-panic-hot-path) unrecoverable startup failure
            .expect("spawn acceptor")
    };
    let compactor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("pastas-serve-compactor".to_owned())
            .spawn(move || compaction_loop(&shared))
            // One-time server startup, not a request path.
            // lint:allow(no-panic-hot-path) unrecoverable startup failure
            .expect("spawn compactor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        compactor: Some(compactor),
        pool: Some(pool),
    })
}

/// Convenience: serve a workbench with a config in one call.
pub fn serve(
    workbench: pastas_core::Workbench,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let ingest = IngestConfig {
        queue_capacity: config.ingest_queue_capacity,
        compact_threshold: config.compact_threshold,
        retry_after_secs: config.retry_after_secs,
    };
    let ctx = RouterCtx::with_ingest_config(
        workbench,
        config.cache_entries,
        config.cache_bytes,
        ingest,
    );
    start(ctx, config)
}

/// The compaction worker: sleep until a delta batch arrives (or the idle
/// timeout ticks), drain-and-apply, publish. Readers are never blocked —
/// each pass builds the next snapshot off to the side and publishes it
/// with one pointer swap. On drain the final pass force-compacts so every
/// batch the server 202'd is applied before the threads join.
fn compaction_loop(shared: &ServerShared) {
    loop {
        shared.ctx.ingest.wait_for_work(Duration::from_millis(25));
        let draining = shared.draining.load(Ordering::SeqCst);
        let _ = shared.ctx.ingest.drain_and_apply(&shared.ctx.state, draining);
        if draining {
            break;
        }
    }
}

/// Accept until drain. Per accepted connection: stamp socket options,
/// submit a connection job to the pool; on a full queue, shed with 503
/// right here — the acceptor never blocks on workers.
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>, submit: Submitter) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        // The job needs the stream, and shedding needs it back on refusal;
        // a fd-level clone gives both paths a handle.
        let Ok(job_stream) = stream.try_clone() else {
            continue;
        };
        let job_shared = Arc::clone(&shared);
        let submitted =
            submit.try_submit(move || handle_connection(job_stream, &job_shared));
        if submitted.is_err() {
            shed(&stream, &shared);
        }
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router context (state, cache, metrics).
    pub fn ctx(&self) -> &RouterCtx {
        &self.shared.ctx
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// drain the accepted-connection queue, join every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
    }

    fn begin_shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Nudge the blocked acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        // Workers are done: nudge the compactor so its final pass applies
        // every remaining 202'd batch, then join it.
        self.shared.ctx.ingest.notify();
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        // A worker may have admitted one last batch after the compactor's
        // final pass drained; apply it here so no 202 is ever dropped.
        let _ = self.shared.ctx.ingest.drain_and_apply(&self.shared.ctx.state, true);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

/// Serve one connection until close, error, or drain.
fn handle_connection(stream: TcpStream, shared: &ServerShared) {
    let mut reader = RequestReader::new(&stream, shared.config.limits);
    let mut writer = &stream;
    for served in 0..shared.config.max_requests_per_connection {
        match reader.next_request() {
            Ok(request) => {
                let t0 = Instant::now();
                // A panicking handler must cost one 500, not a pool worker:
                // the catch keeps the keep-alive loop (and the worker
                // running it) alive, and poisoned locks recover on the next
                // use via `unwrap_or_else(PoisonError::into_inner)`.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || route(&request, &shared.ctx),
                ))
                .unwrap_or_else(|_| {
                    shared.ctx.metrics.record_handler_panic();
                    Response::json(500, "{\"error\":\"internal handler panic\"}")
                });
                let status = response.status;
                let draining = shared.draining.load(Ordering::SeqCst);
                let last = request.wants_close()
                    || draining
                    || served + 1 == shared.config.max_requests_per_connection;
                let write_ok = response.write_to(&mut writer, !last).is_ok();
                shared.ctx.metrics.record(status, t0.elapsed());
                if last || !write_ok {
                    break;
                }
            }
            Err(HttpError::ConnectionClosed) => break,
            Err(HttpError::Io(_)) => break, // read timeout / reset: just close
            Err(error) => {
                shared.ctx.metrics.record_bad_request();
                if let Some(status) = error.status() {
                    let body = format!("{{\"error\":\"{error}\"}}");
                    let _ = Response::json(status, body).write_to(&mut writer, false);
                    shared.ctx.metrics.record(status, Duration::ZERO);
                }
                break;
            }
        }
    }
}

/// The load-shed response body, built through the shared backpressure
/// constructor so the 503 path advertises `Retry-After` exactly like
/// the ingest 429 path does.
fn shed_response(retry_after_secs: u32) -> Response {
    Response::retry_later_json(503, "{\"error\":\"server overloaded\"}", retry_after_secs)
}

/// Write the shed response straight from the acceptor thread; the
/// connection was never admitted, so this must stay O(microseconds).
fn shed(mut stream: &TcpStream, shared: &ServerShared) {
    let response = shed_response(shared.config.retry_after_secs);
    let _ = response.write_to(&mut stream, false);
    let _ = stream.flush();
    shared.ctx.metrics.record_shed();
    shared.ctx.metrics.record(503, Duration::ZERO);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the 503 half of the shared backpressure helper:
    /// shed responses must carry `Retry-After` (the 429 half is covered
    /// by `ingest_backpressure_answers_429_with_retry_after`).
    #[test]
    fn shed_response_advertises_retry_after() {
        let resp = shed_response(3);
        assert_eq!(resp.status, 503);
        assert!(
            resp.headers.iter().any(|(n, v)| n == "Retry-After" && v == "3"),
            "{:?}",
            resp.headers
        );
        assert!(String::from_utf8(resp.body).unwrap().contains("overloaded"));
    }
}
