//! `pastas-serve`: a std-only concurrent cohort/timeline server.
//!
//! The workbench crates answer questions in-process; this crate puts them
//! behind a socket so many analysts (or one dashboard polling hard) can
//! share a single loaded collection. Everything is hand-rolled on
//! `std::net` — no async runtime, no HTTP dependency — because the
//! workloads are CPU-bound renders and selections, which a worker pool of
//! OS threads handles with far less machinery than an executor.
//!
//! The moving parts, one module each:
//!
//! * [`http`] — a small, hard-budgeted HTTP/1.1 request parser and
//!   response writer (fuzzed: any byte stream yields a typed error, never
//!   a panic);
//! * [`state`] — `Arc`-swapped immutable snapshots: readers never block
//!   writers, writers publish whole new versions atomically;
//! * [`router`] — `Request → Response` over the Workbench/Session API
//!   (`/select`, `/timeline/{patient}`, `/cohort.svg`, `/command`,
//!   `/details`, `/metrics`);
//! * [`cache`] — an LRU response cache keyed by
//!   `(version, collection fingerprint, query fingerprint, render params)`;
//! * [`ingest`] — the streaming path: a bounded delta queue behind
//!   `POST /ingest` (429 + `Retry-After` when full) and the compaction
//!   worker that drains it into freshly published snapshots;
//! * [`metrics`] — lock-free counters plus a latency ring for p50/p99;
//! * [`server`] — acceptor thread + bounded worker pool with load
//!   shedding (`503 Retry-After`) and graceful drain;
//! * [`client`] — the loopback client the tests, smoke mode, and load
//!   bench drive the server with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod cache;
pub mod client;
pub mod http;
pub mod ingest;
pub mod metrics;
pub mod router;
pub mod server;
pub mod state;

pub use cache::ResponseCache;
pub use client::{ClientResponse, Conn};
pub use http::{HttpError, Limits, Request, RequestReader, Response};
pub use ingest::{IngestConfig, IngestQueue};
pub use metrics::Metrics;
pub use router::{route, RouterCtx};
pub use server::{serve, start, ServerConfig, ServerHandle};
pub use state::{ServeState, Snapshot};
