// lint-fixture-path: crates/codes/src/lib.rs
//! Fixture: pub fns in a crate root need doc comments. The two
//! undocumented ones are findings; attributes between the doc comment and
//! the `pub` do not hide the docs, and private fns are exempt.

/// Documented: clean.
pub fn documented() -> u32 {
    1
}

#[inline]
/// Documented even with an attribute before the doc comment: clean.
pub fn attributed() -> u32 {
    2
}

pub fn undocumented() -> u32 {
    3
}

/// Docs above the attribute also count: clean.
#[inline]
pub fn doc_then_attr() -> u32 {
    4
}

pub(crate) fn scoped_undocumented() -> u32 {
    5
}

fn private_needs_no_docs() -> u32 {
    6
}
