// lint-fixture-path: crates/serve/src/somequeue.rs
//! Fixture: request-fed queues. The bare `.push_back(` is a finding;
//! the capacity-guarded push documented with `lint:allow` is clean, as
//! is any push inside test code.

use std::collections::VecDeque;

/// Growing the queue with no capacity check is a finding.
pub fn enqueue_unbounded(queue: &mut VecDeque<u32>, item: u32) {
    queue.push_back(item);
}

/// The audited bounded site: the guard above sheds on overflow, and the
/// allow comment records why the push is safe.
pub fn enqueue_bounded(queue: &mut VecDeque<u32>, item: u32, capacity: usize) -> bool {
    if queue.len() >= capacity {
        return false;
    }
    // lint:allow(no-unbounded-ingest-buffer) bounded: the capacity check above sheds on overflow
    queue.push_back(item);
    true
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;

    #[test]
    fn pushes_freely_in_tests() {
        let mut queue = VecDeque::new();
        queue.push_back(7u32);
        assert_eq!(queue.len(), 1);
    }
}
