// lint-fixture-path: crates/core/src/flow_publish.rs
//! Fixture: a guard held across a snapshot publication that happens in a
//! callee (`install` deref-assigns through the `current` lock).

pub fn swap_in(state: &Shared, next: u64) {
    let guard = state.writer.lock();
    install(state, next);
    drop(guard);
}

fn install(state: &Shared, next: u64) {
    *state.current.write() = next;
}

/// Publishing with no guard live: no finding.
pub fn swap_unlocked(state: &Shared, next: u64) {
    install(state, next);
}
