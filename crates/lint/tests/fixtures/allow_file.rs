// lint-fixture-path: crates/model/src/demo_wide.rs
//! Fixture: `lint:allow-file` silences a rule for the whole file, however
//! far the findings sit from the comment. Zero findings expected.

// lint:allow-file(no-silent-truncation) fixture: every cast here is masked first

/// Masked narrowing, suppressed file-wide.
pub fn low_byte(x: u64) -> u8 {
    (x & 0xff) as u8
}

/// Far from the allow comment, still suppressed.
pub fn low_half(x: u64) -> u32 {
    (x & 0xffff_ffff) as u32
}
