// lint-fixture-path: crates/analytics/src/flow_panic.rs
//! Fixture: a panic two calls below the `cohort_profile` hot-path root.
//! The token rule never sees this — the panic lives in a helper the root
//! only reaches through the call graph.

pub fn cohort_profile(rows: &[u32]) -> u32 {
    fold_rows(rows)
}

fn fold_rows(rows: &[u32]) -> u32 {
    first_row(rows)
}

fn first_row(rows: &[u32]) -> u32 {
    *rows.first().unwrap()
}

/// Unreachable from any hot root: no finding.
pub fn offline_report(rows: &[u32]) -> u32 {
    *rows.last().expect("caller checked")
}
