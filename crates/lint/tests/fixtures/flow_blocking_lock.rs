// lint-fixture-path: crates/core/src/flow_blocking.rs
//! Fixture: a channel `recv()` that blocks in a helper while the caller
//! still holds a lock.

pub fn drain(q: &Work) {
    let guard = q.state.lock();
    wait_for_item(q);
    drop(guard);
}

fn wait_for_item(q: &Work) {
    let _item = q.rx.recv();
}

/// Same helper with the guard dropped first: no finding.
pub fn drain_politely(q: &Work) {
    let guard = q.state.lock();
    drop(guard);
    wait_for_item(q);
}
