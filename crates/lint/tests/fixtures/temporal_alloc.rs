// lint-fixture-path: crates/regex/src/engine.rs
//! Fixture: the temporal-hot-loop arm of `budget-enforced-alloc` — Vec
//! allocations inside automaton execution loops must come from the
//! pooled scratch, never the allocator.

fn run_every(prog: &Program, tokens: &[Token], scratch: &mut Scratch) -> usize {
    let mut accepts = 0;
    for t in tokens {
        let saves = Vec::new(); // per-token alloc in a `for` body: finding
        let parked = vec![0usize; prog.slots]; // vec! in a `for` body: finding
        let mut nlist = Vec::with_capacity(prog.insts.len()); // finding
        nlist.push((t, saves, parked));
        accepts += nlist.len();
    }
    let mut i = 0;
    while i < tokens.len() {
        let snapshot = scratch.clist.to_vec(); // decode in a `while` body: finding
        accepts += snapshot.len();
        i += 1;
    }
    accepts
}

fn leftmost(prog: &Program, scratch: &mut Scratch) -> Option<Vec<usize>> {
    // Allocations outside any loop body are fine: this is the one-time
    // setup the pool amortizes.
    let seed = Vec::with_capacity(prog.slots); // ok: not in a loop
    scratch.pool.push(seed);
    loop {
        let recycled = scratch.pool.pop(); // ok: pooled reuse, no alloc
        match recycled {
            Some(buf) => return Some(buf),
            None => break,
        }
    }
    None
}

impl Recycle for Scratch {
    fn recycle(&mut self) -> Vec<usize> {
        self.pool.pop().unwrap_or_default() // `for` in `impl … for` is not a loop: ok
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_allocs_are_fine_in_tests() {
        for _ in 0..4 {
            let v: Vec<usize> = Vec::new(); // ok: test code
            assert!(v.is_empty());
        }
    }
}
