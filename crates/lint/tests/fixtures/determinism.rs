// lint-fixture-path: crates/query/src/demo.rs
//! Fixture: wall-clock reads in a determinism-layer crate. Both reads in
//! `stamp` are findings; the one inside `#[cfg(test)]` is exempt.

use std::time::{Instant, SystemTime};

/// Both clock reads are findings: query results must be reproducible.
pub fn stamp() -> (Instant, SystemTime) {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    (t0, wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_read_the_clock() {
        let _ = Instant::now();
    }
}
