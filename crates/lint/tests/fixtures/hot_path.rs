// lint-fixture-path: crates/serve/src/demo.rs
//! Fixture: panic-prone constructs in a hot-path crate. Every line that
//! appears in the golden file is an intentional violation; the string
//! literal and the `#[cfg(test)]` block must stay silent.

/// Sum helper with several latent panics.
pub fn summarize(values: &[u32], text: &str) -> u32 {
    let first = values.first().unwrap();
    let second = values[1];
    let parsed: u32 = text.parse().expect("numeric");
    if *first > second {
        panic!("backwards");
    }
    match parsed {
        0 => unreachable!("zero was filtered upstream"),
        n => n + second,
    }
}

/// Mentions of unwrap() and panic! inside string literals are data, not
/// code, and must not be flagged.
pub fn describe() -> &'static str {
    "call unwrap() or panic! at your peril"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_freely() {
        let v = [1u32, 3];
        assert_eq!(summarize(&v, "2"), 5);
        let _ = v.first().unwrap();
        let _ = v[0];
    }
}
