// lint-fixture-path: crates/core/src/lock_unwrap.rs
//! Fixture: `.lock().unwrap()` forfeits poisoned-lock recovery.

pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut guard = counter.lock().unwrap();
    *guard += 1;
    *guard
}

pub fn read_side(gauge: &RwLock<u64>) -> u64 {
    *gauge.read().unwrap()
}

pub fn recovers(counter: &Mutex<u64>) -> u64 {
    let guard = counter.lock().unwrap_or_else(|e| e.into_inner());
    *guard
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = std::sync::Mutex::new(0u32).lock().unwrap();
    }
}
