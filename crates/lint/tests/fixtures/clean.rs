// lint-fixture-path: crates/serve/src/clean.rs
//! Fixture: a hot-path file with zero findings — total lookups, widening
//! casts only, errors as values.

/// Total lookup: no indexing, no unwrap.
pub fn lookup(values: &[u32], i: usize) -> Option<u32> {
    values.get(i).copied()
}

/// Widening casts are fine; only narrowing ones are flagged.
pub fn widen(x: u16) -> u64 {
    u64::from(x) + (x as u64)
}

/// Errors propagate as values.
pub fn parse(text: &str) -> Result<u32, std::num::ParseIntError> {
    text.parse()
}
