// lint-fixture-path: crates/par/src/demo.rs
//! Fixture: suppression semantics. A reasoned `lint:allow` on the line of
//! (or directly above) a finding silences it; a reasonless one silences
//! the finding but is itself reported; an unknown rule id is reported and
//! suppresses nothing; an allow two lines up is out of range.

/// Suppressed with a reason on the line above: no finding.
pub fn covered(values: &[u32]) -> u32 {
    // lint:allow(no-panic-hot-path) fixture: bound checked by every caller
    values[0]
}

/// Trailing same-line suppression with a reason: no finding.
pub fn trailing(values: &[u32]) -> u32 {
    *values.first().unwrap() // lint:allow(no-panic-hot-path) fixture: non-empty by contract
}

/// A reasonless allow silences the unwrap but is itself a finding.
pub fn reasonless(values: &[u32]) -> u32 {
    // lint:allow(no-panic-hot-path)
    *values.first().unwrap()
}

/// Naming an unknown rule is a finding, and the indexing is not suppressed.
pub fn unknown_rule(values: &[u32]) -> u32 {
    // lint:allow(no-such-rule) typo in the rule id
    values[0]
}

/// Too far away: an allow followed by a blank line does not reach here.
pub fn out_of_range(values: &[u32]) -> u32 {
    // lint:allow(no-panic-hot-path) fixture: this comment is one line too high

    *values.first().unwrap()
}
