// lint-fixture-path: crates/serve/src/http.rs
//! Fixture: request-fed allocations in the HTTP layer need a budget
//! clamp. The naive `with_capacity` and the bare `read_to_end` are
//! findings; the clamped and constant-sized variants are clean.

/// A hostile Content-Length must not size the buffer: finding.
pub fn naive(declared: usize) -> Vec<u8> {
    Vec::with_capacity(declared)
}

/// Clamped against the budget: clean.
pub fn clamped(declared: usize, max_body_bytes: usize) -> Vec<u8> {
    Vec::with_capacity(declared.min(max_body_bytes))
}

/// Constant capacity: clean.
pub fn constant() -> Vec<u8> {
    Vec::with_capacity(4096)
}

/// A `read_to_end` with no visible budget marker: finding.
pub fn slurp(stream: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    Ok(buf)
}
