// lint-fixture-path: crates/analytics/src/fold_helpers.rs
//! Fixture: the analytics arm of `budget-enforced-alloc` — the
//! dimension pass consumes frozen cohort bitmaps and must never call
//! `to_vec` per iteration; chunked `iter()` or one hoisted
//! `decode_into` is the budgeted shape.

fn accumulate(cohorts: &[Bitmap], acc: &mut Accum) {
    for bm in cohorts {
        for position in bm.to_vec() {
            acc.add(position); // full decode per cohort in a loop: finding
        }
    }
    for bm in cohorts {
        for position in bm.iter() {
            acc.add(position); // chunked iterator decode: ok
        }
    }
    let mut positions = Vec::new();
    if let Some(bm) = cohorts.first() {
        bm.decode_into(0, &mut positions); // one hoisted decode: ok
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_loops_are_exempt() {
        for bm in build() {
            let _ = bm.to_vec();
        }
    }
}
