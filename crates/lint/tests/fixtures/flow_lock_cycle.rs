// lint-fixture-path: crates/core/src/flow_cycle.rs
//! Fixture: an AB/BA deadlock where one leg of the cycle only exists
//! through a call — `forward` holds `a` while a helper takes `b`.

pub fn forward(q: &Queues) {
    let g = q.a.lock();
    take_b(q);
    drop(g);
}

fn take_b(q: &Queues) {
    let _g = q.b.lock();
}

pub fn backward(q: &Queues) {
    let g = q.b.lock();
    let _h = q.a.lock();
    drop(g);
}
