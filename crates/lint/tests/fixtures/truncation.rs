// lint-fixture-path: crates/model/src/demo.rs
//! Fixture: narrowing casts in the model crate. `as u16` is a finding;
//! checked and widening conversions are clean.

/// `as u16` silently truncates: a finding.
pub fn narrow(x: u64) -> u16 {
    x as u16
}

/// Checked conversion: clean.
pub fn checked(x: u64) -> Option<u16> {
    u16::try_from(x).ok()
}

/// Widening: clean.
pub fn widen(x: u16) -> u64 {
    x as u64
}
