// lint-fixture-path: crates/par/src/demo2.rs
//! Fixture: unbounded channels and guards held across queue handoffs.
//! `mpsc::channel()` and the send-under-guard are findings; the bounded
//! constructor and the guard-dropped-first variant are clean.

use std::sync::mpsc;
use std::sync::Mutex;

/// The unbounded constructor is a finding; the bounded one is not.
pub fn channels() -> (mpsc::Sender<u32>, mpsc::SyncSender<u32>) {
    let (unbounded, _rx) = mpsc::channel();
    let (bounded, _rx2) = mpsc::sync_channel(8);
    (unbounded, bounded)
}

/// Sending while the guard from `.lock()` is still live is a finding.
pub fn guarded_send(state: &Mutex<u32>, tx: &mpsc::SyncSender<u32>) -> bool {
    state.lock().map(|guard| tx.send(*guard)).is_ok()
}

/// Dropping the guard before the handoff is clean.
pub fn staged_send(state: &Mutex<u32>, tx: &mpsc::SyncSender<u32>) -> bool {
    let value = { state.lock().map(|g| *g).unwrap_or(0) };
    tx.send(value).is_ok()
}
