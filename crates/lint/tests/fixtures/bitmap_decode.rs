// lint-fixture-path: crates/query/src/plan_helpers.rs
//! Fixture: the query-crate arm of `budget-enforced-alloc` — bitmap
//! decodes (`to_vec`) inside loop bodies.

fn union_all(maps: &[Bitmap]) -> Vec<u32> {
    let mut acc = Bitmap::new();
    let mut flat = Vec::new();
    for bm in maps {
        acc = acc.union(bm);
        flat.extend(bm.to_vec()); // decode in a `for` body: finding
    }
    let mut it = maps.iter();
    while let Some(bm) = it.next() {
        flat.extend(bm.to_vec()); // decode in a `while` body: finding
    }
    loop {
        flat.extend(acc.to_vec()); // decode in a `loop` body: finding
        break;
    }
    acc.to_vec() // one decode after the set algebra: ok
}

impl Decode for Wrapper {
    fn decode(&self) -> Vec<u32> {
        self.inner.to_vec() // `for` in `impl … for` is not a loop: ok
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_loops_are_exempt() {
        for bm in build() {
            let _ = bm.to_vec();
        }
    }
}
