// lint-fixture-path: crates/serve/src/tricky.rs
//! Fixture: lexer stress. Panic words hidden in raw strings, nested block
//! comments, byte strings, and char literals must not be flagged; the one
//! real construct at the end must be.

/// Raw strings may contain quotes and panic words.
pub fn raw() -> &'static str {
    r#"this "quoted" text says unwrap() and panic!("boom")"#
}

/// Byte strings and raw byte strings too.
pub fn bytes() -> &'static [u8] {
    br##"values[0].expect("nope") and a "# inside"##
}

/* A nested /* block comment /* three deep */ mentioning */ panic!("x") */

/// Char literals are not lifetimes: '[' and '"' and '\n' stay characters.
pub fn chars() -> (char, char, char) {
    ('[', '"', '\n')
}

/// Lifetimes lex as lifetimes even next to strings.
pub fn lifetime<'a>(s: &'a str) -> &'a str {
    s
}

/// The lexer resynchronizes: this real panic after all the soup is found.
pub fn real() -> u32 {
    todo!("the one intended finding in this file")
}
