//! Differential tests pinning the AST migration and the cache.
//!
//! The flow upgrade bolted a parser and interprocedural pass onto the
//! token engine; these tests prove the bolt-on changed nothing it was
//! not supposed to: with flow off, the pipeline's findings are
//! byte-identical to plain `check_file` on every fixture, and a warm
//! cache run reproduces the cold run exactly.

use pastas_lint::rules::{check_file, CheckOptions};
use pastas_lint::workspace::{
    analyze_sources, check_workspace_with, find_workspace_root, WorkspaceOptions,
};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures() -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures");
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixture dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let source = fs::read_to_string(&p).expect("read fixture");
            let virtual_path = source
                .lines()
                .next()
                .and_then(|l| l.strip_prefix("// lint-fixture-path: "))
                .expect("fixture header")
                .trim()
                .to_owned();
            (virtual_path, source)
        })
        .collect()
}

#[test]
fn pipeline_without_flow_matches_check_file_on_every_fixture() {
    let fixtures = fixtures();
    assert!(fixtures.len() >= 14, "expected the full fixture corpus");
    for (virtual_path, source) in fixtures {
        let direct = check_file(&virtual_path, &source, CheckOptions::default());
        let piped = analyze_sources(
            &[(virtual_path.clone(), source, CheckOptions::default())],
            false,
        );
        assert_eq!(direct, piped, "token findings drifted for {virtual_path}");
    }
}

#[test]
fn pipeline_without_flow_matches_check_file_on_the_real_workspace() {
    let root = find_workspace_root(&std::env::current_dir().expect("cwd"))
        .expect("workspace root");
    let no_flow = WorkspaceOptions { cache_path: None, flow: false };
    let piped = check_workspace_with(&root, &no_flow);
    // Re-derive the same file set through check_file directly.
    let mut direct = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .expect("crates dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src_dir = crate_dir.join("src");
        let options =
            CheckOptions { crate_has_proptests: src_dir.join("proptests.rs").is_file() };
        let mut stack = vec![src_dir];
        let mut files = Vec::new();
        while let Some(dir) = stack.pop() {
            let Ok(entries) = fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    files.push(path);
                }
            }
        }
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&file).expect("read source");
            direct.extend(check_file(&rel, &src, options));
        }
    }
    direct.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    assert_eq!(direct, piped);
}

#[test]
fn warm_cache_run_reproduces_the_cold_run() {
    let root = find_workspace_root(&std::env::current_dir().expect("cwd"))
        .expect("workspace root");
    let cache = root
        .join("target")
        .join(format!("pastas-lint-test-{}.cache", std::process::id()));
    let _ = fs::remove_file(&cache);
    let opts = WorkspaceOptions { cache_path: Some(cache.clone()), flow: true };
    let cold = check_workspace_with(&root, &opts);
    assert!(cache.is_file(), "first run persists the cache");
    let warm = check_workspace_with(&root, &opts);
    let _ = fs::remove_file(&cache);
    assert_eq!(cold, warm, "cache reuse changed the findings");
}
