//! Golden-file tests for the rule engine.
//!
//! Each fixture under `tests/fixtures/` declares the workspace-relative
//! path it pretends to live at on line 1
//! (`// lint-fixture-path: crates/<crate>/src/<file>.rs`) so crate-scoped
//! rules fire deterministically, and pairs with a `.expected` twin holding
//! the exact rendered findings. Beyond the byte-for-byte comparison, each
//! test asserts the *shape* of the findings (rules and lines), so a stale
//! or wrongly blessed golden file cannot hide a behaviour change.
//!
//! Re-bless after an intentional message change with
//! `BLESS=1 cargo test -p pastas-lint --test golden`.

use pastas_lint::rules::{check_file, CheckOptions, Finding};
use pastas_lint::workspace::analyze_sources;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Run one fixture through `check_file` and compare against its golden
/// file, returning the findings for shape assertions.
fn check_fixture(name: &str) -> Vec<Finding> {
    let dir = fixture_dir();
    let source = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("read fixture");
    let first = source.lines().next().unwrap_or("");
    let virtual_path = first
        .strip_prefix("// lint-fixture-path: ")
        .unwrap_or_else(|| panic!("fixture {name} lacks a lint-fixture-path header"))
        .trim()
        .to_owned();
    let findings = check_file(&virtual_path, &source, CheckOptions::default());
    let got: String = findings.iter().map(|f| f.render() + "\n").collect();
    let expected_path = dir.join(format!("{name}.expected"));
    if std::env::var_os("BLESS").is_some() {
        fs::write(&expected_path, &got).expect("bless golden file");
    }
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|_| panic!("missing golden file {name}.expected (bless with BLESS=1)"));
    assert_eq!(got, expected, "fixture {name} drifted from its golden file");
    findings
}

/// `(rule, line)` pairs in output order — the shape a golden file must
/// agree with.
fn shape(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn read_fixture(name: &str) -> (String, String) {
    let source =
        fs::read_to_string(fixture_dir().join(format!("{name}.rs"))).expect("read fixture");
    let first = source.lines().next().unwrap_or("");
    let virtual_path = first
        .strip_prefix("// lint-fixture-path: ")
        .unwrap_or_else(|| panic!("fixture {name} lacks a lint-fixture-path header"))
        .trim()
        .to_owned();
    (virtual_path, source)
}

/// Run one fixture through the full flow pipeline (token rules + parse +
/// interprocedural pass) and compare against its golden file.
fn check_flow_fixture(name: &str) -> Vec<Finding> {
    let (virtual_path, source) = read_fixture(name);
    let findings =
        analyze_sources(&[(virtual_path, source, CheckOptions::default())], true);
    let got: String = findings.iter().map(|f| f.render() + "\n").collect();
    let expected_path = fixture_dir().join(format!("{name}.expected"));
    if std::env::var_os("BLESS").is_some() {
        fs::write(&expected_path, &got).expect("bless golden file");
    }
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|_| panic!("missing golden file {name}.expected (bless with BLESS=1)"));
    assert_eq!(got, expected, "fixture {name} drifted from its golden file");
    findings
}

#[test]
fn hot_path_flags_every_panic_construct_once() {
    let findings = check_fixture("hot_path");
    assert_eq!(
        shape(&findings),
        vec![
            ("no-panic-hot-path", 8),  // .unwrap()
            ("no-panic-hot-path", 9),  // values[1]
            ("no-panic-hot-path", 10), // .expect()
            ("no-panic-hot-path", 12), // panic!
            ("no-panic-hot-path", 15), // unreachable!
        ]
    );
}

#[test]
fn suppression_scoping_and_reasons() {
    let findings = check_fixture("suppression");
    assert_eq!(
        shape(&findings),
        vec![
            ("suppression-needs-reason", 20), // reasonless allow
            ("suppression-needs-reason", 26), // unknown rule id
            ("no-panic-hot-path", 27),        // not suppressed by the unknown rule
            ("no-panic-hot-path", 34),        // allow two lines up is out of range
        ]
    );
}

#[test]
fn tricky_lexing_yields_exactly_the_final_todo() {
    let findings = check_fixture("tricky");
    assert_eq!(shape(&findings), vec![("no-panic-hot-path", 30)]);
}

#[test]
fn clean_file_has_zero_findings() {
    assert!(check_fixture("clean").is_empty());
}

#[test]
fn determinism_flags_both_clock_reads() {
    let findings = check_fixture("determinism");
    assert_eq!(
        shape(&findings),
        vec![("no-wallclock-determinism", 9), ("no-wallclock-determinism", 10)]
    );
}

#[test]
fn channels_flag_unbounded_and_guarded_send() {
    let findings = check_fixture("channels");
    assert_eq!(
        shape(&findings),
        vec![("no-unbounded-channel", 11), ("lock-across-await-point-analog", 18)]
    );
}

#[test]
fn ingest_buffers_flag_only_the_unguarded_push() {
    let findings = check_fixture("ingest_buffer");
    assert_eq!(shape(&findings), vec![("no-unbounded-ingest-buffer", 10)]);
}

#[test]
fn truncation_flags_only_the_narrowing_cast() {
    let findings = check_fixture("truncation");
    assert_eq!(shape(&findings), vec![("no-silent-truncation", 7)]);
}

#[test]
fn allow_file_silences_the_whole_file() {
    assert!(check_fixture("allow_file").is_empty());
}

#[test]
fn docs_flag_undocumented_pub_fns_in_a_root() {
    let findings = check_fixture("docs");
    assert_eq!(shape(&findings), vec![("pub-fn-docs", 17), ("pub-fn-docs", 27)]);
}

#[test]
fn budget_flags_unclamped_request_fed_allocations() {
    let findings = check_fixture("budget");
    assert_eq!(
        shape(&findings),
        vec![("budget-enforced-alloc", 8), ("budget-enforced-alloc", 24)]
    );
}

#[test]
fn budget_flags_bitmap_decodes_inside_query_loops() {
    let findings = check_fixture("bitmap_decode");
    assert_eq!(
        shape(&findings),
        vec![
            ("budget-enforced-alloc", 10),
            ("budget-enforced-alloc", 14),
            ("budget-enforced-alloc", 17),
        ]
    );
}

#[test]
fn budget_flags_bitmap_decodes_inside_analytics_loops() {
    let findings = check_fixture("analytics_decode");
    assert_eq!(shape(&findings), vec![("budget-enforced-alloc", 9)]);
}

#[test]
fn budget_flags_allocations_inside_automaton_loops() {
    let findings = check_fixture("temporal_alloc");
    assert_eq!(
        shape(&findings),
        vec![
            ("budget-enforced-alloc", 9),
            ("budget-enforced-alloc", 10),
            ("budget-enforced-alloc", 11),
            ("budget-enforced-alloc", 17),
        ]
    );
    assert!(
        findings.iter().any(|f| f.message.contains("pooled scratch")),
        "the message points at the pool idiom"
    );
}

#[test]
fn flow_transitive_panic_reaches_through_two_calls() {
    let findings = check_flow_fixture("flow_transitive_panic");
    assert_eq!(shape(&findings), vec![("transitive-no-panic-hot-path", 15)]);
    assert!(
        findings[0].message.contains("cohort_profile -> fold_rows -> first_row"),
        "witness path names the whole chain: {}",
        findings[0].message
    );
}

#[test]
fn flow_lock_cycle_spans_a_call_edge() {
    let findings = check_flow_fixture("flow_lock_cycle");
    assert_eq!(shape(&findings), vec![("lock-order-cycle", 7)]);
    let message = &findings[0].message;
    assert!(message.contains("core::Queues.a") && message.contains("core::Queues.b"));
}

#[test]
fn flow_guard_held_across_publish_in_a_callee() {
    let findings = check_flow_fixture("flow_guard_publish");
    assert_eq!(shape(&findings), vec![("guard-held-across-snapshot-publish", 7)]);
    assert!(findings[0].message.contains("core::Shared.writer"));
}

#[test]
fn flow_blocking_call_under_lock_via_helper() {
    let findings = check_flow_fixture("flow_blocking_lock");
    assert_eq!(shape(&findings), vec![("blocking-call-under-lock", 7)]);
    assert!(findings[0].message.contains("recv"));
}

#[test]
fn lock_unwrap_flags_non_test_unwraps_only() {
    let findings = check_fixture("lock_unwrap");
    assert_eq!(
        shape(&findings),
        vec![("no-unwrap-on-lock", 5), ("no-unwrap-on-lock", 11)]
    );
}

#[test]
fn hygiene_fires_on_big_untested_module_and_proptests_satisfy_it() {
    let mut src = String::from("//! Big module.\n\npub struct S;\n");
    for i in 0..400 {
        src.push_str(&format!("fn helper_{i}() -> u32 {{ {i} }}\n"));
    }
    let findings = check_file("crates/codes/src/big.rs", &src, CheckOptions::default());
    assert_eq!(shape(&findings), vec![("test-file-hygiene", 1)]);
    assert_eq!(findings[0].col, 1);
    let with_proptests =
        check_file("crates/codes/src/big.rs", &src, CheckOptions { crate_has_proptests: true });
    assert!(with_proptests.is_empty(), "a crate proptests.rs satisfies the rule");
}
