//! End-to-end checks of the `pastas-lint` binary: exit codes, diagnostic
//! positions, `--format=json` — and the acceptance property that this
//! workspace itself lints clean, which makes `cargo test` a lint gate in
//! its own right.

use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pastas-lint"))
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    let out = lint().arg("--workspace").output().expect("run pastas-lint");
    assert!(
        out.status.success(),
        "the workspace has lint findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint().arg("--list-rules").output().expect("run pastas-lint");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic-hot-path",
        "no-wallclock-determinism",
        "no-unbounded-channel",
        "lock-across-await-point-analog",
        "no-silent-truncation",
        "budget-enforced-alloc",
        "test-file-hygiene",
        "pub-fn-docs",
        "suppression-needs-reason",
        "no-unwrap-on-lock",
        "lock-order-cycle",
        "blocking-call-under-lock",
        "transitive-no-panic-hot-path",
        "guard-held-across-snapshot-publish",
    ] {
        assert!(text.contains(rule), "--list-rules is missing {rule}:\n{text}");
    }
}

#[test]
fn findings_exit_nonzero_with_exact_positions() {
    // A throwaway mini-workspace so crate scoping (`crates/serve/…`)
    // resolves exactly as it would in the real tree.
    let dir = std::env::temp_dir().join(format!("pastas-lint-cli-{}", std::process::id()));
    let src_dir = dir.join("crates").join("serve").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir mini-workspace");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    let bad = "pub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n";
    std::fs::write(src_dir.join("bad.rs"), bad).expect("write bad.rs");

    let out = lint()
        .current_dir(&dir)
        .arg("crates/serve/src/bad.rs")
        .output()
        .expect("run pastas-lint");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {text}");
    assert!(
        text.contains("crates/serve/src/bad.rs:2:16: [no-panic-hot-path]"),
        "wrong position or rule in: {text}"
    );

    let out = lint()
        .current_dir(&dir)
        .args(["crates/serve/src/bad.rs", "--format=json"])
        .output()
        .expect("run pastas-lint json");
    let json = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(json.contains("\"rule\":\"no-panic-hot-path\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
    assert!(json.contains("\"col\":16"), "{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A throwaway mini-workspace with one AB/BA deadlock split across two
/// functions — only the flow pass can see it.
fn deadlock_workspace(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pastas-lint-cli-{tag}-{}", std::process::id()));
    let src_dir = dir.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir mini-workspace");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    let bad = "pub fn forward(q: &Queues) { let g = q.a.lock(); q.b.lock(); drop(g); }\n\
               pub fn backward(q: &Queues) { let g = q.b.lock(); q.a.lock(); drop(g); }\n";
    std::fs::write(src_dir.join("locks.rs"), bad).expect("write locks.rs");
    dir
}

#[test]
fn sarif_output_carries_rules_and_locations() {
    let dir = deadlock_workspace("sarif");
    let out = lint()
        .current_dir(&dir)
        .args(["--workspace", "--no-cache", "--format=sarif"])
        .output()
        .expect("run pastas-lint sarif");
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{sarif}");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"pastas-lint\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"lock-order-cycle\""), "{sarif}");
    assert!(sarif.contains("crates/core/src/locks.rs"), "{sarif}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn baseline_accepts_recorded_findings_and_catches_new_ones() {
    let dir = deadlock_workspace("baseline");
    // Record the deadlock as accepted debt.
    let out = lint()
        .current_dir(&dir)
        .args(["--workspace", "--no-cache", "--write-baseline=lint-baseline.json"])
        .output()
        .expect("write baseline");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // Against the baseline the workspace is clean.
    let out = lint()
        .current_dir(&dir)
        .args(["--workspace", "--no-cache", "--baseline=lint-baseline.json"])
        .output()
        .expect("lint against baseline");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    // A new finding in the same workspace still fails.
    let src_dir = dir.join("crates").join("core").join("src");
    std::fs::write(
        src_dir.join("fresh.rs"),
        "pub fn fresh(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
    )
    .expect("write fresh.rs");
    let out = lint()
        .current_dir(&dir)
        .args(["--workspace", "--no-cache", "--baseline=lint-baseline.json"])
        .output()
        .expect("lint with new finding");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{text}");
    assert!(text.contains("no-unwrap-on-lock"), "{text}");
    assert!(!text.contains("lock-order-cycle"), "baselined finding resurfaced: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    let out = lint().output().expect("run pastas-lint with no args");
    assert_eq!(out.status.code(), Some(2));
    let out = lint().arg("--no-such-flag").output().expect("run pastas-lint");
    assert_eq!(out.status.code(), Some(2));
}
