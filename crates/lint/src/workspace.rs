//! Workspace discovery and the whole-tree check.
//!
//! `--workspace` walks every `crates/*/src/**/*.rs` file (vendor stubs
//! and `target/` excluded), computes per-crate context (does the crate
//! ship a `src/proptests.rs`?), and concatenates per-file findings in
//! path order so output — and the JSON mode — is deterministic.

use crate::rules::{check_file, CheckOptions, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collect `.rs` files under `dir`, sorted by path.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Check one file on disk. `root` is the workspace root used to derive
/// the path shown in diagnostics and the crate scoping.
pub fn check_path(root: &Path, file: &Path, options: CheckOptions) -> Vec<Finding> {
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/");
    // Lossy decoding keeps the tool total on any byte soup; Rust sources
    // are UTF-8 so real files round-trip exactly.
    let Ok(bytes) = fs::read(file) else {
        return vec![Finding {
            path: rel,
            line: 1,
            col: 1,
            rule: "suppression-needs-reason",
            message: "unreadable file".to_owned(),
        }];
    };
    let src = String::from_utf8_lossy(&bytes);
    check_file(&rel, &src, options)
}

/// Check every `crates/*/src/**/*.rs` under `root`. Findings come back in
/// path order, then line order.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else { return Vec::new() };
    let mut crate_dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let src_dir = crate_dir.join("src");
        let options =
            CheckOptions { crate_has_proptests: src_dir.join("proptests.rs").is_file() };
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files);
        for file in files {
            findings.extend(check_path(root, &file, options));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn workspace_walk_sees_many_files() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let mut files = Vec::new();
        rust_files(&root.join("crates"), &mut files);
        assert!(files.len() > 50, "found {} files", files.len());
        assert!(files.windows(2).all(|w| w[0] <= w[1]), "sorted walk");
    }
}
