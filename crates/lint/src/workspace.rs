//! Workspace discovery and the whole-tree analysis pipeline.
//!
//! `--workspace` walks every `crates/*/src/**/*.rs` file (vendor stubs
//! and `target/` excluded), then runs the per-file pass — lex, token
//! rules, parse, flow summaries — in parallel via `pastas_par`, with an
//! optional file-hash-keyed incremental cache ([`cachefile`](crate::cachefile))
//! so warm runs skip everything but hashing. The interprocedural pass
//! ([`flow::interprocedural`](crate::flow::interprocedural)) always runs
//! over the merged summaries — a one-file edit can change a cross-file
//! verdict — and its findings are filtered through the per-file
//! suppression records before being merged, in path order, with the
//! token-level findings.

use crate::cachefile::{self, CachedFile};
use crate::flow::{self, FnSummary};
use crate::parse;
use crate::rules::{check_file_ctx, CheckOptions, FileContext, Finding, SuppressionRecord};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collect `.rs` files under `dir`, sorted by path.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One file's complete per-file analysis.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Post-suppression token-level findings.
    pub findings: Vec<Finding>,
    /// Reasoned suppressions (applied to flow findings later).
    pub supps: Vec<SuppressionRecord>,
    /// Flow summaries for the interprocedural pass.
    pub summaries: Vec<FnSummary>,
}

/// Lex, token-check, parse, and summarize one file.
pub fn analyze_source(path: &str, src: &str, options: CheckOptions) -> FileAnalysis {
    let ctx = FileContext::new(path, src, options);
    let findings = check_file_ctx(&ctx);
    let ast = parse::parse_file(&ctx);
    let summaries = flow::summarize(&ctx, &ast);
    FileAnalysis {
        path: path.to_owned(),
        findings,
        supps: ctx.suppression_records(),
        summaries,
    }
}

/// Merge per-file analyses: run the interprocedural pass (when `flow_on`),
/// filter its findings through each file's suppressions, and sort.
pub fn merge_analyses(analyses: Vec<FileAnalysis>, flow_on: bool) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    if flow_on {
        let supp_by_file: HashMap<&str, &[SuppressionRecord]> = analyses
            .iter()
            .map(|a| (a.path.as_str(), a.supps.as_slice()))
            .collect();
        let all: Vec<FnSummary> =
            analyses.iter().flat_map(|a| a.summaries.iter().cloned()).collect();
        for f in flow::interprocedural(&all) {
            let suppressed = supp_by_file
                .get(f.path.as_str())
                .is_some_and(|s| s.iter().any(|r| r.covers(f.rule, f.line)));
            if !suppressed {
                findings.push(f);
            }
        }
    }
    for a in &analyses {
        findings.extend(a.findings.iter().cloned());
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    findings
}

/// Analyze a set of in-memory sources — the pure-function core of the
/// pipeline, used by the golden and differential tests.
pub fn analyze_sources(
    inputs: &[(String, String, CheckOptions)],
    flow_on: bool,
) -> Vec<Finding> {
    let analyses =
        pastas_par::par_map(inputs, |(path, src, options)| analyze_source(path, src, *options));
    merge_analyses(analyses, flow_on)
}

/// Knobs for the whole-workspace run.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceOptions {
    /// Incremental cache location; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Run the interprocedural flow rules (on for the CLI; the
    /// differential tests turn it off to compare token-level behaviour).
    pub flow: bool,
}

impl WorkspaceOptions {
    /// The CLI default: flow on, cache under `target/`.
    pub fn standard(root: &Path) -> WorkspaceOptions {
        WorkspaceOptions {
            cache_path: Some(root.join("target").join("pastas-lint.cache")),
            flow: true,
        }
    }
}

/// Check one file on disk. `root` is the workspace root used to derive
/// the path shown in diagnostics and the crate scoping.
pub fn check_path(root: &Path, file: &Path, options: CheckOptions) -> Vec<Finding> {
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/");
    // Lossy decoding keeps the tool total on any byte soup; Rust sources
    // are UTF-8 so real files round-trip exactly.
    let Ok(bytes) = fs::read(file) else {
        return vec![Finding {
            path: rel,
            line: 1,
            col: 1,
            rule: "suppression-needs-reason",
            message: "unreadable file".to_owned(),
        }];
    };
    let src = String::from_utf8_lossy(&bytes);
    crate::rules::check_file(&rel, &src, options)
}

fn workspace_inputs(root: &Path) -> Vec<(String, String, CheckOptions)> {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else { return Vec::new() };
    let mut crate_dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    let mut inputs = Vec::new();
    for crate_dir in crate_dirs {
        let src_dir = crate_dir.join("src");
        let options =
            CheckOptions { crate_has_proptests: src_dir.join("proptests.rs").is_file() };
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files);
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(bytes) = fs::read(&file) else { continue };
            inputs.push((rel, String::from_utf8_lossy(&bytes).into_owned(), options));
        }
    }
    inputs
}

/// Check every `crates/*/src/**/*.rs` under `root` with explicit options.
/// Findings come back in path order, then line order.
pub fn check_workspace_with(root: &Path, opts: &WorkspaceOptions) -> Vec<Finding> {
    let inputs = workspace_inputs(root);
    let cache: HashMap<String, CachedFile> =
        opts.cache_path.as_deref().map(cachefile::load).unwrap_or_default();
    let analyses: Vec<(FileAnalysis, u64)> =
        pastas_par::par_map(&inputs, |(rel, src, options)| {
            // The proptests flag changes findings, so it keys the hash too.
            let hash = cachefile::fnv1a(src.as_bytes())
                ^ (u64::from(options.crate_has_proptests) << 63);
            if let Some(e) = cache.get(rel) {
                if e.hash == hash {
                    return (
                        FileAnalysis {
                            path: rel.clone(),
                            findings: e.findings.clone(),
                            supps: e.supps.clone(),
                            summaries: e.summaries.clone(),
                        },
                        hash,
                    );
                }
            }
            (analyze_source(rel, src, *options), hash)
        });
    if let Some(cache_path) = &opts.cache_path {
        let entries: HashMap<String, CachedFile> = analyses
            .iter()
            .map(|(a, hash)| {
                (
                    a.path.clone(),
                    CachedFile {
                        hash: *hash,
                        findings: a.findings.clone(),
                        supps: a.supps.clone(),
                        summaries: a.summaries.clone(),
                    },
                )
            })
            .collect();
        cachefile::store(cache_path, &entries);
    }
    merge_analyses(analyses.into_iter().map(|(a, _)| a).collect(), opts.flow)
}

/// Check the whole workspace with flow rules on and no cache — the
/// conservative entry point used by tests and library callers.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    check_workspace_with(root, &WorkspaceOptions { cache_path: None, flow: true })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn workspace_walk_sees_many_files() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let mut files = Vec::new();
        rust_files(&root.join("crates"), &mut files);
        assert!(files.len() > 50, "found {} files", files.len());
        assert!(files.windows(2).all(|w| w[0] <= w[1]), "sorted walk");
    }

    #[test]
    fn analyze_sources_flow_toggle() {
        let src = "fn f(a: &Q, b: &Q) { let g = a.m.lock(); b.n.lock(); drop(g); }\n\
                   fn g(a: &Q, b: &Q) { let g = b.n.lock(); a.m.lock(); drop(g); }\n";
        let inputs =
            vec![("crates/core/src/t.rs".to_owned(), src.to_owned(), CheckOptions::default())];
        let with_flow = analyze_sources(&inputs, true);
        let without = analyze_sources(&inputs, false);
        assert!(with_flow.iter().any(|f| f.rule == "lock-order-cycle"));
        assert!(!without.iter().any(|f| f.rule == "lock-order-cycle"));
    }

    #[test]
    fn flow_findings_respect_suppressions() {
        let src = "fn f(a: &Q, b: &Q) {\n\
                   let g = a.m.lock();\n\
                   // lint:allow(lock-order-cycle) fixture: order is documented\n\
                   b.n.lock();\n\
                   drop(g);\n\
                   }\n\
                   fn g(a: &Q, b: &Q) {\n\
                   let g = b.n.lock();\n\
                   // lint:allow(lock-order-cycle) fixture: order is documented\n\
                   a.m.lock();\n\
                   drop(g);\n\
                   }\n";
        let inputs =
            vec![("crates/core/src/t.rs".to_owned(), src.to_owned(), CheckOptions::default())];
        let findings = analyze_sources(&inputs, true);
        assert!(
            !findings.iter().any(|f| f.rule == "lock-order-cycle"),
            "{findings:?}"
        );
    }
}
