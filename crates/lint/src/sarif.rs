//! SARIF 2.1.0 output.
//!
//! The minimal static-analysis interchange shape: one run, one tool
//! driver carrying the rule catalog, one result per finding with a
//! physical location. Hand-serialized like the JSON mode — the tool is
//! dependency-free — and consumed by code-review UIs that ingest SARIF.

use crate::rules::{json_str, Finding, RULES};

/// Render findings as a SARIF 2.1.0 log (pretty enough to diff).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"pastas-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(id),
            json_str(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": \
             {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": \
             {}}}}}}}]}}{}\n",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.path),
            f.line,
            f.col,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_carries_rules_and_results() {
        let f = Finding {
            path: "crates/serve/src/x.rs".to_owned(),
            line: 3,
            col: 7,
            rule: "lock-order-cycle",
            message: "cycle \"a\" -> b".to_owned(),
        };
        let s = render(&[f]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"pastas-lint\""));
        assert!(s.contains("\"ruleId\": \"lock-order-cycle\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("cycle \\\"a\\\" -> b"), "message is escaped");
        // Every rule id appears in the driver catalog.
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn empty_findings_render_an_empty_results_array() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
