//! The file-hash-keyed incremental cache.
//!
//! Per-file analysis (lex → token rules → parse → summarize) dominates a
//! workspace run, and almost every file is unchanged between runs. The
//! cache stores, per file keyed by an FNV-1a hash of its bytes: the
//! post-suppression token-level findings, the reasoned suppression
//! records, and the flow summaries. A warm run re-reads and re-hashes
//! each file (cheap), reuses every matching record, and re-runs only the
//! interprocedural pass — which must always run, because a one-file edit
//! can change cross-file verdicts.
//!
//! The header pins a format revision and a fingerprint of the rule
//! catalog; any mismatch (or any malformed record) silently discards the
//! cache — a cold run is always correct.
//!
//! Format: line-oriented, tab-separated, `\`-escaped. A `=` line opens a
//! file section; `f` lines are findings, `s` lines suppression records,
//! and `F/A/C/B/P/V` lines are flow-summary records (see
//! [`flow::encode_summaries`](crate::flow::encode_summaries)).

use crate::flow::{self, FnSummary};
use crate::rules::{rule_id, Finding, SuppressionRecord, RULES};
use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// Bump when the cached record semantics change in a way the rule
/// fingerprint does not capture (e.g. summary walker fixes).
const FORMAT_REV: u32 = 1;

/// FNV-1a 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rules_fingerprint() -> u64 {
    let mut all = String::new();
    for (id, desc) in RULES {
        all.push_str(id);
        all.push('\x1f');
        all.push_str(desc);
        all.push('\x1e');
    }
    fnv1a(all.as_bytes())
}

/// One file's cached analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedFile {
    /// FNV-1a of the file bytes (plus the per-crate proptests flag).
    pub hash: u64,
    /// Post-suppression token-level findings.
    pub findings: Vec<Finding>,
    /// Reasoned suppressions (for filtering flow findings).
    pub supps: Vec<SuppressionRecord>,
    /// Flow summaries for the interprocedural pass.
    pub summaries: Vec<FnSummary>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Serialize the whole cache.
pub fn render(entries: &HashMap<String, CachedFile>) -> String {
    let mut out = format!("pastas-lint-cache\t{FORMAT_REV}\t{:016x}\n", rules_fingerprint());
    let mut paths: Vec<&String> = entries.keys().collect();
    paths.sort();
    for path in paths {
        let e = &entries[path];
        out.push_str(&format!("=\t{}\t{:016x}\n", esc(path), e.hash));
        for f in &e.findings {
            out.push_str(&format!(
                "f\t{}\t{}\t{}\t{}\n",
                f.line,
                f.col,
                f.rule,
                esc(&f.message)
            ));
        }
        for s in &e.supps {
            out.push_str(&format!(
                "s\t{}\t{}\t{}\n",
                s.line,
                u8::from(s.file_wide),
                esc(&s.rules.join(","))
            ));
        }
        out.push_str(&flow::encode_summaries(&e.summaries));
    }
    out
}

/// Parse a cache file's text. Returns `None` when the header does not
/// match the current engine (format revision or rule catalog changed).
pub fn parse(text: &str) -> Option<HashMap<String, CachedFile>> {
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split('\t').collect();
    if header.len() != 3
        || header[0] != "pastas-lint-cache"
        || header[1] != FORMAT_REV.to_string()
        || header[2] != format!("{:016x}", rules_fingerprint())
    {
        return None;
    }
    let mut out: HashMap<String, CachedFile> = HashMap::new();
    let mut current: Option<String> = None;
    let mut summary_buf = String::new();
    let flush = |out: &mut HashMap<String, CachedFile>,
                 current: &Option<String>,
                 summary_buf: &mut String| {
        if let Some(path) = current {
            if let Some(e) = out.get_mut(path) {
                e.summaries = flow::decode_summaries(summary_buf);
            }
        }
        summary_buf.clear();
    };
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("=") if fields.len() == 3 => {
                flush(&mut out, &current, &mut summary_buf);
                let path = unesc(fields[1]);
                let hash = u64::from_str_radix(fields[2], 16).unwrap_or(0);
                out.insert(path.clone(), CachedFile { hash, ..CachedFile::default() });
                current = Some(path);
            }
            Some("f") if fields.len() == 5 => {
                if let Some(e) = current.as_ref().and_then(|p| out.get_mut(p)) {
                    e.findings.push(Finding {
                        path: current.clone().unwrap_or_default(),
                        line: fields[1].parse().unwrap_or(0),
                        col: fields[2].parse().unwrap_or(0),
                        rule: rule_id(fields[3]),
                        message: unesc(fields[4]),
                    });
                }
            }
            Some("s") if fields.len() == 4 => {
                if let Some(e) = current.as_ref().and_then(|p| out.get_mut(p)) {
                    let rules = unesc(fields[3]);
                    e.supps.push(SuppressionRecord {
                        line: fields[1].parse().unwrap_or(0),
                        file_wide: fields[2] == "1",
                        rules: if rules.is_empty() {
                            Vec::new()
                        } else {
                            rules.split(',').map(str::to_owned).collect()
                        },
                    });
                }
            }
            _ => {
                summary_buf.push_str(line);
                summary_buf.push('\n');
            }
        }
    }
    flush(&mut out, &current, &mut summary_buf);
    Some(out)
}

/// Load a cache from disk; any problem yields an empty cache.
pub fn load(path: &Path) -> HashMap<String, CachedFile> {
    fs::read_to_string(path)
        .ok()
        .and_then(|text| parse(&text))
        .unwrap_or_default()
}

/// Persist the cache; failures are ignored (the cache is advisory).
pub fn store(path: &Path, entries: &HashMap<String, CachedFile>) {
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let _ = fs::write(path, render(entries));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn cache_roundtrip() {
        let mut entries = HashMap::new();
        entries.insert(
            "crates/serve/src/x.rs".to_owned(),
            CachedFile {
                hash: 0xdead_beef,
                findings: vec![Finding {
                    path: "crates/serve/src/x.rs".to_owned(),
                    line: 4,
                    col: 2,
                    rule: "no-unwrap-on-lock",
                    message: "tabs\tand\nnewlines".to_owned(),
                }],
                supps: vec![crate::rules::SuppressionRecord {
                    line: 9,
                    file_wide: true,
                    rules: vec!["lock-order-cycle".to_owned()],
                }],
                summaries: vec![FnSummary {
                    crate_name: "serve".to_owned(),
                    file: "crates/serve/src/x.rs".to_owned(),
                    name: "f".to_owned(),
                    line: 1,
                    ..FnSummary::default()
                }],
            },
        );
        let parsed = parse(&render(&entries)).expect("header matches");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn stale_header_discards_the_cache() {
        let text = "pastas-lint-cache\t0\t0000000000000000\n=\ta.rs\t00000000000000aa\n";
        assert!(parse(text).is_none());
        assert!(parse("").is_none());
        assert!(parse("garbage").is_none());
    }
}
