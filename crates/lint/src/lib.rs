//! `pastas-lint`: std-only static analysis for the pastas workspace.
//!
//! The serving stack is hand-rolled — its own HTTP parser, worker pool,
//! and columnar arena — exactly the layers where one stray `unwrap()`, a
//! wall-clock read in a cached code path, or an unclamped allocation
//! turns into a production incident. Nothing in the compiler enforces
//! those house rules, so this crate does: a hand-rolled Rust lexer
//! ([`lexer`]) feeds a rule engine ([`rules`]) that walks every `.rs`
//! file under `crates/*/src` and emits `file:line:col` diagnostics with
//! stable rule ids, exiting non-zero on findings. `scripts/ci.sh` runs it
//! as the `lint` stage.
//!
//! The rule catalog lives in [`rules::RULES`]; DESIGN.md §9 documents
//! each rule's rationale and the suppression policy
//! (`// lint:allow(<rule>) <reason>` — the reason is mandatory).
//!
//! The static pass has a dynamic twin: `debug_validate()` deep invariant
//! checks on `EventStore`, `CodeIndex`, `ResponseCache`, and `Snapshot`,
//! compiled under `cfg(debug_assertions)` and exercised by proptests and
//! at snapshot publication. The lint rules keep panics and wall clocks
//! out of the hot paths; the validators prove the data structures those
//! paths rely on are internally consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cachefile;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod workspace;

#[cfg(test)]
mod proptests;

pub use lexer::{lex, Token, TokenKind};
pub use rules::{check_file, CheckOptions, Finding, RULES};
pub use workspace::{
    analyze_sources, check_workspace, check_workspace_with, find_workspace_root,
    WorkspaceOptions,
};
