//! The workspace call graph over flow summaries.
//!
//! Resolution is name-based with a receiver-type heuristic: a call
//! `x.m()` where `x`'s type hint is `T` binds to `fn m` in `impl T`
//! blocks when any exist; an untyped call binds to same-crate candidates
//! first, then workspace-wide. Ubiquitous std-ish names (`new`, `get`,
//! `push`, …) are never resolved without a matching typed candidate, and
//! an untyped name with more than [`MAX_UNTYPED_CANDIDATES`] definitions
//! is dropped rather than fanned out — precision over recall, since
//! every edge can become a reported deadlock path. The caveats are laid
//! out in DESIGN.md §14.

use crate::flow::FnSummary;
use std::collections::HashMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Index of the callee in the summary slice.
    pub target: usize,
    /// Index into the caller's `calls` vector (for site/held info).
    pub call: usize,
}

/// The resolved call graph: `edges[i]` are function `i`'s outgoing edges.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Per-function resolved edges, parallel to the input summaries.
    pub edges: Vec<Vec<EdgeRef>>,
}

/// Method names so common that an untyped match is almost surely a std
/// or container method, not a workspace function.
const COMMON_SKIP: &[&str] = &[
    "new", "default", "len", "is_empty", "get", "get_mut", "insert", "remove", "push",
    "pop", "clone", "iter", "iter_mut", "into_iter", "next", "fmt", "eq", "ne", "cmp",
    "partial_cmp", "hash", "from", "into", "to_vec", "to_owned", "to_string", "as_str",
    "as_ref", "as_bytes", "as_slice", "map", "map_err", "and_then", "or_else", "filter",
    "fold", "collect", "extend", "clear", "sort", "sort_by", "sort_by_key",
    "sort_unstable", "retain", "drain", "with_capacity", "reserve", "contains",
    "contains_key", "starts_with", "ends_with", "split", "splitn", "trim", "parse",
    "min", "max", "clamp", "abs", "push_str", "chars", "bytes", "lines", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "ok", "ok_or", "ok_or_else", "err", "take",
    "replace", "get_or_insert_with", "entry", "or_insert", "or_insert_with",
    "or_default", "count", "sum", "any", "all", "find", "position", "rev", "zip",
    "enumerate", "skip", "chain", "flat_map", "flatten", "cloned", "copied", "last",
    "first", "is_some", "is_none", "is_ok", "is_err", "as_deref", "expect_err",
    "to_lowercase", "to_uppercase", "trim_start", "trim_end", "store", "load", "swap",
    "fetch_add", "fetch_sub", "wait", "wait_timeout", "notify_one", "notify_all",
];

/// Untyped calls with more definitions than this are dropped instead of
/// fanned out to every candidate.
const MAX_UNTYPED_CANDIDATES: usize = 8;

/// Resolve every call in `fns` to workspace definitions.
pub fn build(fns: &[FnSummary]) -> CallGraph {
    // Name index over callable (non-spawn-body) functions.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.is_spawn_body {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
    }
    let mut edges = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        for (ci, call) in f.calls.iter().enumerate() {
            let Some(candidates) = by_name.get(call.callee.as_str()) else {
                continue;
            };
            let chosen: Vec<usize> = if let Some(t) = &call.recv_ty {
                // A typed receiver binds only to impls of that type; a
                // typed receiver with no workspace impl is a std/external
                // type — no edge.
                candidates
                    .iter()
                    .copied()
                    .filter(|&j| fns[j].self_ty.as_deref() == Some(t.as_str()))
                    .collect()
            } else {
                if COMMON_SKIP.contains(&call.callee.as_str()) {
                    continue;
                }
                // Method syntax only binds to methods; free/path calls
                // prefer free functions over same-named methods. This
                // keeps `workbench.compact()` from resolving to a free
                // handler `fn compact(...)` that merely shares the name.
                let shape: Vec<usize> = if call.is_method {
                    candidates
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].self_ty.is_some())
                        .collect()
                } else {
                    let free: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].self_ty.is_none())
                        .collect();
                    if free.is_empty() { candidates.clone() } else { free }
                };
                let same_crate: Vec<usize> = shape
                    .iter()
                    .copied()
                    .filter(|&j| fns[j].crate_name == f.crate_name)
                    .collect();
                let pool = if same_crate.is_empty() { shape } else { same_crate };
                if pool.len() > MAX_UNTYPED_CANDIDATES {
                    continue;
                }
                pool
            };
            for j in chosen {
                if j != i {
                    edges[i].push(EdgeRef { target: j, call: ci });
                }
            }
        }
    }
    CallGraph { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{CallSite, FnSummary};

    fn fun(crate_name: &str, name: &str, self_ty: Option<&str>) -> FnSummary {
        FnSummary {
            crate_name: crate_name.to_owned(),
            file: format!("crates/{crate_name}/src/x.rs"),
            self_ty: self_ty.map(str::to_owned),
            name: name.to_owned(),
            line: 1,
            ..FnSummary::default()
        }
    }

    fn call(callee: &str, recv_ty: Option<&str>) -> CallSite {
        CallSite {
            callee: callee.to_owned(),
            recv_ty: recv_ty.map(str::to_owned),
            is_method: recv_ty.is_some(),
            line: 2,
            col: 1,
            held: Vec::new(),
        }
    }

    fn method_call(callee: &str) -> CallSite {
        CallSite { is_method: true, ..call(callee, None) }
    }

    #[test]
    fn typed_receiver_binds_to_matching_impl_only() {
        let mut a = fun("serve", "caller", None);
        a.calls.push(call("ingest", Some("ServeState")));
        let b = fun("serve", "ingest", Some("ServeState"));
        let c = fun("serve", "ingest", Some("IngestQueue"));
        let g = build(&[a, b, c]);
        assert_eq!(g.edges[0].len(), 1);
        assert_eq!(g.edges[0][0].target, 1);
    }

    #[test]
    fn typed_receiver_without_workspace_impl_gets_no_edge() {
        let mut a = fun("serve", "caller", None);
        a.calls.push(call("push", Some("Vec")));
        let b = fun("serve", "push", Some("Stack"));
        let g = build(&[a, b]);
        assert!(g.edges[0].is_empty());
    }

    #[test]
    fn untyped_prefers_same_crate_and_skips_common_names() {
        let mut a = fun("serve", "caller", None);
        a.calls.push(call("helper", None));
        a.calls.push(call("get", None));
        let b = fun("serve", "helper", None);
        let c = fun("query", "helper", None);
        let d = fun("serve", "get", Some("Cache"));
        let g = build(&[a, b, c, d]);
        assert_eq!(g.edges[0].len(), 1, "same-crate helper only, no get edge");
        assert_eq!(g.edges[0][0].target, 1);
    }

    #[test]
    fn untyped_method_calls_never_bind_to_free_functions() {
        let mut a = fun("serve", "caller", Some("ServeState"));
        a.calls.push(method_call("compact"));
        let handler = fun("serve", "compact", None);
        let method = fun("core", "compact", Some("Workbench"));
        let g = build(&[a, handler, method]);
        assert_eq!(g.edges[0].len(), 1, "{:?}", g.edges[0]);
        assert_eq!(g.edges[0][0].target, 2, "binds the method, not the handler");
    }

    #[test]
    fn free_calls_prefer_free_functions_over_methods() {
        let mut a = fun("serve", "caller", None);
        a.calls.push(call("compact", None));
        let handler = fun("serve", "compact", None);
        let method = fun("serve", "compact", Some("Workbench"));
        let g = build(&[a, handler, method]);
        assert_eq!(g.edges[0].len(), 1, "{:?}", g.edges[0]);
        assert_eq!(g.edges[0][0].target, 1, "binds the free fn, not the method");
    }

    #[test]
    fn spawn_bodies_are_not_callable() {
        let mut a = fun("par", "caller", None);
        a.calls.push(call("boot@spawn:3", None));
        let mut b = fun("par", "boot@spawn:3", None);
        b.is_spawn_body = true;
        let g = build(&[a, b]);
        assert!(g.edges[0].is_empty());
    }
}
