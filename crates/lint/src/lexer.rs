//! A hand-rolled Rust lexer producing a flat token stream with spans.
//!
//! Deliberately smaller than a compiler front end: no keyword table, no
//! numeric-literal validation, no macro expansion. What it *is* exact
//! about is the part that makes naive `grep`-style linting wrong —
//! string literals (including raw strings with arbitrarily many `#`
//! guards and byte/C variants), char literals vs. lifetimes, and line /
//! nested block comments. A call to `unwrap()` inside a string or a
//! comment is a [`TokenKind::Str`] / [`TokenKind::Comment`], never an
//! identifier, so rules that walk identifiers cannot be fooled.
//!
//! The lexer never fails: any byte soup (decoded lossily to UTF-8 by the
//! caller) produces a token stream, with unterminated literals simply
//! ending at end of input. That property is proptested in
//! `src/proptests.rs`.

/// What a token is. Comments are kept in the stream — the suppression
/// and doc-comment rules need them — and skipped by
/// [`significant`](crate::lexer::significant) for everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match`, …).
    Ident,
    /// An integer or float literal (suffix included: `42u32`, `1.5e3`).
    Number,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A character or byte literal: `'a'`, `b'\n'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// One punctuation character (`.`, `:`, `[`, `!`, …).
    Punct,
    /// A comment. `doc` is true for `///`, `//!`, `/** */`, `/*! */`.
    Comment {
        /// True when this is a doc comment.
        doc: bool,
        /// True for `/* … */` (false for `// …`).
        block: bool,
    },
}

/// One token: kind, source span, and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the first byte.
    pub line: u32,
    /// 1-based character column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True when this token is exactly the punctuation character `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src) == c.to_string().as_str()
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }
}

/// Indices of the non-comment tokens of `tokens`, in order.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment { .. }))
        .map(|(i, _)| i)
        .collect()
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance one *character* (multi-byte UTF-8 advances all its bytes),
    /// tracking line and column.
    fn bump(&mut self) {
        let Some(b) = self.peek() else { return };
        let width = match b {
            _ if b < 0x80 => 1,
            _ if b >= 0xf0 => 4,
            _ if b >= 0xe0 => 3,
            _ if b >= 0xc0 => 2,
            // A continuation byte at a character boundary cannot happen in
            // valid UTF-8; step over it defensively.
            _ => 1,
        };
        self.pos = (self.pos + width).min(self.bytes.len());
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    /// Advance while `pred` holds on the current byte.
    fn bump_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if !pred(b) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails; unterminated literals end at EOF.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { bytes: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek_at(1) == Some(b'/') => lex_line_comment(&mut cur),
            b'/' if cur.peek_at(1) == Some(b'*') => lex_block_comment(&mut cur),
            b'r' | b'b' | b'c' if starts_raw_or_prefixed_string(&cur) => {
                lex_prefixed_string(&mut cur)
            }
            _ if is_ident_start(b) => {
                cur.bump_while(is_ident_continue);
                // Raw identifier `r#name` (raw *strings* were handled above).
                if cur.pos == start + 1
                    && b == b'r'
                    && cur.peek() == Some(b'#')
                    && cur.peek_at(1).is_some_and(is_ident_start)
                {
                    cur.bump();
                    cur.bump_while(is_ident_continue);
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => lex_number(&mut cur),
            b'"' => lex_plain_string(&mut cur),
            b'\'' => lex_quote(&mut cur),
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token { kind, start, end: cur.pos, line, col });
    }
    tokens
}

fn lex_line_comment(cur: &mut Cursor) -> TokenKind {
    // `//`, `///`, `//!` — `////…` is a plain comment by convention.
    let doc = matches!(cur.peek_at(2), Some(b'!'))
        || (cur.peek_at(2) == Some(b'/') && cur.peek_at(3) != Some(b'/'));
    cur.bump_while(|b| b != b'\n');
    TokenKind::Comment { doc, block: false }
}

fn lex_block_comment(cur: &mut Cursor) -> TokenKind {
    let doc = matches!(cur.peek_at(2), Some(b'!'))
        || (cur.peek_at(2) == Some(b'*') && cur.peek_at(3) != Some(b'*'));
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (None, _) => break, // unterminated: comment runs to EOF
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            _ => cur.bump(),
        }
    }
    TokenKind::Comment { doc, block: true }
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br`, `c"`, …
/// (as opposed to an identifier that merely starts with r/b/c).
fn starts_raw_or_prefixed_string(cur: &Cursor) -> bool {
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        (Some(b'r' | b'c'), Some(b'"' | b'#'), _) => {
            // `r#ident` is a raw identifier, not a raw string: a raw
            // string's `#`s are followed by more `#`s or a quote.
            let mut i = 1;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        (Some(b'b'), Some(b'"' | b'\''), _) => true,
        (Some(b'b'), Some(b'r'), Some(b'"' | b'#')) => {
            let mut i = 2;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        _ => false,
    }
}

fn lex_prefixed_string(cur: &mut Cursor) -> TokenKind {
    // Consume the prefix letters (r, b, c, br).
    cur.bump_while(|b| matches!(b, b'r' | b'b' | b'c'));
    if cur.peek() == Some(b'\'') {
        // b'x'
        return lex_quote(cur);
    }
    // Count `#` guards for raw strings.
    let mut guards = 0usize;
    while cur.peek() == Some(b'#') {
        guards += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        // Not actually a string (defensive; starts_raw_or_prefixed_string
        // should prevent this). Treat consumed text as an identifier.
        return TokenKind::Ident;
    }
    cur.bump(); // opening quote
    if guards == 0 && !raw_prefix_just_consumed(cur) {
        // b"…" / c"…": escapes apply.
        consume_escaped_until(cur, b'"');
        return TokenKind::Str;
    }
    // Raw string: ends at `"` followed by `guards` hashes; no escapes.
    loop {
        match cur.peek() {
            None => break,
            Some(b'"') => {
                cur.bump();
                let mut matched = 0usize;
                while matched < guards && cur.peek() == Some(b'#') {
                    cur.bump();
                    matched += 1;
                }
                if matched == guards {
                    break;
                }
            }
            _ => cur.bump(),
        }
    }
    TokenKind::Str
}

/// After consuming a prefix and its opening quote: was this an `r`-style
/// raw string (no escape processing) rather than `b"`/`c"`? We answer by
/// looking back at the source — the prefix run just before the guards.
fn raw_prefix_just_consumed(cur: &Cursor) -> bool {
    // Scan back over the `"` to the prefix letters.
    let mut i = cur.pos.saturating_sub(2); // byte before the opening quote
    while i > 0 && cur.bytes.get(i) == Some(&b'#') {
        i -= 1;
    }
    matches!(cur.bytes.get(i), Some(b'r'))
}

fn lex_plain_string(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening quote
    consume_escaped_until(cur, b'"');
    TokenKind::Str
}

/// Consume up to and including an unescaped `close`; stop at EOF.
fn consume_escaped_until(cur: &mut Cursor, close: u8) {
    while let Some(b) = cur.peek() {
        if b == b'\\' {
            cur.bump();
            cur.bump(); // the escaped char (multi-char escapes like \u{…}
                        // contain no quote, so skipping one char suffices)
        } else if b == close {
            cur.bump();
            return;
        } else {
            cur.bump();
        }
    }
}

/// `'` starts either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\u{1F600}', '\''.
            cur.bump();
            cur.bump();
            consume_escaped_until(cur, b'\'');
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // 'a' is a char; 'a (no closing quote after the ident run) is
            // a lifetime; 'static is a lifetime.
            cur.bump_while(is_ident_continue);
            if cur.peek() == Some(b'\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some(b'\'') => {
            // '' — empty (invalid Rust, but we must not loop or panic).
            cur.bump();
            TokenKind::Char
        }
        Some(_) => {
            // '1', '?', … — a char literal of one non-ident char.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

fn lex_number(cur: &mut Cursor) -> TokenKind {
    // Integer part (covers 0x/0b/0o prefixes and type suffixes because
    // letters are consumed too).
    cur.bump_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // Fractional part — but not `0..10` range syntax.
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.bump_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_owned())).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let got = kinds("let x = a[1].unwrap();");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", "[", "1", "]", ".", "unwrap", "(", ")", ";"]
        );
        assert_eq!(got[0].0, TokenKind::Ident);
        assert_eq!(got[5].0, TokenKind::Number);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "call .unwrap() here"; s.len();"#;
        let got = kinds(src);
        assert!(got.iter().any(|(k, _)| *k == TokenKind::Str));
        let unwraps =
            got.iter().filter(|(k, t)| *k == TokenKind::Ident && t == "unwrap").count();
        assert_eq!(unwraps, 0, "unwrap inside a string is not an identifier");
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r###"let s = r#"a "quoted" unwrap()"#; x();"###;
        let got = kinds(src);
        let s = got.iter().find(|(k, _)| *k == TokenKind::Str).expect("raw string");
        assert!(s.1.starts_with("r#\"") && s.1.ends_with("\"#"), "{}", s.1);
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let got = kinds(r#"let a = b"GET /"; let c = b'\n';"#);
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Str && t.starts_with("b\"")));
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Char && t.starts_with("b'")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = got.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        let chars = got.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let got = kinds(src);
        let texts: Vec<&str> = got
            .iter()
            .filter(|(k, _)| !matches!(k, TokenKind::Comment { .. }))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(texts, ["a", "b"]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let got = kinds("/// doc\n// plain\n//! inner doc\nfn f() {}");
        let docs: Vec<bool> = got
            .iter()
            .filter_map(|(k, _)| match k {
                TokenKind::Comment { doc, .. } => Some(*doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, [true, false, true]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let got = kinds("let r#match = 1;");
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn line_and_col_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_everything_still_lexes() {
        for src in ["\"abc", "r#\"abc", "/* open", "'", "b\"x", "'\\", "r###\"x\"##"] {
            let _ = lex(src); // must not panic or loop
        }
    }

    #[test]
    fn range_after_number_is_not_a_float() {
        let got = kinds("for i in 0..10 {}");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"0") && texts.contains(&"10"), "{texts:?}");
    }
}
