//! Property tests for the lint engine's totality guarantees.
//!
//! The linter runs in CI over every workspace file, so the one invariant
//! that matters above all others is: **the lexer and rule engine never
//! panic**, no matter what bytes they are fed. These properties throw
//! arbitrary byte soup (lossy-decoded, exactly as `check_path` does),
//! arbitrary printable source, and quote/comment-delimiter-heavy strings
//! at the full pipeline and assert structural invariants of the token
//! stream on top.

use crate::lexer::lex;
use crate::rules::{check_file, CheckOptions, FileContext};
use crate::workspace::analyze_sources;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strings biased toward the characters that drive lexer state machines:
/// quotes, slashes, stars, hashes, backslashes, and the `r`/`b`/`c`
/// prefixes, mixed with plain printables and some multi-byte UTF-8.
fn tricky_source() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![
            Just("\"".to_owned()),
            Just("'".to_owned()),
            Just("//".to_owned()),
            Just("/*".to_owned()),
            Just("*/".to_owned()),
            Just("r#".to_owned()),
            Just("r\"".to_owned()),
            Just("br#\"".to_owned()),
            Just("c\"".to_owned()),
            Just("\\".to_owned()),
            Just("#".to_owned()),
            Just("\n".to_owned()),
            Just("æ—¥".to_owned()),
            "[ -~]{0,6}".prop_map(|s| s),
        ],
        0..60,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn lexer_total_on_byte_soup(bytes in vec(any::<u8>(), 0..400)) {
        // `check_path` lossy-decodes unreadable bytes the same way.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        for t in &tokens {
            prop_assert!(t.start <= t.end, "span order");
            prop_assert!(t.end <= src.len(), "span in bounds");
            prop_assert!(src.is_char_boundary(t.start), "start on char boundary");
            prop_assert!(src.is_char_boundary(t.end), "end on char boundary");
            prop_assert!(t.line >= 1 && t.col >= 1, "1-based positions");
        }
    }

    #[test]
    fn lexer_total_on_tricky_source(src in tricky_source()) {
        let tokens = lex(&src);
        // Tokens must be non-overlapping and in order: each token starts
        // at or after the previous one ended.
        for w in tokens.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "tokens ordered and disjoint");
        }
    }

    #[test]
    fn check_file_total_on_byte_soup(bytes in vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        // The hot-path crate scoping maximizes the number of rules that
        // run, so totality is exercised across the whole engine.
        for path in ["crates/serve/src/soup.rs", "crates/model/src/soup.rs", "x.rs"] {
            let findings =
                check_file(path, &src, CheckOptions { crate_has_proptests: false });
            for f in &findings {
                prop_assert!(f.line >= 1 && f.col >= 1, "1-based findings");
                prop_assert_eq!(f.path.as_str(), path);
            }
        }
    }

    #[test]
    fn parser_total_on_byte_soup(bytes in vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let ctx = FileContext::new("crates/core/src/soup.rs", &src, CheckOptions::default());
        let ast = crate::parse::parse_file(&ctx);
        for f in &ast.fns {
            prop_assert!(f.line >= 1 && f.col >= 1, "1-based fn positions");
        }
        // The flow summarizer must be total over whatever the parser made.
        let summaries = crate::flow::summarize(&ctx, &ast);
        for s in &summaries {
            prop_assert!(!s.name.is_empty(), "summaries carry a name");
        }
    }

    #[test]
    fn parser_total_on_tricky_source(src in tricky_source()) {
        let ctx = FileContext::new("crates/core/src/tricky.rs", &src, CheckOptions::default());
        let _ = crate::parse::parse_file(&ctx);
    }

    #[test]
    fn parse_does_not_disturb_the_token_stream(src in tricky_source()) {
        // The parser borrows the lexed tokens; re-lexing the same source
        // after a parse must reproduce the identical stream — parsing is
        // a pure reader.
        let before = lex(&src);
        let ctx = FileContext::new("crates/core/src/t.rs", &src, CheckOptions::default());
        let _ = crate::parse::parse_file(&ctx);
        let after = lex(&src);
        prop_assert_eq!(before.len(), after.len(), "token count changed");
        for (a, b) in before.iter().zip(after.iter()) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn full_pipeline_total_on_byte_soup(bytes in vec(any::<u8>(), 0..300)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let findings = analyze_sources(
            &[("crates/core/src/soup.rs".to_owned(), src, CheckOptions::default())],
            true,
        );
        for f in &findings {
            prop_assert!(f.line >= 1 && f.col >= 1, "1-based findings");
        }
    }

    #[test]
    fn check_file_total_on_tricky_source(src in tricky_source()) {
        let findings = check_file(
            "crates/serve/src/tricky.rs",
            &src,
            CheckOptions { crate_has_proptests: true },
        );
        // JSON rendering must also be total and produce valid shapes.
        for f in &findings {
            let json = f.render_json();
            prop_assert!(json.starts_with('{') && json.ends_with('}'));
        }
    }
}
