//! A lightweight recursive-descent parser over the lexer's token stream.
//!
//! This is *not* a Rust grammar: it recovers exactly the structure the
//! flow rules need — function items (with their impl type and parameter
//! type hints), nested blocks, call expressions with a best-effort
//! receiver chain, guard acquisitions (`.lock()` / `.read()` /
//! `.write()` with empty argument lists), `let`-bound guard names,
//! explicit `drop(guard)` calls, closures, and `spawn` closures (new
//! thread roots). Everything else is skipped without error: like the
//! lexer, the parser is **total** — any byte soup produces *some*
//! [`FileAst`], a property enforced by `src/proptests.rs`.
//!
//! Soundness caveats (documented in DESIGN.md §14): receivers are
//! resolved lexically (`self.field`, `param.field`), so a lock reached
//! through an intermediate binding can split into two identities, and a
//! call is matched to workspace functions by name with only a
//! receiver-type hint — both over- and under-approximation are possible
//! and every flow finding says which path it believes in, so a human can
//! veto it with a reasoned `lint:allow`.

use crate::lexer::TokenKind;
use crate::rules::FileContext;

/// How a guard was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` on a `Mutex`.
    Lock,
    /// `.read()` on an `RwLock`.
    Read,
    /// `.write()` on an `RwLock`.
    Write,
}

impl LockKind {
    /// The method name this kind was recognized from.
    pub fn method(self) -> &'static str {
        match self {
            LockKind::Lock => "lock",
            LockKind::Read => "read",
            LockKind::Write => "write",
        }
    }
}

/// A guard acquisition site.
#[derive(Debug, Clone)]
pub struct LockNode {
    /// Which method acquired the guard.
    pub kind: LockKind,
    /// Lexical receiver chain (`self.inner`, `shared.state`, `<expr>`).
    pub recv: String,
    /// `let` binding name when the guard is named (`let g = x.lock()…`).
    pub bound: Option<String>,
    /// True when `.unwrap()` immediately follows the acquisition.
    pub unwrapped: bool,
    /// True when the statement assigns through the guard
    /// (`*x.write()… = …`) — an `Arc`-swap publication site.
    pub deref_assigned: bool,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A call site (function, method, or macro).
#[derive(Debug, Clone)]
pub struct CallNode {
    /// Final path segment / method name / macro name.
    pub callee: String,
    /// Leading path segments for path calls (`thread::spawn` → `["thread"]`).
    pub path: Vec<String>,
    /// Lexical receiver chain for method calls.
    pub recv: Option<String>,
    /// True for `name!(…)` macro invocations.
    pub is_macro: bool,
    /// True when the argument list is empty.
    pub args_empty: bool,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// One node of a function body in evaluation order.
#[derive(Debug, Clone)]
pub enum Node {
    /// A guard acquisition.
    Lock(LockNode),
    /// A call site (arguments are flattened *before* this node).
    Call(CallNode),
    /// A nested block scope (`{ … }`, `if`/`match`/loop bodies).
    Block(Block),
    /// A closure body executed (at the latest) by its enclosing call.
    Closure(Block),
    /// A closure handed to `spawn` — a new thread root, not part of the
    /// enclosing function's flow.
    Spawn {
        /// The spawned closure's body.
        body: Block,
        /// 1-based line of the closure.
        line: u32,
    },
    /// `drop(name)` — an explicit guard release.
    DropGuard {
        /// The dropped binding.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// A statement boundary (`;` or the end of a braced sub-expression):
    /// temporary (unbound) guards die here.
    StmtEnd,
}

/// A brace/paren-scoped sequence of nodes.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Child nodes in evaluation order.
    pub nodes: Vec<Node>,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type the function is defined on, when any.
    pub self_ty: Option<String>,
    /// Parameter name → best-effort type hint (last capitalized path
    /// segment of the declared type, e.g. `shared: &Arc<Shared>` → `Shared`).
    pub params: Vec<(String, Option<String>)>,
    /// True when the function is test code (`#[test]`/`#[cfg(test)]`
    /// regions, `tests/` files, `proptests.rs`).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// The body, empty for bodiless trait methods.
    pub body: Block,
}

/// The per-file AST: every function item found in the file.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// All function items, in source order.
    pub fns: Vec<FnDef>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let",
    "in", "as", "pub", "use", "mod", "struct", "enum", "union", "impl", "trait", "where",
    "type", "const", "static", "ref", "mut", "move", "dyn", "unsafe", "extern", "crate",
    "super", "fn", "async", "await", "box", "yield", "true", "false",
];

fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

struct Parser<'c, 'a> {
    ctx: &'c FileContext<'a>,
    /// `(open, close, type)` ranges of impl/trait bodies.
    impls: Vec<(usize, usize, String)>,
}

impl<'c, 'a> Parser<'c, 'a> {
    fn len(&self) -> usize {
        self.ctx.sig.len()
    }

    fn text(&self, p: usize) -> &str {
        self.ctx.sig_text(p)
    }

    fn kind(&self, p: usize) -> TokenKind {
        self.ctx.sig_token(p).kind
    }

    fn is_punct(&self, p: usize, c: char) -> bool {
        p < self.len() && self.ctx.sig_token(p).is_punct(self.ctx.src, c)
    }

    fn is_ident(&self, p: usize) -> bool {
        p < self.len() && self.kind(p) == TokenKind::Ident
    }

    fn line(&self, p: usize) -> u32 {
        self.ctx.sig_token(p).line
    }

    fn col(&self, p: usize) -> u32 {
        self.ctx.sig_token(p).col
    }

    /// Are significant positions `p` and `p + 1` adjacent in the source
    /// (no whitespace between)? Distinguishes `::` from `: :` and `||`
    /// from `| |` closely enough for parsing.
    fn adjacent(&self, p: usize) -> bool {
        p + 1 < self.len() && self.ctx.sig_token(p).end == self.ctx.sig_token(p + 1).start
    }

    /// `::` at position `p` (two adjacent colons).
    fn is_path_sep(&self, p: usize) -> bool {
        self.is_punct(p, ':') && self.adjacent(p) && self.is_punct(p + 1, ':')
    }

    /// Collect impl/trait body ranges so functions can learn their type.
    fn scan_impls(&mut self) {
        let mut p = 0;
        while p < self.len() {
            let kw = self.text(p);
            if kw != "impl" && kw != "trait" {
                p += 1;
                continue;
            }
            // Walk the header to the body brace, tracking the last
            // plausible type name; `for` (in `impl Trait for Type`)
            // resets it so the *implementing* type wins.
            let mut ty = String::new();
            let mut angle = 0i32;
            let mut q = p + 1;
            let mut open = None;
            while q < self.len() {
                let t = self.text(q);
                match t {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" => {
                        open = Some(q);
                        break;
                    }
                    ";" => break, // `impl Trait for Type;` — no body
                    "for" => ty.clear(),
                    "where" => {} // bounds may mention types; stop caring
                    _ if self.is_ident(q) && angle <= 0 && !is_keyword(t) => {
                        // Path segments: the last segment wins (`a::b::C` → C).
                        ty = t.to_owned();
                    }
                    _ => {}
                }
                q += 1;
            }
            if let Some(open) = open {
                if let Some(close) = self.ctx.pair[open] {
                    self.impls.push((open, close, ty));
                    p = open + 1;
                    continue;
                }
            }
            p = q + 1;
        }
    }

    fn self_ty_at(&self, p: usize) -> Option<String> {
        // Innermost enclosing impl/trait body.
        self.impls
            .iter()
            .filter(|(open, close, _)| *open < p && p < *close)
            .min_by_key(|(open, close, _)| close - open)
            .map(|(_, _, ty)| ty.clone())
            .filter(|ty| !ty.is_empty())
    }

    /// Parse one `fn` item whose `fn` keyword sits at `p`. Returns the
    /// def and the position to resume scanning from.
    fn parse_fn(&self, p: usize) -> Option<(FnDef, usize)> {
        if !self.is_ident(p + 1) || is_keyword(self.text(p + 1)) {
            return None; // `fn(..)` pointer type or soup
        }
        let name = self.text(p + 1).to_owned();
        // Skip generics to the parameter list.
        let mut q = p + 2;
        if self.is_punct(q, '<') {
            let mut depth = 0i32;
            while q < self.len() {
                if self.is_punct(q, '<') {
                    depth += 1;
                } else if self.is_punct(q, '>') {
                    depth -= 1;
                    if depth == 0 {
                        q += 1;
                        break;
                    }
                }
                q += 1;
            }
        }
        if !self.is_punct(q, '(') {
            return None;
        }
        let params_close = self.ctx.pair[q]?;
        let params = self.parse_params(q, params_close);
        // Return type / where clause, then the body (or `;`).
        let mut b = params_close + 1;
        let mut open = None;
        while b < self.len() {
            if self.is_punct(b, '{') {
                open = Some(b);
                break;
            }
            if self.is_punct(b, ';') {
                break;
            }
            b += 1;
        }
        let (body, resume) = match open.and_then(|o| self.ctx.pair[o].map(|c| (o, c))) {
            Some((o, c)) => (self.parse_span(o + 1, c, None), c + 1),
            None => (Block::default(), b + 1),
        };
        let def = FnDef {
            name,
            self_ty: self.self_ty_at(p),
            params,
            is_test: self.ctx.sig_is_test(p),
            line: self.line(p),
            col: self.col(p),
            body,
        };
        Some((def, resume))
    }

    fn parse_params(&self, open: usize, close: usize) -> Vec<(String, Option<String>)> {
        let mut out = Vec::new();
        let mut p = open + 1;
        while p < close {
            // One parameter: up to the next top-level `,`.
            let mut end = p;
            while end < close {
                if self.is_punct(end, ',') {
                    break;
                }
                // Jump over nested groups so commas inside don't split.
                if matches!(self.text(end), "(" | "[" | "{") {
                    if let Some(partner) = self.ctx.pair[end] {
                        if partner > end && partner < close {
                            end = partner;
                        }
                    }
                }
                end += 1;
            }
            // name: the first identifier that is not a binding modifier.
            let mut name = None;
            let mut colon = None;
            for q in p..end {
                let t = self.text(q);
                if self.is_punct(q, ':') && !self.is_path_sep(q) && colon.is_none() {
                    colon = Some(q);
                }
                if name.is_none()
                    && self.is_ident(q)
                    && !matches!(t, "mut" | "ref" | "self")
                    && !is_keyword(t)
                    && colon.is_none()
                {
                    name = Some(t.to_owned());
                }
            }
            if let (Some(name), Some(colon)) = (name, colon) {
                // Type hint: the last capitalized identifier of the type.
                let mut hint = None;
                for q in colon + 1..end {
                    let t = self.text(q);
                    if self.is_ident(q)
                        && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && !matches!(t, "Arc" | "Box" | "Rc" | "Option" | "Vec" | "Mutex" | "RwLock")
                    {
                        hint = Some(t.to_owned());
                    }
                }
                out.push((name, hint));
            }
            p = end + 1;
        }
        out
    }

    /// Parse the token span `[lo, hi)` into a block. `enclosing_call` is
    /// the callee name whose argument list this span is, used to classify
    /// closures handed to `spawn`.
    fn parse_span(&self, lo: usize, hi: usize, enclosing_call: Option<&str>) -> Block {
        let mut nodes = Vec::new();
        let mut pending_let: Option<String> = None;
        let mut stmt_star = false; // statement started with `*…`
        let mut stmt_locks: Vec<usize> = Vec::new(); // node indices of this stmt's locks
        let mut at_stmt_start = true;
        let mut p = lo;
        while p < hi && p < self.len() {
            let text = self.text(p);
            // Nested fn items do not execute here; skip their bodies.
            if text == "fn" && self.is_ident(p + 1) && !is_keyword(self.text(p + 1)) {
                if let Some((_, resume)) = self.parse_fn(p) {
                    p = resume;
                    continue;
                }
            }
            if self.is_punct(p, ';') {
                nodes.push(Node::StmtEnd);
                pending_let = None;
                stmt_star = false;
                stmt_locks.clear();
                at_stmt_start = true;
                p += 1;
                continue;
            }
            if self.is_punct(p, '{') {
                if let Some(close) = self.ctx.pair[p] {
                    nodes.push(Node::Block(self.parse_span(p + 1, close, None)));
                    nodes.push(Node::StmtEnd);
                    pending_let = None;
                    stmt_locks.clear();
                    at_stmt_start = true;
                    p = close + 1;
                    continue;
                }
            }
            if self.is_punct(p, '*') && at_stmt_start {
                stmt_star = true;
                at_stmt_start = false;
                p += 1;
                continue;
            }
            // Plain `=` in a `*guard… = value` statement: the write guard
            // in this statement is a publication (deref-assignment).
            if self.is_punct(p, '=') && stmt_star && !self.adjacent_to_operator(p) {
                for &i in &stmt_locks {
                    if let Node::Lock(l) = &mut nodes[i] {
                        if l.kind == LockKind::Write || l.kind == LockKind::Lock {
                            l.deref_assigned = true;
                        }
                    }
                }
                at_stmt_start = false;
                p += 1;
                continue;
            }
            if text == "let" {
                // `let [mut] name = …` — capture the binding name; tuple
                // and struct patterns yield no name (guards stay temporary).
                let mut q = p + 1;
                if q < self.len() && self.text(q) == "mut" {
                    q += 1;
                }
                if self.is_ident(q) && !is_keyword(self.text(q)) && self.is_punct(q + 1, '=')
                {
                    pending_let = Some(self.text(q).to_owned());
                } else {
                    pending_let = None;
                }
                at_stmt_start = false;
                p = q;
                continue;
            }
            if text == "drop"
                && self.is_punct(p + 1, '(')
                && self.is_ident(p + 2)
                && self.is_punct(p + 3, ')')
            {
                nodes.push(Node::DropGuard {
                    name: self.text(p + 2).to_owned(),
                    line: self.line(p),
                });
                at_stmt_start = false;
                p += 4;
                continue;
            }
            if self.is_punct(p, '|') && self.closure_starts(lo, p) {
                if let Some((body_lo, body_hi, resume)) = self.closure_body(p, hi) {
                    let body = self.parse_span(body_lo, body_hi, None);
                    let node = if enclosing_call == Some("spawn") {
                        Node::Spawn { body, line: self.line(p) }
                    } else {
                        Node::Closure(body)
                    };
                    nodes.push(node);
                    at_stmt_start = false;
                    p = resume;
                    continue;
                }
            }
            if self.is_ident(p) && !is_keyword(text) {
                if let Some(next) = self.parse_callish(p, &mut nodes, &mut pending_let, &mut stmt_locks)
                {
                    at_stmt_start = false;
                    p = next;
                    continue;
                }
            }
            at_stmt_start = false;
            p += 1;
        }
        Block { nodes }
    }

    /// Is the `=` at `p` part of a compound operator (`==`, `<=`, `+=` …)?
    fn adjacent_to_operator(&self, p: usize) -> bool {
        let before = p > 0
            && self.ctx.sig_token(p - 1).end == self.ctx.sig_token(p).start
            && matches!(self.text(p - 1), "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^");
        let after = self.adjacent(p) && self.text(p + 1) == "=";
        before || after
    }

    /// Does a `|` at `p` start a closure (vs. a binary/pattern or)?
    fn closure_starts(&self, lo: usize, p: usize) -> bool {
        if p == lo {
            return true; // first token of an argument span
        }
        matches!(self.text(p - 1), "(" | "," | "=" | "{" | ";" | "move" | "return" | "else")
    }

    /// Locate a closure's body span: `(body_lo, body_hi, resume)`.
    fn closure_body(&self, bar: usize, hi: usize) -> Option<(usize, usize, usize)> {
        // Parameters: `||` (adjacent bars) or `|…|`.
        let params_end = if self.adjacent(bar) && self.is_punct(bar + 1, '|') {
            bar + 1
        } else {
            let mut q = bar + 1;
            loop {
                if q >= hi || q >= self.len() {
                    return None;
                }
                if self.is_punct(q, '|') {
                    break q;
                }
                // Jump nested groups inside parameter types.
                if matches!(self.text(q), "(" | "[" | "{") {
                    if let Some(partner) = self.ctx.pair[q] {
                        if partner > q {
                            q = partner;
                        }
                    }
                }
                q += 1;
            }
        };
        let body_start = params_end + 1;
        if body_start >= hi {
            return Some((body_start, body_start, body_start));
        }
        if self.is_punct(body_start, '{') {
            let close = self.ctx.pair[body_start]?;
            return Some((body_start + 1, close.min(hi), close + 1));
        }
        // Expression body: runs to the next top-level `,` or span end.
        let mut q = body_start;
        while q < hi && q < self.len() {
            if self.is_punct(q, ',') {
                break;
            }
            if matches!(self.text(q), "(" | "[" | "{") {
                if let Some(partner) = self.ctx.pair[q] {
                    if partner > q && partner < hi {
                        q = partner;
                    } else {
                        break;
                    }
                }
            }
            q += 1;
        }
        Some((body_start, q.min(hi), q.min(hi)))
    }

    /// Parse a call-ish construct starting at identifier `p`: a path call,
    /// macro invocation, method call, or guard acquisition. Appends nodes
    /// and returns the resume position, or `None` when `p` is a plain
    /// identifier.
    fn parse_callish(
        &self,
        p: usize,
        nodes: &mut Vec<Node>,
        pending_let: &mut Option<String>,
        stmt_locks: &mut Vec<usize>,
    ) -> Option<usize> {
        let after_dot = p > 0 && self.is_punct(p - 1, '.');
        if after_dot {
            return self.parse_method(p, nodes, pending_let, stmt_locks);
        }
        // Path: ident (:: ident)*.
        let mut path = vec![self.text(p).to_owned()];
        let mut q = p + 1;
        while self.is_path_sep(q) && self.is_ident(q + 2) && !is_keyword(self.text(q + 2)) {
            path.push(self.text(q + 2).to_owned());
            q += 3;
        }
        // Turbofish `::<…>`.
        if self.is_path_sep(q) && self.is_punct(q + 2, '<') {
            let mut depth = 0i32;
            let mut r = q + 2;
            while r < self.len() {
                if self.is_punct(r, '<') {
                    depth += 1;
                } else if self.is_punct(r, '>') {
                    depth -= 1;
                    if depth == 0 {
                        r += 1;
                        break;
                    }
                }
                r += 1;
            }
            q = r;
        }
        // Macro `name!(…)` / `name![…]` / `name!{…}`.
        if path.len() == 1
            && self.is_punct(q, '!')
            && q + 1 < self.len()
            && matches!(self.text(q + 1), "(" | "[" | "{")
        {
            let open = q + 1;
            let close = self.ctx.pair[open].unwrap_or(open);
            let callee = path.pop().unwrap_or_default();
            let line = self.line(p);
            let col = self.col(p);
            let inner = self.parse_span(open + 1, close, None);
            nodes.extend(inner.nodes);
            nodes.push(Node::Call(CallNode {
                callee,
                path: Vec::new(),
                recv: None,
                is_macro: true,
                args_empty: close == open + 1,
                line,
                col,
            }));
            return Some(close + 1);
        }
        if !self.is_punct(q, '(') {
            // Plain identifier/path — consume the path tokens.
            return if q > p + 1 { Some(q) } else { None };
        }
        let open = q;
        let close = self.ctx.pair[open].unwrap_or(open);
        let callee = path.pop().unwrap_or_default();
        let line = self.line(p);
        let col = self.col(p);
        let inner = self.parse_span(open + 1, close, Some(&callee));
        nodes.extend(inner.nodes);
        nodes.push(Node::Call(CallNode {
            callee,
            path,
            recv: None,
            is_macro: false,
            args_empty: close == open + 1,
            line,
            col,
        }));
        Some(close + 1)
    }

    fn parse_method(
        &self,
        p: usize,
        nodes: &mut Vec<Node>,
        pending_let: &mut Option<String>,
        stmt_locks: &mut Vec<usize>,
    ) -> Option<usize> {
        if !self.is_punct(p + 1, '(') {
            return None; // field access / `.await`-style postfix
        }
        let open = p + 1;
        let close = self.ctx.pair[open].unwrap_or(open);
        let name = self.text(p);
        let recv = self.receiver_chain(p - 1);
        let line = self.line(p);
        let col = self.col(p);
        let empty = close == open + 1;
        if empty && matches!(name, "lock" | "read" | "write") {
            let kind = match name {
                "lock" => LockKind::Lock,
                "read" => LockKind::Read,
                _ => LockKind::Write,
            };
            // `.unwrap()` directly chained onto the acquisition?
            let unwrapped = self.is_punct(close + 1, '.')
                && close + 2 < self.len()
                && self.text(close + 2) == "unwrap"
                && self.is_punct(close + 3, '(')
                && self.is_punct(close + 4, ')');
            stmt_locks.push(nodes.len());
            nodes.push(Node::Lock(LockNode {
                kind,
                recv,
                bound: pending_let.take(),
                unwrapped,
                deref_assigned: false,
                line,
                col,
            }));
            return Some(close + 1);
        }
        let inner = self.parse_span(open + 1, close, Some(name));
        nodes.extend(inner.nodes);
        nodes.push(Node::Call(CallNode {
            callee: name.to_owned(),
            path: Vec::new(),
            recv: Some(recv),
            is_macro: false,
            args_empty: empty,
            line,
            col,
        }));
        Some(close + 1)
    }

    /// Walk back from the `.` at `dot` to build the lexical receiver
    /// chain: `self.inner`, `shared.state`, or `<expr>` when the chain
    /// starts at a call/index result.
    fn receiver_chain(&self, dot: usize) -> String {
        let mut segs: Vec<String> = Vec::new();
        let mut p = dot;
        loop {
            if p == 0 {
                break;
            }
            let prev = p - 1;
            if self.is_ident(prev) && !is_keyword(self.text(prev)) || self.text(prev) == "self" {
                segs.push(self.text(prev).to_owned());
                if prev >= 2 && self.is_punct(prev - 1, '.') {
                    p = prev - 1;
                    continue;
                }
                break;
            }
            if self.is_punct(prev, ')') || self.is_punct(prev, ']') {
                segs.push("<expr>".to_owned());
            }
            break;
        }
        segs.reverse();
        segs.join(".")
    }
}

/// Parse one file's functions out of an annotated [`FileContext`].
pub fn parse_file(ctx: &FileContext<'_>) -> FileAst {
    let mut parser = Parser { ctx, impls: Vec::new() };
    parser.scan_impls();
    let mut fns = Vec::new();
    let mut p = 0;
    while p < parser.len() {
        if parser.text(p) == "fn" {
            if let Some((def, _resume)) = parser.parse_fn(p) {
                fns.push(def);
                // Do not jump past the body: nested fns inside get their
                // own defs from the same linear scan.
            }
        }
        p += 1;
    }
    FileAst { fns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{CheckOptions, FileContext};

    fn ast(src: &str) -> FileAst {
        let ctx = FileContext::new("crates/serve/src/t.rs", src, CheckOptions::default());
        parse_file(&ctx)
    }

    fn flat<'b>(block: &'b Block, out: &mut Vec<&'b Node>) {
        for n in &block.nodes {
            out.push(n);
            match n {
                Node::Block(b) | Node::Closure(b) => flat(b, out),
                Node::Spawn { body, .. } => flat(body, out),
                _ => {}
            }
        }
    }

    fn nodes(def: &FnDef) -> Vec<&Node> {
        let mut out = Vec::new();
        flat(&def.body, &mut out);
        out
    }

    #[test]
    fn fn_names_impl_types_and_params() {
        let a = ast(
            "impl Cache { fn get(&self, key: &str) -> u32 { 0 } }\n\
             fn submit(shared: &Arc<Shared>, n: usize) {}\n",
        );
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "get");
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Cache"));
        assert_eq!(a.fns[1].name, "submit");
        assert_eq!(a.fns[1].self_ty, None);
        assert_eq!(
            a.fns[1].params,
            vec![("shared".into(), Some("Shared".into())), ("n".into(), None)]
        );
    }

    #[test]
    fn trait_impl_for_takes_the_implementing_type() {
        let a = ast("impl Drop for Pool { fn drop(&mut self) { self.state.lock(); } }");
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Pool"));
    }

    #[test]
    fn locks_capture_receiver_binding_and_unwrap() {
        let a = ast(
            "impl Q { fn f(&self) {\n\
               let mut inner = self.inner.lock().unwrap();\n\
               self.other.read();\n\
               drop(inner);\n\
             } }",
        );
        let ns = nodes(&a.fns[0]);
        let locks: Vec<&LockNode> = ns
            .iter()
            .filter_map(|n| match n {
                Node::Lock(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].recv, "self.inner");
        assert_eq!(locks[0].bound.as_deref(), Some("inner"));
        assert!(locks[0].unwrapped);
        assert_eq!(locks[1].kind, LockKind::Read);
        assert_eq!(locks[1].bound, None);
        assert!(ns.iter().any(|n| matches!(n, Node::DropGuard { name, .. } if name == "inner")));
    }

    #[test]
    fn deref_assignment_marks_publication() {
        let a = ast("impl S { fn publish(&self, next: Arc<Snap>) { *self.current.write().unwrap_or_else(|e| e.into_inner()) = next; } }");
        let ns = nodes(&a.fns[0]);
        let lock = ns
            .iter()
            .find_map(|n| match n {
                Node::Lock(l) if l.kind == LockKind::Write => Some(l),
                _ => None,
            })
            .expect("write lock");
        assert!(lock.deref_assigned, "publication site detected");
    }

    #[test]
    fn calls_paths_macros_and_spawns() {
        let a = ast(
            "fn main() {\n\
               let h = thread::spawn(move || { work(); });\n\
               helper(1);\n\
               panic!(\"boom\");\n\
               h.join();\n\
             }",
        );
        let ns = nodes(&a.fns[0]);
        assert!(ns.iter().any(|n| matches!(n, Node::Spawn { .. })));
        assert!(ns.iter().any(
            |n| matches!(n, Node::Call(c) if c.callee == "spawn" && c.path == ["thread"])
        ));
        assert!(ns
            .iter()
            .any(|n| matches!(n, Node::Call(c) if c.callee == "panic" && c.is_macro)));
        assert!(ns.iter().any(
            |n| matches!(n, Node::Call(c) if c.callee == "join" && c.recv.as_deref() == Some("h"))
        ));
        // `work()` lives inside the spawn body, which we also flattened.
        assert!(ns.iter().any(|n| matches!(n, Node::Call(c) if c.callee == "work")));
    }

    #[test]
    fn nested_fn_bodies_do_not_leak_into_the_outer_flow() {
        let a = ast("fn outer() { fn inner() { a.lock(); } other(); }");
        assert_eq!(a.fns.len(), 2);
        let outer = a.fns.iter().find(|f| f.name == "outer").unwrap();
        let ns = nodes(outer);
        assert!(
            !ns.iter().any(|n| matches!(n, Node::Lock(_))),
            "inner's lock is not outer's"
        );
        assert!(ns.iter().any(|n| matches!(n, Node::Call(c) if c.callee == "other")));
    }

    #[test]
    fn total_on_soup() {
        for src in ["fn", "fn f(", "impl {", "fn f() { a.lock(", "|x|", "fn f() { *x = ", "::<"] {
            let _ = ast(src);
        }
    }
}
