//! The committed findings baseline.
//!
//! `lint-baseline.json` records, per `(file, rule)`, how many findings
//! are accepted legacy debt. CI fails on anything beyond the baseline,
//! so new findings can't ride in on old noise, while burn-down is a
//! reviewable diff that only ever shrinks the file. The format is a
//! fixed shape parsed by a tiny hand-rolled scanner (the tool is
//! dependency-free):
//!
//! ```json
//! {"version": 1, "findings": [
//!   {"file": "crates/x/src/y.rs", "rule": "lock-order-cycle", "count": 2}
//! ]}
//! ```

use crate::rules::{json_str, Finding};
use std::collections::BTreeMap;

/// Accepted finding counts keyed by `(file, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(file, rule)` → accepted count.
    pub counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Build a baseline accepting exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts = BTreeMap::new();
        for f in findings {
            *counts.entry((f.path.clone(), f.rule.to_owned())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Keep only findings beyond the baseline. When a `(file, rule)`
    /// group exceeds its accepted count, the whole group is reported —
    /// the accepted ones are context for deciding which is "new".
    pub fn filter(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let current = Baseline::from_findings(&findings);
        findings
            .into_iter()
            .filter(|f| {
                let key = (f.path.clone(), f.rule.to_owned());
                let seen = current.counts.get(&key).copied().unwrap_or(0);
                let accepted = self.counts.get(&key).copied().unwrap_or(0);
                seen > accepted
            })
            .collect()
    }

    /// Serialize to the committed JSON form (sorted, diff-stable).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"version\": 1, \"findings\": [\n");
        let entries: Vec<String> = self
            .counts
            .iter()
            .map(|((file, rule), count)| {
                format!(
                    "  {{\"file\": {}, \"rule\": {}, \"count\": {}}}",
                    json_str(file),
                    json_str(rule),
                    count
                )
            })
            .collect();
        out.push_str(&entries.join(",\n"));
        if !entries.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Parse [`render`](Baseline::render) output (or anything matching
    /// the fixed shape). Unknown keys are skipped; a malformed file is an
    /// error — a silently empty baseline would fail CI on every accepted
    /// finding, which is noisy but safe, yet better reported up front.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut cur = Scanner { text: text.as_bytes(), pos: 0 };
        if !text.contains("\"findings\"") {
            return Err("baseline: missing \"findings\" array".to_owned());
        }
        let mut file: Option<String> = None;
        let mut rule: Option<String> = None;
        let mut count: Option<usize> = None;
        let mut expect_value_for: Option<&'static str> = None;
        while let Some(tok) = cur.next_token() {
            match tok {
                Tok::Str(s) => {
                    if let Some(key) = expect_value_for.take() {
                        match key {
                            "file" => file = Some(s),
                            "rule" => rule = Some(s),
                            _ => {}
                        }
                    } else {
                        expect_value_for = match s.as_str() {
                            "file" => Some("file"),
                            "rule" => Some("rule"),
                            "count" => Some("count"),
                            _ => None,
                        };
                    }
                }
                Tok::Num(n) => {
                    if expect_value_for.take() == Some("count") {
                        count = Some(n);
                    }
                }
                Tok::ObjClose => {
                    if let (Some(f), Some(r), Some(c)) =
                        (file.take(), rule.take(), count.take())
                    {
                        counts.insert((f, r), c);
                    }
                }
            }
        }
        Ok(Baseline { counts })
    }
}

enum Tok {
    Str(String),
    Num(usize),
    ObjClose,
}

struct Scanner<'a> {
    text: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn next_token(&mut self) -> Option<Tok> {
        while self.pos < self.text.len() {
            let b = self.text[self.pos];
            self.pos += 1;
            match b {
                b'"' => {
                    let mut s = String::new();
                    while self.pos < self.text.len() {
                        let c = self.text[self.pos];
                        self.pos += 1;
                        match c {
                            b'"' => break,
                            b'\\' => {
                                if self.pos < self.text.len() {
                                    let e = self.text[self.pos];
                                    self.pos += 1;
                                    s.push(match e {
                                        b'n' => '\n',
                                        b't' => '\t',
                                        other => other as char,
                                    });
                                }
                            }
                            c => s.push(c as char),
                        }
                    }
                    return Some(Tok::Str(s));
                }
                b'0'..=b'9' => {
                    let mut n = (b - b'0') as usize;
                    while self.pos < self.text.len()
                        && self.text[self.pos].is_ascii_digit()
                    {
                        n = n.saturating_mul(10)
                            + (self.text[self.pos] - b'0') as usize;
                        self.pos += 1;
                    }
                    return Some(Tok::Num(n));
                }
                b'}' => return Some(Tok::ObjClose),
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, rule: &'static str, line: u32) -> Finding {
        Finding { path: path.to_owned(), line, col: 1, rule, message: "m".to_owned() }
    }

    #[test]
    fn roundtrip() {
        let fs = vec![
            finding("a.rs", "lock-order-cycle", 1),
            finding("a.rs", "lock-order-cycle", 9),
            finding("b.rs", "no-unwrap-on-lock", 2),
        ];
        let base = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&base.render()).expect("parses");
        assert_eq!(base, parsed);
        assert_eq!(
            parsed.counts[&("a.rs".to_owned(), "lock-order-cycle".to_owned())],
            2
        );
    }

    #[test]
    fn filter_reports_only_groups_over_baseline() {
        let accepted = vec![finding("a.rs", "lock-order-cycle", 1)];
        let base = Baseline::from_findings(&accepted);
        // Same count: silent.
        assert!(base.filter(vec![finding("a.rs", "lock-order-cycle", 5)]).is_empty());
        // One more in the group: the whole group is reported.
        let now = vec![
            finding("a.rs", "lock-order-cycle", 5),
            finding("a.rs", "lock-order-cycle", 6),
        ];
        assert_eq!(base.filter(now).len(), 2);
        // A different rule is not covered.
        assert_eq!(base.filter(vec![finding("a.rs", "no-unwrap-on-lock", 5)]).len(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("not json at all").is_err());
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let base = Baseline::default();
        let parsed = Baseline::parse(&base.render()).expect("parses");
        assert!(parsed.counts.is_empty());
    }
}
