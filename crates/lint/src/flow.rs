//! Flow summaries and the interprocedural rules.
//!
//! Per file, [`summarize`] walks the [`parse`](crate::parse) AST with a
//! live-guard stack and boils every function down to a [`FnSummary`]:
//! which locks it acquires (and which were already held), which calls it
//! makes (and under which guards), where it can block, panic, or publish
//! a snapshot. Summaries are small, owned, and serializable — they are
//! what the incremental cache stores, so warm runs skip parsing
//! entirely.
//!
//! Across files, [`interprocedural`] builds a call graph
//! ([`graph`](crate::graph)) over all summaries and runs four rules:
//!
//! * **lock-order-cycle** — a lock-acquisition-order graph (edges
//!   `held → acquired`, propagated through calls); any strongly
//!   connected component is a potential deadlock, reported with one
//!   acquisition path per edge of a witness cycle.
//! * **blocking-call-under-lock** — `join`/`recv`/`sleep`/blocking I/O
//!   reachable while a guard is live (`Condvar::wait*` is exempt — it
//!   releases the lock).
//! * **transitive-no-panic-hot-path** — panic sites reachable through
//!   the call graph from the serving roots, in crates the token-level
//!   rule does not already police.
//! * **guard-held-across-snapshot-publish** — a guard live across a
//!   snapshot publication (`*current.write()… = …` deref-assignment),
//!   directly or through a call.

use crate::parse::{Block, FileAst, LockKind, Node};
use crate::rules::{FileContext, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// A guard acquisition with the guards already held at that point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acq {
    /// Canonical lock id (`crate::Type.field`).
    pub lock: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lock ids of guards live when this one was acquired.
    pub held: Vec<String>,
}

/// A call site with its live-guard set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (method or final path segment).
    pub callee: String,
    /// Best-effort receiver type (`self` → impl type, typed param, or
    /// `Type::method` path prefix).
    pub recv_ty: Option<String>,
    /// True for `x.m()` method syntax (binds to `impl` methods only);
    /// false for `m()`/`a::m()` (prefers free functions).
    pub is_method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lock ids of guards live at the call.
    pub held: Vec<String>,
}

/// A directly blocking operation (`join`, `recv`, `sleep`, blocking I/O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingSite {
    /// What blocks (the method name).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lock ids of guards live at the operation.
    pub held: Vec<String>,
}

/// A construct that can panic (`unwrap`, `expect`, `panic!`-family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics (`unwrap`, `expect`, `panic!`, …).
    pub what: String,
    /// Receiver type hint for `x.unwrap()`/`x.expect(…)` when `x` is
    /// `self` or a typed param. Lets the interprocedural pass drop sites
    /// where the workspace defines its own same-named method on that
    /// type (e.g. a `Result`-returning `Parser::expect`).
    pub recv_ty: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A snapshot publication site: a deref-assignment through a lock guard
/// (`*state.current.write()… = next`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lock ids of *other* guards live at the publication (the guard
    /// doing the publishing is excluded — it is the publication).
    pub held: Vec<String>,
}

/// Everything the interprocedural rules need to know about one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnSummary {
    /// The crate the function lives in.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Impl/trait type, when the fn is a method.
    pub self_ty: Option<String>,
    /// Function name; spawned-closure pseudo-functions are named
    /// `parent@spawn:<line>`.
    pub name: String,
    /// 1-based line of the `fn` keyword (or the spawn closure).
    pub line: u32,
    /// True for test code (rules report nothing inside it).
    pub is_test: bool,
    /// True for a `spawn` closure body — a separate thread role: it
    /// contributes lock-order edges but is not callable by name.
    pub is_spawn_body: bool,
    /// Guard acquisitions, in flow order.
    pub acquisitions: Vec<Acq>,
    /// Resolvable call sites, in flow order.
    pub calls: Vec<CallSite>,
    /// Directly blocking operations.
    pub blocking: Vec<BlockingSite>,
    /// Panic-capable constructs.
    pub panics: Vec<PanicSite>,
    /// Snapshot publications.
    pub publishes: Vec<PublishSite>,
}

/// Macros that abort the surrounding request when they fire.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names that block the calling thread. `Condvar::wait`/
/// `wait_timeout` are deliberately absent: they atomically release the
/// guard they are handed, so "blocking under a lock" is their job.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "sleep",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
];

/// Crates whose panic sites the token-level `no-panic-hot-path` rule
/// already polices — the transitive rule skips them to avoid demanding a
/// second `lint:allow` at the same site.
const TOKEN_COVERED_CRATES: &[&str] = &["serve", "par", "query"];

/// Hot-path roots: `(crate, fn)` pairs the transitive panic rule walks
/// from. These are the entry points the paper's sub-0.1 s interactivity
/// budget rides on.
const HOT_ROOTS: &[(&str, &str)] = &[
    ("serve", "route"),
    ("query", "execute"),
    ("query", "execute_explain"),
    ("analytics", "cohort_profile"),
    ("analytics", "cohort_profile_prepared"),
    ("core", "cohort_profile"),
];

struct Walker<'a> {
    crate_name: String,
    file: String,
    file_stem: String,
    self_ty: Option<String>,
    params: &'a [(String, Option<String>)],
    extra: Vec<FnSummary>,
}

#[derive(Debug, Clone)]
struct Guard {
    binding: Option<String>,
    lock: String,
    temp: bool,
}

impl Walker<'_> {
    /// Canonical lock identity for a receiver chain. `self.field` and
    /// `param.field` (with a typed param) become `crate::Type.field`;
    /// anything else falls back to `crate::<file-stem>.chain`, which can
    /// merge distinct locks in one file — a deliberate coarseness,
    /// documented in DESIGN.md §14.
    fn lock_id(&self, recv: &str) -> String {
        let mut segs = recv.split('.');
        let first = segs.next().unwrap_or("");
        let rest = segs.collect::<Vec<_>>().join(".");
        if first == "self" {
            if let Some(ty) = &self.self_ty {
                return if rest.is_empty() {
                    format!("{}::{}", self.crate_name, ty)
                } else {
                    format!("{}::{}.{}", self.crate_name, ty, rest)
                };
            }
        }
        if let Some((_, Some(hint))) =
            self.params.iter().find(|(name, _)| name == first)
        {
            return if rest.is_empty() {
                format!("{}::{}", self.crate_name, hint)
            } else {
                format!("{}::{}.{}", self.crate_name, hint, rest)
            };
        }
        format!("{}::{}.{}", self.crate_name, self.file_stem, recv)
    }

    /// Best-effort receiver type for call resolution.
    fn recv_ty(&self, recv: &str) -> Option<String> {
        let mut segs = recv.split('.');
        let first = segs.next()?;
        if segs.next().is_some() {
            return None; // a field chain: the field's type is unknown
        }
        if first == "self" {
            return self.self_ty.clone();
        }
        self.params
            .iter()
            .find(|(name, _)| name == first)
            .and_then(|(_, hint)| hint.clone())
    }

    fn walk(&mut self, block: &Block, held: &mut Vec<Guard>, sum: &mut FnSummary) {
        for node in &block.nodes {
            match node {
                Node::Lock(l) => {
                    let id = self.lock_id(&l.recv);
                    let held_ids = held_ids(held);
                    if l.deref_assigned && l.kind != LockKind::Read {
                        sum.publishes.push(PublishSite {
                            line: l.line,
                            col: l.col,
                            held: held_ids.clone(),
                        });
                    }
                    sum.acquisitions.push(Acq {
                        lock: id.clone(),
                        line: l.line,
                        col: l.col,
                        held: held_ids,
                    });
                    held.push(Guard {
                        binding: l.bound.clone(),
                        lock: id,
                        temp: l.bound.is_none(),
                    });
                }
                Node::Call(c) => {
                    if c.is_macro {
                        if PANIC_MACROS.contains(&c.callee.as_str()) {
                            sum.panics.push(PanicSite {
                                what: format!("{}!", c.callee),
                                recv_ty: None,
                                line: c.line,
                                col: c.col,
                            });
                        }
                        continue;
                    }
                    let name = c.callee.as_str();
                    let is_method = c.recv.is_some();
                    if is_method
                        && ((name == "unwrap" && c.args_empty)
                            || (name == "expect" && !c.args_empty))
                    {
                        sum.panics.push(PanicSite {
                            what: name.to_owned(),
                            recv_ty: c.recv.as_deref().and_then(|r| self.recv_ty(r)),
                            line: c.line,
                            col: c.col,
                        });
                        continue;
                    }
                    let blocks = (name == "join" && is_method && c.args_empty)
                        || BLOCKING_METHODS.contains(&name);
                    if blocks {
                        sum.blocking.push(BlockingSite {
                            what: name.to_owned(),
                            line: c.line,
                            col: c.col,
                            held: held_ids(held),
                        });
                        continue;
                    }
                    let recv_ty = match (&c.recv, c.path.last()) {
                        (Some(recv), _) => self.recv_ty(recv),
                        (None, Some(seg))
                            if seg.chars().next().is_some_and(|ch| {
                                ch.is_ascii_uppercase()
                            }) =>
                        {
                            Some(seg.clone())
                        }
                        _ => None,
                    };
                    sum.calls.push(CallSite {
                        callee: c.callee.clone(),
                        recv_ty,
                        is_method,
                        line: c.line,
                        col: c.col,
                        held: held_ids(held),
                    });
                }
                Node::Block(b) | Node::Closure(b) => {
                    let depth = held.len();
                    self.walk(b, held, sum);
                    held.truncate(depth);
                }
                Node::Spawn { body, line } => {
                    let mut spawned = FnSummary {
                        crate_name: self.crate_name.clone(),
                        file: self.file.clone(),
                        self_ty: None,
                        name: format!("{}@spawn:{}", sum.name, line),
                        line: *line,
                        is_test: sum.is_test,
                        is_spawn_body: true,
                        ..FnSummary::default()
                    };
                    let mut fresh = Vec::new();
                    self.walk(body, &mut fresh, &mut spawned);
                    self.extra.push(spawned);
                }
                Node::DropGuard { name, .. } => {
                    if let Some(at) = held
                        .iter()
                        .rposition(|g| g.binding.as_deref() == Some(name))
                    {
                        held.remove(at);
                    }
                }
                Node::StmtEnd => held.retain(|g| !g.temp),
            }
        }
    }
}

fn held_ids(held: &[Guard]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for g in held {
        if !out.contains(&g.lock) {
            out.push(g.lock.clone());
        }
    }
    out
}

/// Summarize every function of one parsed file.
pub fn summarize(ctx: &FileContext<'_>, ast: &FileAst) -> Vec<FnSummary> {
    let crate_name = ctx.crate_name.clone().unwrap_or_else(|| "ws".to_owned());
    let file_stem = ctx
        .path
        .rsplit('/')
        .next()
        .unwrap_or(ctx.path)
        .trim_end_matches(".rs")
        .to_owned();
    let mut out = Vec::new();
    for def in &ast.fns {
        let mut walker = Walker {
            crate_name: crate_name.clone(),
            file: ctx.path.to_owned(),
            file_stem: file_stem.clone(),
            self_ty: def.self_ty.clone(),
            params: &def.params,
            extra: Vec::new(),
        };
        let mut sum = FnSummary {
            crate_name: crate_name.clone(),
            file: ctx.path.to_owned(),
            self_ty: def.self_ty.clone(),
            name: def.name.clone(),
            line: def.line,
            is_test: def.is_test || ctx.whole_file_test,
            is_spawn_body: false,
            ..FnSummary::default()
        };
        let mut held = Vec::new();
        walker.walk(&def.body, &mut held, &mut sum);
        out.push(sum);
        out.append(&mut walker.extra);
    }
    out
}

// ---------------------------------------------------------------------------
// Interprocedural rules
// ---------------------------------------------------------------------------

/// Run the four flow rules over all summaries. Findings come back
/// unfiltered — the caller applies per-file suppressions.
pub fn interprocedural(fns: &[FnSummary]) -> Vec<Finding> {
    let graph = crate::graph::build(fns);
    let mut out = Vec::new();
    rule_lock_order_cycle(fns, &graph, &mut out);
    rule_blocking_under_lock(fns, &graph, &mut out);
    rule_transitive_no_panic(fns, &graph, &mut out);
    rule_guard_across_publish(fns, &graph, &mut out);
    out.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message).cmp(&(
            &b.path, b.line, b.col, b.rule, &b.message,
        ))
    });
    out.dedup();
    out
}

fn fn_label(f: &FnSummary) -> String {
    match &f.self_ty {
        Some(ty) => format!("{}::{}", ty, f.name),
        None => f.name.clone(),
    }
}

fn held_list(held: &[String]) -> String {
    held.join(", ")
}

/// Per-function transitively acquired locks with one witness description
/// per lock, propagated to a fixpoint through the call graph.
fn transitive_locks(
    fns: &[FnSummary],
    graph: &crate::graph::CallGraph,
) -> Vec<BTreeMap<String, String>> {
    let mut trans: Vec<BTreeMap<String, String>> = fns
        .iter()
        .map(|f| {
            let mut m = BTreeMap::new();
            for a in &f.acquisitions {
                m.entry(a.lock.clone()).or_insert_with(|| {
                    format!("{} acquires it at {}:{}", fn_label(f), f.file, a.line)
                });
            }
            m
        })
        .collect();
    // Monotone fixpoint; the lock universe is small, so a few rounds
    // converge. Cap the rounds defensively against pathological graphs.
    for _ in 0..32 {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add: Vec<(String, String)> = Vec::new();
            for e in &graph.edges[i] {
                let call = &fns[i].calls[e.call];
                for (lock, wit) in &trans[e.target] {
                    if !trans[i].contains_key(lock) {
                        add.push((
                            lock.clone(),
                            format!(
                                "{} calls {} at {}:{}; {}",
                                fn_label(&fns[i]),
                                fn_label(&fns[e.target]),
                                fns[i].file,
                                call.line,
                                wit
                            ),
                        ));
                    }
                }
            }
            for (lock, wit) in add {
                trans[i].entry(lock).or_insert(wit);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    trans
}

fn rule_lock_order_cycle(
    fns: &[FnSummary],
    graph: &crate::graph::CallGraph,
    out: &mut Vec<Finding>,
) {
    let trans = transitive_locks(fns, graph);
    // Acquisition-order edges: held lock → acquired lock, with one
    // deterministic witness per edge (BTreeMap keeps iteration stable).
    #[derive(Clone)]
    struct Edge {
        file: String,
        line: u32,
        col: u32,
        desc: String,
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for a in &f.acquisitions {
            for h in &a.held {
                let key = (h.clone(), a.lock.clone());
                edges.entry(key).or_insert_with(|| Edge {
                    file: f.file.clone(),
                    line: a.line,
                    col: a.col,
                    desc: format!(
                        "{} holds {} and acquires {} at {}:{}",
                        fn_label(f),
                        h,
                        a.lock,
                        f.file,
                        a.line
                    ),
                });
            }
        }
        for e in &graph.edges[i] {
            let call = &f.calls[e.call];
            for h in &call.held {
                for (lock, wit) in &trans[e.target] {
                    if lock == h {
                        continue; // self-edges via calls are too coarse
                    }
                    let key = (h.clone(), lock.clone());
                    edges.entry(key).or_insert_with(|| Edge {
                        file: f.file.clone(),
                        line: call.line,
                        col: call.col,
                        desc: format!(
                            "{} holds {} while calling {} at {}:{}; {}",
                            fn_label(f),
                            h,
                            fn_label(&fns[e.target]),
                            f.file,
                            call.line,
                            wit
                        ),
                    });
                }
            }
        }
    }
    // Direct re-entrant acquisition (A while A is held) deadlocks a
    // Mutex outright.
    for ((from, to), e) in &edges {
        if from == to {
            out.push(Finding {
                path: e.file.clone(),
                line: e.line,
                col: e.col,
                rule: "lock-order-cycle",
                message: format!(
                    "lock {from} is re-acquired while already held — a Mutex \
                     self-deadlocks and an RwLock deadlocks against a waiting \
                     writer ({})",
                    e.desc
                ),
            });
        }
    }
    // Cycles across distinct locks: walk the order graph; every cycle is
    // a potential AB/BA deadlock. Enumerate minimal cycles by DFS from
    // each node over a stable adjacency list, reporting each cycle once
    // (keyed by its sorted lock set).
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        // Iterative DFS carrying the path; bounded depth keeps this
        // linear-ish on the small lock universes we see in practice.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            if path.len() > 8 {
                continue;
            }
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    let mut key: Vec<String> =
                        path.iter().map(|s| (*s).to_owned()).collect();
                    key.sort();
                    if !seen_cycles.insert(key) {
                        continue;
                    }
                    // Report at the first edge of the cycle, quoting every
                    // edge's acquisition path.
                    let mut cycle = path.clone();
                    cycle.push(start);
                    let legs: Vec<String> = cycle
                        .windows(2)
                        .filter_map(|w| {
                            edges
                                .get(&(w[0].to_owned(), w[1].to_owned()))
                                .map(|e| e.desc.clone())
                        })
                        .collect();
                    let first = &edges[&(cycle[0].to_owned(), cycle[1].to_owned())];
                    out.push(Finding {
                        path: first.file.clone(),
                        line: first.line,
                        col: first.col,
                        rule: "lock-order-cycle",
                        message: format!(
                            "lock acquisition cycle {} — potential deadlock; paths: {}",
                            cycle.join(" -> "),
                            legs.join(" | ")
                        ),
                    });
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
}

fn rule_blocking_under_lock(
    fns: &[FnSummary],
    graph: &crate::graph::CallGraph,
    out: &mut Vec<Finding>,
) {
    // may_block fixpoint with a witness chain per function.
    let mut witness: Vec<Option<String>> = fns
        .iter()
        .map(|f| {
            f.blocking.first().map(|b| {
                format!("`{}` blocks at {}:{}", b.what, f.file, b.line)
            })
        })
        .collect();
    for _ in 0..32 {
        let mut changed = false;
        for i in 0..fns.len() {
            if witness[i].is_some() {
                continue;
            }
            for e in &graph.edges[i] {
                if let Some(w) = witness[e.target].clone() {
                    let call = &fns[i].calls[e.call];
                    witness[i] = Some(format!(
                        "{} (via {} at {}:{})",
                        w,
                        fn_label(&fns[e.target]),
                        fns[i].file,
                        call.line
                    ));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for b in &f.blocking {
            if !b.held.is_empty() {
                out.push(Finding {
                    path: f.file.clone(),
                    line: b.line,
                    col: b.col,
                    rule: "blocking-call-under-lock",
                    message: format!(
                        "`{}` blocks while guard(s) {} are live in {} — every thread \
                         contending on those locks stalls with it; drop the guard first",
                        b.what,
                        held_list(&b.held),
                        fn_label(f)
                    ),
                });
            }
        }
        for e in &graph.edges[i] {
            let call = &f.calls[e.call];
            if call.held.is_empty() {
                continue;
            }
            if let Some(w) = &witness[e.target] {
                out.push(Finding {
                    path: f.file.clone(),
                    line: call.line,
                    col: call.col,
                    rule: "blocking-call-under-lock",
                    message: format!(
                        "call into {} can block while guard(s) {} are live in {}: {}",
                        fn_label(&fns[e.target]),
                        held_list(&call.held),
                        fn_label(f),
                        w
                    ),
                });
            }
        }
    }
}

fn rule_transitive_no_panic(
    fns: &[FnSummary],
    graph: &crate::graph::CallGraph,
    out: &mut Vec<Finding>,
) {
    // BFS from the hot-path roots, keeping one witness path per function.
    let mut path_to: Vec<Option<String>> = vec![None; fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test || f.is_spawn_body {
            continue;
        }
        if HOT_ROOTS
            .iter()
            .any(|(c, n)| *c == f.crate_name && *n == f.name)
        {
            path_to[i] = Some(fn_label(f));
            queue.push(i);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let i = queue[at];
        at += 1;
        let base = path_to[i].clone().unwrap_or_default();
        for e in &graph.edges[i] {
            if path_to[e.target].is_none() && !fns[e.target].is_test {
                path_to[e.target] =
                    Some(format!("{} -> {}", base, fn_label(&fns[e.target])));
                queue.push(e.target);
            }
        }
    }
    // Workspace methods named `unwrap`/`expect` shadow the Option/Result
    // ones for typed receivers — `self.expect(b'{')?` on a parser with
    // its own Result-returning `expect` is not a panic site.
    let own_methods: std::collections::HashSet<(&str, &str)> = fns
        .iter()
        .filter_map(|f| f.self_ty.as_deref().map(|t| (t, f.name.as_str())))
        .collect();
    for (i, f) in fns.iter().enumerate() {
        let Some(via) = &path_to[i] else { continue };
        if TOKEN_COVERED_CRATES.contains(&f.crate_name.as_str()) {
            continue; // the token rule already polices these crates
        }
        for p in &f.panics {
            if p
                .recv_ty
                .as_deref()
                .is_some_and(|t| own_methods.contains(&(t, p.what.as_str())))
            {
                continue;
            }
            out.push(Finding {
                path: f.file.clone(),
                line: p.line,
                col: p.col,
                rule: "transitive-no-panic-hot-path",
                message: format!(
                    "`{}` can panic and is reachable from a hot-path root via {} — \
                     return a typed error or document the invariant with lint:allow",
                    p.what, via
                ),
            });
        }
    }
}

fn rule_guard_across_publish(
    fns: &[FnSummary],
    graph: &crate::graph::CallGraph,
    out: &mut Vec<Finding>,
) {
    // publishes fixpoint with a witness per function.
    let mut witness: Vec<Option<String>> = fns
        .iter()
        .map(|f| {
            f.publishes
                .first()
                .map(|p| format!("publishes at {}:{}", f.file, p.line))
        })
        .collect();
    for _ in 0..32 {
        let mut changed = false;
        for i in 0..fns.len() {
            if witness[i].is_some() {
                continue;
            }
            for e in &graph.edges[i] {
                if let Some(w) = witness[e.target].clone() {
                    witness[i] =
                        Some(format!("calls {} which {}", fn_label(&fns[e.target]), w));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for p in &f.publishes {
            if !p.held.is_empty() {
                out.push(Finding {
                    path: f.file.clone(),
                    line: p.line,
                    col: p.col,
                    rule: "guard-held-across-snapshot-publish",
                    message: format!(
                        "snapshot published while guard(s) {} are live in {} — readers \
                         of the new snapshot can contend on a lock the publisher still \
                         holds",
                        held_list(&p.held),
                        fn_label(f)
                    ),
                });
            }
        }
        for e in &graph.edges[i] {
            let call = &f.calls[e.call];
            if call.held.is_empty() {
                continue;
            }
            if let Some(w) = &witness[e.target] {
                out.push(Finding {
                    path: f.file.clone(),
                    line: call.line,
                    col: call.col,
                    rule: "guard-held-across-snapshot-publish",
                    message: format!(
                        "guard(s) {} are live in {} across a publication: {} {}",
                        held_list(&call.held),
                        fn_label(f),
                        fn_label(&fns[e.target]),
                        w
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Summary (de)serialization for the incremental cache
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

fn join_held(held: &[String]) -> String {
    held.join(",")
}

fn split_held(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_owned).collect()
    }
}

/// Serialize summaries into the cache's line format (one record per
/// line, tab-separated, `\`-escaped).
pub fn encode_summaries(sums: &[FnSummary]) -> String {
    let mut out = String::new();
    for s in sums {
        out.push_str(&format!(
            "F\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&s.crate_name),
            esc(&s.file),
            esc(s.self_ty.as_deref().unwrap_or("")),
            esc(&s.name),
            s.line,
            u8::from(s.is_test),
            u8::from(s.is_spawn_body),
        ));
        for a in &s.acquisitions {
            out.push_str(&format!(
                "A\t{}\t{}\t{}\t{}\n",
                esc(&a.lock),
                a.line,
                a.col,
                esc(&join_held(&a.held))
            ));
        }
        for c in &s.calls {
            out.push_str(&format!(
                "C\t{}\t{}\t{}\t{}\t{}\t{}\n",
                esc(&c.callee),
                esc(c.recv_ty.as_deref().unwrap_or("")),
                u8::from(c.is_method),
                c.line,
                c.col,
                esc(&join_held(&c.held))
            ));
        }
        for b in &s.blocking {
            out.push_str(&format!(
                "B\t{}\t{}\t{}\t{}\n",
                esc(&b.what),
                b.line,
                b.col,
                esc(&join_held(&b.held))
            ));
        }
        for p in &s.panics {
            out.push_str(&format!(
                "P\t{}\t{}\t{}\t{}\n",
                esc(&p.what),
                esc(p.recv_ty.as_deref().unwrap_or("")),
                p.line,
                p.col
            ));
        }
        for p in &s.publishes {
            out.push_str(&format!(
                "V\t{}\t{}\t{}\n",
                p.line,
                p.col,
                esc(&join_held(&p.held))
            ));
        }
    }
    out
}

/// Parse [`encode_summaries`] output. Malformed lines are skipped — a
/// corrupt cache degrades to a cold run, never to a wrong answer
/// (the caller validates the file hash before trusting records).
pub fn decode_summaries(text: &str) -> Vec<FnSummary> {
    let mut out: Vec<FnSummary> = Vec::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("F") if fields.len() == 8 => {
                let self_ty = unesc(fields[3]);
                out.push(FnSummary {
                    crate_name: unesc(fields[1]),
                    file: unesc(fields[2]),
                    self_ty: (!self_ty.is_empty()).then_some(self_ty),
                    name: unesc(fields[4]),
                    line: fields[5].parse().unwrap_or(0),
                    is_test: fields[6] == "1",
                    is_spawn_body: fields[7] == "1",
                    ..FnSummary::default()
                });
            }
            Some("A") if fields.len() == 5 => {
                if let Some(s) = out.last_mut() {
                    s.acquisitions.push(Acq {
                        lock: unesc(fields[1]),
                        line: fields[2].parse().unwrap_or(0),
                        col: fields[3].parse().unwrap_or(0),
                        held: split_held(&unesc(fields[4])),
                    });
                }
            }
            Some("C") if fields.len() == 7 => {
                if let Some(s) = out.last_mut() {
                    let recv_ty = unesc(fields[2]);
                    s.calls.push(CallSite {
                        callee: unesc(fields[1]),
                        recv_ty: (!recv_ty.is_empty()).then_some(recv_ty),
                        is_method: fields[3] == "1",
                        line: fields[4].parse().unwrap_or(0),
                        col: fields[5].parse().unwrap_or(0),
                        held: split_held(&unesc(fields[6])),
                    });
                }
            }
            Some("B") if fields.len() == 5 => {
                if let Some(s) = out.last_mut() {
                    s.blocking.push(BlockingSite {
                        what: unesc(fields[1]),
                        line: fields[2].parse().unwrap_or(0),
                        col: fields[3].parse().unwrap_or(0),
                        held: split_held(&unesc(fields[4])),
                    });
                }
            }
            Some("P") if fields.len() == 5 => {
                if let Some(s) = out.last_mut() {
                    let recv_ty = unesc(fields[2]);
                    s.panics.push(PanicSite {
                        what: unesc(fields[1]),
                        recv_ty: (!recv_ty.is_empty()).then_some(recv_ty),
                        line: fields[3].parse().unwrap_or(0),
                        col: fields[4].parse().unwrap_or(0),
                    });
                }
            }
            Some("V") if fields.len() == 4 => {
                if let Some(s) = out.last_mut() {
                    s.publishes.push(PublishSite {
                        line: fields[1].parse().unwrap_or(0),
                        col: fields[2].parse().unwrap_or(0),
                        held: split_held(&unesc(fields[3])),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::{CheckOptions, FileContext};

    fn sums(path: &str, src: &str) -> Vec<FnSummary> {
        let ctx = FileContext::new(path, src, CheckOptions::default());
        summarize(&ctx, &parse_file(&ctx))
    }

    #[test]
    fn guard_lifetime_tracking() {
        let s = sums(
            "crates/serve/src/x.rs",
            "impl Q {\n\
             fn f(&self) {\n\
               let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
               self.b.lock();\n\
               drop(g);\n\
               self.c.lock();\n\
             }\n}\n",
        );
        let f = &s[0];
        assert_eq!(f.acquisitions.len(), 3);
        assert_eq!(f.acquisitions[0].held, Vec::<String>::new());
        assert_eq!(f.acquisitions[1].held, vec!["serve::Q.a".to_owned()]);
        // b was a temp (died at `;`), g was dropped: c acquires clean.
        assert_eq!(f.acquisitions[2].held, Vec::<String>::new());
    }

    #[test]
    fn publish_and_blocking_and_panic_sites() {
        let s = sums(
            "crates/serve/src/x.rs",
            "impl S {\n\
             fn p(&self, next: Arc<T>) { *self.current.write().unwrap_or_else(|e| e.into_inner()) = next; }\n\
             fn b(&self, h: Handle) { let g = self.m.lock(); h.join(); }\n\
             fn q(&self) { self.v.get(0).unwrap(); }\n\
             }\n",
        );
        assert_eq!(s[0].publishes.len(), 1);
        assert!(s[0].publishes[0].held.is_empty());
        assert_eq!(s[1].blocking.len(), 1);
        assert_eq!(s[1].blocking[0].held, vec!["serve::S.m".to_owned()]);
        assert_eq!(s[2].panics.len(), 1);
        assert_eq!(s[2].panics[0].what, "unwrap");
    }

    #[test]
    fn spawn_bodies_are_separate_roles() {
        let s = sums(
            "crates/par/src/x.rs",
            "fn boot(shared: &Arc<Shared>) {\n\
               thread::spawn(move || { shared.state.lock(); });\n\
               shared.state.lock();\n\
             }\n",
        );
        assert_eq!(s.len(), 2);
        assert!(s[1].is_spawn_body);
        assert_eq!(s[1].acquisitions.len(), 1);
        // The spawn body's lock is not part of boot's flow.
        assert_eq!(s[0].acquisitions.len(), 1);
    }

    #[test]
    fn ab_ba_cycle_is_reported() {
        let s = sums(
            "crates/core/src/x.rs",
            "fn f(a: &Q, b: &Q) { let g = a.m.lock(); b.n.lock(); drop(g); }\n\
             fn g(a: &Q, b: &Q) { let g = b.n.lock(); a.m.lock(); drop(g); }\n",
        );
        let findings = interprocedural(&s);
        assert!(
            findings.iter().any(|f| f.rule == "lock-order-cycle"),
            "{findings:?}"
        );
    }

    #[test]
    fn summaries_roundtrip_through_the_cache_format() {
        let s = sums(
            "crates/serve/src/x.rs",
            "impl S { fn f(&self, h: Handle) { let g = self.m.lock(); h.join(); \
             self.helper(); panic!(\"x\"); } }\n",
        );
        let decoded = decode_summaries(&encode_summaries(&s));
        assert_eq!(s, decoded);
    }
}
