//! The `pastas-lint` binary.
//!
//! ```text
//! pastas-lint --workspace              # lint every crates/*/src/**/*.rs
//! pastas-lint path/to/file.rs …        # lint specific files (token rules)
//! pastas-lint --workspace --format=sarif > target/pastas-lint.sarif
//! pastas-lint --workspace --baseline=lint-baseline.json
//! pastas-lint --workspace --write-baseline=lint-baseline.json
//! pastas-lint --workspace --no-cache --no-flow
//! pastas-lint --list-rules
//! ```
//!
//! `--workspace` runs the full pipeline: parallel per-file analysis with
//! the incremental cache under `target/pastas-lint.cache` (`--no-cache`
//! disables), then the interprocedural flow rules (`--no-flow`
//! disables). `--baseline=PATH` subtracts accepted legacy findings;
//! `--write-baseline=PATH` records the current findings as accepted.
//!
//! Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.

#![forbid(unsafe_code)]

use pastas_lint::baseline::Baseline;
use pastas_lint::rules::{CheckOptions, Finding, RULES};
use pastas_lint::sarif;
use pastas_lint::workspace::{
    check_path, check_workspace_with, find_workspace_root, WorkspaceOptions,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    workspace: bool,
    format: Format,
    list_rules: bool,
    no_cache: bool,
    no_flow: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: pastas-lint [--workspace | FILE…] \
                     [--format=json|text|sarif] [--baseline=PATH] \
                     [--write-baseline=PATH] [--no-cache] [--no-flow] \
                     [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        format: Format::Text,
        list_rules: false,
        no_cache: false,
        no_flow: false,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--format=json" => args.format = Format::Json,
            "--format=text" => args.format = Format::Text,
            "--format=sarif" => args.format = Format::Sarif,
            "--no-cache" => args.no_cache = true,
            "--no-flow" => args.no_flow = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with("--baseline=") => {
                args.baseline = Some(PathBuf::from(&other["--baseline=".len()..]));
            }
            other if other.starts_with("--write-baseline=") => {
                args.write_baseline =
                    Some(PathBuf::from(&other["--write-baseline=".len()..]));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths (try --help)".to_owned());
    }
    Ok(args)
}

fn emit(findings: &[Finding], format: Format) {
    match format {
        Format::Json => {
            let mut out = String::from("[");
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&f.render_json());
            }
            out.push(']');
            println!("{out}");
        }
        Format::Sarif => {
            print!("{}", sarif::render(findings));
        }
        Format::Text => {
            for f in findings {
                println!("{}", f.render());
            }
            if findings.is_empty() {
                eprintln!("pastas-lint: clean");
            } else {
                eprintln!("pastas-lint: {} finding(s)", findings.len());
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("pastas-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, what) in RULES {
            println!("{id:36} {what}");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut findings = if args.workspace {
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("pastas-lint: no [workspace] Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        let mut opts = WorkspaceOptions::standard(&root);
        if args.no_cache {
            opts.cache_path = None;
        }
        opts.flow = !args.no_flow;
        check_workspace_with(&root, &opts)
    } else {
        let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
        let mut all = Vec::new();
        for file in &args.files {
            if !file.is_file() {
                eprintln!("pastas-lint: no such file {}", file.display());
                return ExitCode::from(2);
            }
            // Single-file mode: look the crate's proptests.rs up relative
            // to the file so scoping matches the workspace walk.
            let has_proptests = file
                .parent()
                .map(|dir| dir.join("proptests.rs").is_file())
                .unwrap_or(false);
            all.extend(check_path(&root, file, CheckOptions {
                crate_has_proptests: has_proptests,
            }));
        }
        all
    };

    if let Some(path) = &args.write_baseline {
        let base = Baseline::from_findings(&findings);
        if std::fs::write(path, base.render()).is_err() {
            eprintln!("pastas-lint: cannot write baseline {}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "pastas-lint: wrote baseline {} ({} accepted group(s))",
            path.display(),
            base.counts.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.baseline {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("pastas-lint: cannot read baseline {}", path.display());
            return ExitCode::from(2);
        };
        let base = match Baseline::parse(&text) {
            Ok(base) => base,
            Err(message) => {
                eprintln!("pastas-lint: {message}");
                return ExitCode::from(2);
            }
        };
        findings = base.filter(findings);
    }

    emit(&findings, args.format);
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
