//! The `pastas-lint` binary.
//!
//! ```text
//! pastas-lint --workspace              # lint every crates/*/src/**/*.rs
//! pastas-lint path/to/file.rs …        # lint specific files
//! pastas-lint --workspace --format=json
//! pastas-lint --list-rules
//! ```
//!
//! Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.

#![forbid(unsafe_code)]

use pastas_lint::rules::{CheckOptions, Finding, RULES};
use pastas_lint::workspace::{check_path, check_workspace, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { workspace: false, json: false, list_rules: false, files: Vec::new() };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--format=json" => args.json = true,
            "--format=text" => args.json = false,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: pastas-lint [--workspace | FILE…] \
                            [--format=json|text] [--list-rules]"
                    .to_owned())
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths (try --help)".to_owned());
    }
    Ok(args)
}

fn emit(findings: &[Finding], json: bool) {
    if json {
        let mut out = String::from("[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.render_json());
        }
        out.push(']');
        println!("{out}");
    } else {
        for f in findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("pastas-lint: clean");
        } else {
            eprintln!("pastas-lint: {} finding(s)", findings.len());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("pastas-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, what) in RULES {
            println!("{id:32} {what}");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let findings = if args.workspace {
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("pastas-lint: no [workspace] Cargo.toml above {}", cwd.display());
            return ExitCode::from(2);
        };
        check_workspace(&root)
    } else {
        let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
        let mut all = Vec::new();
        for file in &args.files {
            if !file.is_file() {
                eprintln!("pastas-lint: no such file {}", file.display());
                return ExitCode::from(2);
            }
            // Single-file mode: look the crate's proptests.rs up relative
            // to the file so scoping matches the workspace walk.
            let has_proptests = file
                .parent()
                .map(|dir| dir.join("proptests.rs").is_file())
                .unwrap_or(false);
            all.extend(check_path(&root, file, CheckOptions {
                crate_has_proptests: has_proptests,
            }));
        }
        all
    };

    emit(&findings, args.json);
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
