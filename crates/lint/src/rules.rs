//! The rule engine: repo-specific invariant rules over a token stream.
//!
//! Each rule is a pure function from a [`FileContext`] to findings. Rules
//! are scoped by crate (derived from the file's workspace-relative path)
//! and skip test code — `#[cfg(test)]` / `#[test]` regions, files under
//! `tests/`, and `proptests.rs` modules — because the rules exist to
//! protect production paths, and tests legitimately `unwrap()`.
//!
//! Suppression: `// lint:allow(<rule>[, <rule>…]) <reason>` on the
//! finding's line or the line directly above silences those rules for
//! that line; `// lint:allow-file(<rule>) <reason>` anywhere in the file
//! silences a rule file-wide (for pervasive idioms such as postings-array
//! indexing whose bounds are a maintained invariant). A suppression
//! without a reason is itself a finding (`suppression-needs-reason`) —
//! the reason is the reviewable artifact.

use crate::lexer::{lex, significant, Token, TokenKind};
use std::collections::HashMap;

/// One diagnostic: where, which rule, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line:col: [rule] message` — the clickable text form.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }

    /// One JSON object (hand-serialized; the tool is dependency-free).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.path),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Every rule id the engine knows, for `--list-rules` and suppression
/// validation.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-panic-hot-path",
        "forbid unwrap()/expect()/panic!/[] indexing in serve, par, query non-test code",
    ),
    (
        "no-wallclock-determinism",
        "forbid SystemTime::now/Instant::now in model, query, regex, align, synth",
    ),
    ("no-unbounded-channel", "forbid mpsc::channel() in par/serve; use sync_channel"),
    (
        "no-unbounded-ingest-buffer",
        "flag queue.push_back(…) in par/serve non-test code: every queue fed by requests \
         must check a capacity bound and shed (429/503) on overflow; document the audited \
         bounded site with lint:allow",
    ),
    (
        "lock-across-await-point-analog",
        "flag lock()/write() guards held across try_submit/send in one statement",
    ),
    (
        "no-silent-truncation",
        "flag narrowing `as` casts (u8/u16/u32/i8/i16/i32) in model/serve",
    ),
    (
        "budget-enforced-alloc",
        "flag request-fed with_capacity/read_to_end in serve/http.rs without a budget \
         clamp, bitmap decodes (`to_vec`) inside loops in the query crate, and any Vec \
         allocation inside the automaton execution loops of regex/engine.rs and \
         query/temporal.rs (pooled scratch only)",
    ),
    (
        "test-file-hygiene",
        "src modules over 300 lines need a #[cfg(test)] block or a crate proptests.rs",
    ),
    ("pub-fn-docs", "pub fn in a crate root (lib.rs) must carry a doc comment"),
    ("suppression-needs-reason", "lint:allow must state a reason after the rule list"),
    (
        "no-unwrap-on-lock",
        "forbid .lock()/.read()/.write() followed by .unwrap() in non-test code; recover \
         from poisoning with .unwrap_or_else(|e| e.into_inner())",
    ),
    (
        "lock-order-cycle",
        "flow: two locks acquired in opposite orders along any call paths — a potential \
         deadlock; both acquisition paths are reported",
    ),
    (
        "blocking-call-under-lock",
        "flow: join/recv/sleep/blocking I/O reachable (transitively) while a lock guard \
         is live — stalls every thread contending on that lock",
    ),
    (
        "transitive-no-panic-hot-path",
        "flow: unwrap/expect/panic! reachable through the call graph from route(), the \
         plan executor, or the profile roots, in crates the token rule does not cover",
    ),
    (
        "guard-held-across-snapshot-publish",
        "flow: a lock guard is live across a snapshot publication (Arc swap) site — \
         publication must be the only thing the writer lock serializes",
    ),
];

const HOT_PATH_CRATES: &[&str] = &["serve", "par", "query"];
const DETERMINISM_CRATES: &[&str] = &["model", "query", "regex", "align", "synth"];
const CHANNEL_CRATES: &[&str] = &["par", "serve"];
const LOCK_CRATES: &[&str] = &["par", "serve"];
const TRUNCATION_CRATES: &[&str] = &["model", "serve"];
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
const HYGIENE_LINE_LIMIT: u32 = 300;

/// Keywords that can directly precede `[` without it being an index
/// expression (array literals, slice patterns, returns of literals…).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "if", "else", "match", "move", "const",
    "static", "as", "box", "yield", "await", "dyn", "impl", "fn", "where", "use", "pub",
    "for", "type",
];

struct Suppression {
    rules: Vec<String>,
    has_reason: bool,
    file_wide: bool,
    line: u32,
    col: u32,
}

/// One reasoned suppression, in the owned form the flow pipeline (and the
/// incremental cache) carries around per file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// 1-based line of the `lint:allow` comment.
    pub line: u32,
    /// True for `lint:allow-file` (silences the rule file-wide).
    pub file_wide: bool,
    /// The rule ids the suppression names.
    pub rules: Vec<String>,
}

impl SuppressionRecord {
    /// Does this record silence `rule` for a finding at `line`? A
    /// line-scoped allow covers its own line and the line below.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule)
            && (self.file_wide || self.line == line || self.line + 1 == line)
    }
}

/// Everything a rule can see about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// The crate this file belongs to (the `<name>` of `crates/<name>/…`),
    /// without the `pastas-` prefix convention — just the directory name.
    pub crate_name: Option<String>,
    /// File contents.
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens.
    pub sig: Vec<usize>,
    /// Per-token: true when the token sits inside test code.
    pub test_mask: Vec<bool>,
    /// For each position `p` in `sig` holding a bracket, the position of
    /// its partner (same vector), when balanced.
    pub pair: Vec<Option<usize>>,
    /// Total source lines.
    pub line_count: u32,
    /// True when the file's whole content is test code (`tests/` dirs,
    /// `proptests.rs` modules).
    pub whole_file_test: bool,
    /// True when this file's crate has a `src/proptests.rs`.
    pub crate_has_proptests: bool,
    suppressions: Vec<Suppression>,
}

/// Knobs the workspace driver passes per file.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckOptions {
    /// Whether the file's crate ships a `src/proptests.rs` (satisfies
    /// `test-file-hygiene` for big modules without inline tests).
    pub crate_has_proptests: bool,
}

impl<'a> FileContext<'a> {
    /// Lex and annotate one file.
    pub fn new(path: &'a str, src: &'a str, options: CheckOptions) -> FileContext<'a> {
        let tokens = lex(src);
        let sig = significant(&tokens);
        let pair = match_brackets(&tokens, &sig, src);
        let file_name = path.rsplit('/').next().unwrap_or(path);
        let whole_file_test = file_name == "proptests.rs"
            || path.split('/').any(|c| c == "tests" || c == "benches");
        let mut ctx = FileContext {
            path,
            crate_name: crate_of(path),
            src,
            test_mask: vec![whole_file_test; tokens.len()],
            tokens,
            sig,
            pair,
            line_count: src.lines().count() as u32,
            whole_file_test,
            crate_has_proptests: options.crate_has_proptests,
            suppressions: Vec::new(),
        };
        if !whole_file_test {
            mark_test_regions(&mut ctx);
        }
        ctx.suppressions = parse_suppressions(&ctx);
        ctx
    }

    pub(crate) fn sig_token(&self, p: usize) -> &Token {
        &self.tokens[self.sig[p]]
    }

    pub(crate) fn sig_text(&self, p: usize) -> &str {
        self.sig_token(p).text(self.src)
    }

    pub(crate) fn sig_is_test(&self, p: usize) -> bool {
        self.test_mask[self.sig[p]]
    }

    /// The file's reasoned suppressions as `(line, file_wide, rules)`
    /// records, so the flow pipeline (whose interprocedural findings are
    /// produced after per-file analysis) can honor them too.
    pub fn suppression_records(&self) -> Vec<SuppressionRecord> {
        self.suppressions
            .iter()
            .filter(|s| s.has_reason)
            .map(|s| SuppressionRecord {
                line: s.line,
                file_wide: s.file_wide,
                rules: s.rules.clone(),
            })
            .collect()
    }

    fn in_crate(&self, list: &[&str]) -> bool {
        self.crate_name.as_deref().is_some_and(|c| list.contains(&c))
    }

    fn finding(&self, token: &Token, rule: &'static str, message: String) -> Finding {
        Finding { path: self.path.to_owned(), line: token.line, col: token.col, rule, message }
    }
}

/// `crates/<name>/src/…` → `<name>`.
fn crate_of(path: &str) -> Option<String> {
    let mut parts = path.split('/');
    while let Some(part) = parts.next() {
        if part == "crates" {
            return parts.next().map(str::to_owned);
        }
    }
    None
}

/// Match `(`/`)`, `[`/`]`, `{`/`}` over the significant token positions.
fn match_brackets(tokens: &[Token], sig: &[usize], src: &str) -> Vec<Option<usize>> {
    let mut pair = vec![None; sig.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (p, &ti) in sig.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text(src) {
            "(" => stack.push((p, ')')),
            "[" => stack.push((p, ']')),
            "{" => stack.push((p, '}')),
            s @ (")" | "]" | "}") => {
                // Pop to the nearest matching opener; tolerate imbalance
                // (the lexer accepts arbitrary soup).
                if let Some(pos) =
                    stack.iter().rposition(|&(_, close)| close.to_string() == s)
                {
                    let (open, _) = stack[pos];
                    stack.truncate(pos);
                    pair[open] = Some(p);
                    pair[p] = Some(open);
                }
            }
            _ => {}
        }
    }
    pair
}

/// Mark the bodies governed by `#[test]` / `#[cfg(test)]`-style attributes
/// (any attribute mentioning `test` outside a `not(…)`) as test code: from
/// the next `{` through its matching `}`.
fn mark_test_regions(ctx: &mut FileContext<'_>) {
    let mut p = 0;
    while p + 1 < ctx.sig.len() {
        if ctx.sig_token(p).is_punct(ctx.src, '#') && ctx.sig_token(p + 1).is_punct(ctx.src, '[')
        {
            let Some(close) = ctx.pair[p + 1] else {
                p += 1;
                continue;
            };
            let mut saw_test = false;
            let mut saw_not = false;
            for q in p + 2..close {
                let text = ctx.sig_text(q);
                if text == "test" {
                    saw_test = true;
                }
                if text == "not" {
                    saw_not = true;
                }
            }
            if saw_test && !saw_not {
                // The attribute governs the next item; mark from the item's
                // opening brace to its close (covers `mod t { … }`,
                // `fn t() { … }`, and `mod t;` marks nothing, which is
                // right — out-of-line test modules are separate files).
                let mut q = close + 1;
                while q < ctx.sig.len() {
                    let text = ctx.sig_text(q);
                    if text == "{" {
                        if let Some(body_close) = ctx.pair[q] {
                            // Full-token range, so comments inside the
                            // region are marked too.
                            let (from, to) = (ctx.sig[q], ctx.sig[body_close]);
                            for mask in &mut ctx.test_mask[from..=to] {
                                *mask = true;
                            }
                        }
                        break;
                    }
                    if text == ";" {
                        break; // out-of-line module
                    }
                    q += 1;
                }
            }
            p = close + 1;
            continue;
        }
        p += 1;
    }
}

fn parse_suppressions(ctx: &FileContext<'_>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in &ctx.tokens {
        // Only plain `//`/`/*` comments direct the linter; doc comments
        // merely *describe* the syntax (as this crate's own docs do).
        if !matches!(t.kind, TokenKind::Comment { doc: false, .. }) {
            continue;
        }
        let text = t.text(ctx.src);
        for (needle, file_wide) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let Some(at) = text.find(needle) else { continue };
            // `lint:allow-file(` also contains `lint:allow` as a prefix of
            // its text but not of the needle with `(`, so the two needles
            // are disjoint matches.
            let after = &text[at + needle.len()..];
            let Some(close) = after.find(')') else { continue };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect();
            let reason = after[close + 1..].trim();
            out.push(Suppression {
                rules,
                has_reason: !reason.is_empty(),
                file_wide,
                line: t.line,
                col: t.col,
            });
            break;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn rule_no_panic_hot_path(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(HOT_PATH_CRATES) {
        return;
    }
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) {
            continue;
        }
        let text = ctx.sig_text(p);
        let tok = *ctx.sig_token(p);
        match text {
            "unwrap" | "expect" => {
                let after_dot = p > 0 && ctx.sig_token(p - 1).is_punct(ctx.src, '.');
                let called =
                    p + 1 < ctx.sig.len() && ctx.sig_token(p + 1).is_punct(ctx.src, '(');
                if after_dot && called {
                    out.push(ctx.finding(
                        &tok,
                        "no-panic-hot-path",
                        format!(
                            ".{text}() can panic a {} worker; return a typed error or \
                             document the invariant with lint:allow",
                            ctx.crate_name.as_deref().unwrap_or("hot-path")
                        ),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if p + 1 < ctx.sig.len() && ctx.sig_token(p + 1).is_punct(ctx.src, '!') =>
            {
                out.push(ctx.finding(
                    &tok,
                    "no-panic-hot-path",
                    format!("{text}! aborts the request; hot paths must degrade, not die"),
                ));
            }
            "[" if p > 0 => {
                let prev = ctx.sig_token(p - 1);
                let prev_text = prev.text(ctx.src);
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev_text),
                    TokenKind::Punct => prev_text == ")" || prev_text == "]",
                    _ => false,
                };
                if indexes {
                    out.push(ctx.finding(
                        &tok,
                        "no-panic-hot-path",
                        format!(
                            "indexing `{prev_text}[…]` panics when out of bounds; use \
                             .get()/.get_mut() or document the bound with lint:allow"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn rule_no_wallclock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(DETERMINISM_CRATES) {
        return;
    }
    for p in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.sig_is_test(p) {
            continue;
        }
        let clock = ctx.sig_text(p);
        if (clock == "Instant" || clock == "SystemTime")
            && ctx.sig_token(p + 1).is_punct(ctx.src, ':')
            && ctx.sig_token(p + 2).is_punct(ctx.src, ':')
            && ctx.sig_token(p + 3).is_ident(ctx.src, "now")
        {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "no-wallclock-determinism",
                format!(
                    "{clock}::now() in a determinism layer: results must be reproducible \
                     and cache keys stable; derive times from the data instead"
                ),
            ));
        }
    }
}

fn rule_no_unbounded_channel(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(CHANNEL_CRATES) {
        return;
    }
    for p in 0..ctx.sig.len().saturating_sub(3) {
        if ctx.sig_is_test(p) {
            continue;
        }
        if ctx.sig_token(p).is_ident(ctx.src, "mpsc")
            && ctx.sig_token(p + 1).is_punct(ctx.src, ':')
            && ctx.sig_token(p + 2).is_punct(ctx.src, ':')
            && ctx.sig_token(p + 3).is_ident(ctx.src, "channel")
        {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "no-unbounded-channel",
                "mpsc::channel() is unbounded — overload becomes unbounded memory; \
                 use mpsc::sync_channel (or the bounded WorkerPool queue)"
                    .to_owned(),
            ));
        }
    }
}

/// Request-fed queues must be bounded: an ingest or job queue that grows
/// without a capacity check turns overload into unbounded memory instead
/// of explicit backpressure (429 + `Retry-After`, or the acceptor's 503).
/// The rule flags every `.push_back(` call site in par/serve production
/// code; the audited sites — where a capacity check demonstrably guards
/// the push — carry a `lint:allow` with the reason.
fn rule_no_unbounded_ingest_buffer(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(CHANNEL_CRATES) {
        return;
    }
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) {
            continue;
        }
        if !ctx.sig_token(p).is_ident(ctx.src, "push_back") {
            continue;
        }
        let after_dot = p > 0 && ctx.sig_token(p - 1).is_punct(ctx.src, '.');
        let called = p + 1 < ctx.sig.len() && ctx.sig_token(p + 1).is_punct(ctx.src, '(');
        if after_dot && called {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "no-unbounded-ingest-buffer",
                "`.push_back(…)` grows a request-fed queue — check a capacity bound and \
                 shed with explicit backpressure (429/503 + Retry-After), then document \
                 the audited site with lint:allow"
                    .to_owned(),
            ));
        }
    }
}

fn rule_lock_across_submit(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(LOCK_CRATES) {
        return;
    }
    // Statements delimited by `;`, `{`, `}` over significant tokens. A
    // `.lock()`/`.write()` (no-arg call: a guard acquisition) followed in
    // the same statement by `try_submit(`/`.send(` holds the guard across
    // a queue handoff — the std-thread analogue of holding a lock across
    // an await point.
    let mut stmt_start = 0usize;
    for p in 0..ctx.sig.len() {
        let text = ctx.sig_text(p);
        if text == ";" || text == "{" || text == "}" {
            check_stmt_lock(ctx, stmt_start, p, out);
            stmt_start = p + 1;
        }
    }
    check_stmt_lock(ctx, stmt_start, ctx.sig.len(), out);
}

fn check_stmt_lock(
    ctx: &FileContext<'_>,
    from: usize,
    to: usize,
    out: &mut Vec<Finding>,
) {
    let mut guard_at: Option<usize> = None;
    for p in from..to {
        if ctx.sig_is_test(p) {
            return;
        }
        let text = ctx.sig_text(p);
        let after_dot = p > 0 && ctx.sig_token(p - 1).is_punct(ctx.src, '.');
        let empty_call = p + 2 < ctx.sig.len()
            && ctx.sig_token(p + 1).is_punct(ctx.src, '(')
            && ctx.sig_token(p + 2).is_punct(ctx.src, ')');
        if (text == "lock" || text == "write") && after_dot && empty_call {
            guard_at = Some(p);
        }
        let is_send = text == "send" && after_dot;
        let is_submit = text == "try_submit" || text == "submit";
        if (is_send || is_submit)
            && p + 1 < ctx.sig.len()
            && ctx.sig_token(p + 1).is_punct(ctx.src, '(')
        {
            if let Some(g) = guard_at {
                out.push(ctx.finding(
                    ctx.sig_token(p),
                    "lock-across-await-point-analog",
                    format!(
                        "`.{}()` guard acquired at {}:{} is still live across this \
                         `{text}` — drop the guard before handing work to the queue",
                        ctx.sig_text(g),
                        ctx.sig_token(g).line,
                        ctx.sig_token(g).col,
                    ),
                ));
            }
        }
    }
}

fn rule_no_silent_truncation(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_crate(TRUNCATION_CRATES) {
        return;
    }
    for p in 0..ctx.sig.len().saturating_sub(1) {
        if ctx.sig_is_test(p) {
            continue;
        }
        if !ctx.sig_token(p).is_ident(ctx.src, "as") {
            continue;
        }
        let target = ctx.sig_text(p + 1);
        if NARROW_TARGETS.contains(&target) {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "no-silent-truncation",
                format!(
                    "`as {target}` silently truncates; use {target}::try_from with a \
                     typed error, or state why the value fits with lint:allow"
                ),
            ));
        }
    }
}

fn rule_budget_enforced_alloc(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // The automaton execution files get the stricter temporal-hot-loop
    // arm (which subsumes the decode arm's `to_vec` check); every other
    // query/analytics file keeps the decode-loop arm. The analytics
    // dimension pass consumes frozen bitmaps the same way the planner
    // does, so it inherits the decode-loop arm verbatim.
    if ctx.path.ends_with("query/src/temporal.rs") || ctx.path.ends_with("regex/src/engine.rs") {
        budget_alloc_temporal_hot_loops(ctx, out);
    } else if ctx.path.contains("query/src/") || ctx.path.contains("analytics/src/") {
        budget_alloc_query_decode_loops(ctx, out);
    }
    if !ctx.path.ends_with("serve/src/http.rs") {
        return;
    }
    // Identifiers that signal the argument was clamped against a budget.
    const CLAMP_MARKERS: &[&str] =
        &["min", "clamp", "limits", "max_head_bytes", "max_body_bytes", "capacity"];
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) {
            continue;
        }
        let text = ctx.sig_text(p);
        if text != "with_capacity" && text != "read_to_end" {
            continue;
        }
        let Some(open) = (p + 1 < ctx.sig.len())
            .then(|| p + 1)
            .filter(|&q| ctx.sig_token(q).is_punct(ctx.src, '('))
        else {
            continue;
        };
        let Some(close) = ctx.pair[open] else { continue };
        let args: Vec<usize> = (open + 1..close).collect();
        let all_literal = args.iter().all(|&q| {
            matches!(ctx.sig_token(q).kind, TokenKind::Number | TokenKind::Punct)
        });
        let clamped = args.iter().any(|&q| CLAMP_MARKERS.contains(&ctx.sig_text(q)));
        if !all_literal && !clamped {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "budget-enforced-alloc",
                format!(
                    "`{text}` sized by a request-derived value with no adjacent budget \
                     clamp — bound it (e.g. `.min(limits.max_…)`) so a hostile request \
                     cannot size the allocation"
                ),
            ));
        }
    }
}

/// The query-crate arm of `budget-enforced-alloc`: decoding a compressed
/// posting bitmap to `Vec<u32>` (`to_vec`) inside a loop body defeats
/// the compression the planner's latency budget rests on — set algebra
/// must stay in container space (intersect/union/complement), with at
/// most one decode hoisted after the loop.
/// Sig-token ranges of loop bodies: `for … in … {…}`, `while … {…}`,
/// `loop {…}` (`impl Trait for Type` and `for<'a>` bounds are excluded
/// — a `for` loop header always carries `in` before its brace).
fn loop_body_ranges(ctx: &FileContext<'_>) -> Vec<(usize, usize)> {
    let mut bodies: Vec<(usize, usize)> = Vec::new();
    for p in 0..ctx.sig.len() {
        let kw = ctx.sig_text(p);
        if kw != "for" && kw != "while" && kw != "loop" {
            continue;
        }
        let mut saw_in = false;
        let mut open = None;
        for q in p + 1..ctx.sig.len() {
            let t = ctx.sig_token(q);
            if t.is_punct(ctx.src, ';') || t.is_punct(ctx.src, '}') {
                break;
            }
            if t.is_punct(ctx.src, '{') {
                open = Some(q);
                break;
            }
            if ctx.sig_text(q) == "in" {
                saw_in = true;
            }
        }
        if kw == "for" && !saw_in {
            continue;
        }
        let Some(open) = open else { continue };
        let Some(close) = ctx.pair[open] else { continue };
        bodies.push((open, close));
    }
    bodies
}

fn budget_alloc_query_decode_loops(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let bodies = loop_body_ranges(ctx);
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) || ctx.sig_text(p) != "to_vec" {
            continue;
        }
        // The definition (`pub fn to_vec`) is not a call site.
        if p > 0 && ctx.sig_text(p - 1) == "fn" {
            continue;
        }
        if bodies.iter().any(|&(open, close)| open < p && p < close) {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "budget-enforced-alloc",
                "`to_vec` decodes a full compressed bitmap inside a loop — keep the \
                 set algebra in container space (intersect/union/complement) and \
                 hoist a single decode out of the loop"
                    .to_owned(),
            ));
        }
    }
}

/// The temporal-hot-loop arm of `budget-enforced-alloc`, applied to the
/// automaton execution files (`regex/src/engine.rs`,
/// `query/src/temporal.rs`): the VM's per-token loops run once per entry
/// per history across the whole cohort, so a Vec allocation inside them
/// (`Vec::new`, `vec![…]`, `with_capacity`, `to_vec`) multiplies into
/// millions of allocator calls per selection. Both files own pooled
/// scratch (recycled saves buffers, thread-local `Scratch`) — loop
/// bodies must draw from the pool instead.
fn budget_alloc_temporal_hot_loops(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let bodies = loop_body_ranges(ctx);
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) {
            continue;
        }
        let text = ctx.sig_text(p);
        let alloc: &str = match text {
            // The definition (`pub fn to_vec`) is not a call site.
            "with_capacity" | "to_vec" if p == 0 || ctx.sig_text(p - 1) != "fn" => text,
            // `Vec::new()` — walk back over the `::` puncts.
            "new" => {
                let mut q = p;
                while q > 0 && ctx.sig_token(q - 1).is_punct(ctx.src, ':') {
                    q -= 1;
                }
                if q < p && q > 0 && ctx.sig_text(q - 1) == "Vec" {
                    "Vec::new"
                } else {
                    continue;
                }
            }
            // The `vec![…]` macro.
            "vec" if p + 1 < ctx.sig.len() && ctx.sig_token(p + 1).is_punct(ctx.src, '!') => {
                "vec!"
            }
            _ => continue,
        };
        if bodies.iter().any(|&(open, close)| open < p && p < close) {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "budget-enforced-alloc",
                format!(
                    "`{alloc}` allocates inside an automaton execution loop that runs \
                     per entry per history — draw from the pooled scratch (recycle \
                     saves buffers / thread-local Scratch) instead of allocating"
                ),
            ));
        }
    }
}

/// `.lock()`/`.read()`/`.write()` immediately followed by `.unwrap()`:
/// a poisoned lock (some other thread panicked while holding it) takes
/// this thread down too. The repo-wide idiom is
/// `.unwrap_or_else(|e| e.into_inner())` — the protected data is still
/// there, and the `/__fault/cache-poison` path proves recovery works.
fn rule_no_unwrap_on_lock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) {
            continue;
        }
        let text = ctx.sig_text(p);
        if !matches!(text, "lock" | "read" | "write") {
            continue;
        }
        // `.lock() . unwrap (` — the acquisition must be a no-arg method
        // call (a guard), and unwrap must be chained directly onto it.
        let after_dot = p > 0 && ctx.sig_token(p - 1).is_punct(ctx.src, '.');
        let acquires = after_dot
            && p + 2 < ctx.sig.len()
            && ctx.sig_token(p + 1).is_punct(ctx.src, '(')
            && ctx.sig_token(p + 2).is_punct(ctx.src, ')');
        if !acquires {
            continue;
        }
        let unwraps = p + 5 < ctx.sig.len()
            && ctx.sig_token(p + 3).is_punct(ctx.src, '.')
            && ctx.sig_token(p + 4).is_ident(ctx.src, "unwrap")
            && ctx.sig_token(p + 5).is_punct(ctx.src, '(');
        if unwraps {
            out.push(ctx.finding(
                ctx.sig_token(p + 4),
                "no-unwrap-on-lock",
                format!(
                    "`.{text}().unwrap()` dies on a poisoned lock; recover the data with \
                     `.unwrap_or_else(|e| e.into_inner())`"
                ),
            ));
        }
    }
}

fn rule_test_file_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.whole_file_test || ctx.crate_name.is_none() || !ctx.path.contains("/src/") {
        return;
    }
    if ctx.line_count <= HYGIENE_LINE_LIMIT || ctx.crate_has_proptests {
        return;
    }
    let has_inline_tests = ctx.test_mask.iter().any(|&m| m);
    if !has_inline_tests {
        let anchor = Token { kind: TokenKind::Punct, start: 0, end: 0, line: 1, col: 1 };
        out.push(ctx.finding(
            &anchor,
            "test-file-hygiene",
            format!(
                "{} lines with no #[cfg(test)] block and no crate proptests.rs — \
                 modules this size need machine-checked behaviour",
                ctx.line_count
            ),
        ));
    }
}

fn rule_pub_fn_docs(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.path.ends_with("/lib.rs") || ctx.whole_file_test {
        return;
    }
    for p in 0..ctx.sig.len() {
        if ctx.sig_is_test(p) || !ctx.sig_token(p).is_ident(ctx.src, "pub") {
            continue;
        }
        // pub [(crate|super|in …)] [const] [unsafe] [extern "…"] fn name
        let mut q = p + 1;
        if q < ctx.sig.len() && ctx.sig_token(q).is_punct(ctx.src, '(') {
            match ctx.pair[q] {
                Some(close) => q = close + 1,
                None => continue,
            }
        }
        while q < ctx.sig.len()
            && matches!(ctx.sig_text(q), "const" | "unsafe" | "async" | "extern")
        {
            q += 1;
            if ctx.sig_token(q.saturating_sub(1)).is_ident(ctx.src, "extern")
                && q < ctx.sig.len()
                && ctx.sig_token(q).kind == TokenKind::Str
            {
                q += 1;
            }
        }
        if q >= ctx.sig.len() || !ctx.sig_token(q).is_ident(ctx.src, "fn") {
            continue;
        }
        let name =
            if q + 1 < ctx.sig.len() { ctx.sig_text(q + 1) } else { "<anonymous>" };
        if !has_doc_before(ctx, p) {
            out.push(ctx.finding(
                ctx.sig_token(p),
                "pub-fn-docs",
                format!("pub fn {name} in a crate root has no doc comment"),
            ));
        }
    }
}

/// Walk back from the `pub` at significant position `p`, skipping
/// attributes and plain comments, looking for a doc comment.
fn has_doc_before(ctx: &FileContext<'_>, p: usize) -> bool {
    // Work in full-token space so comments are visible.
    let mut ti = ctx.sig[p];
    loop {
        if ti == 0 {
            return false;
        }
        ti -= 1;
        match ctx.tokens[ti].kind {
            TokenKind::Comment { doc, .. } => {
                if doc {
                    return true;
                }
                // plain comment: keep walking
            }
            TokenKind::Punct if ctx.tokens[ti].text(ctx.src) == "]" => {
                // Possibly the end of an attribute: find its `[` partner
                // via the significant-space pair table.
                let Some(sp) = ctx.sig.iter().position(|&x| x == ti) else { return false };
                let Some(open) = ctx.pair[sp] else { return false };
                let open_ti = ctx.sig[open];
                if open_ti == 0 {
                    return false;
                }
                // Expect `#` (or `#!`) right before the `[`.
                let before = &ctx.tokens[open_ti - 1];
                if before.text(ctx.src) == "#" {
                    ti = open_ti - 1;
                } else if before.text(ctx.src) == "!"
                    && open_ti >= 2
                    && ctx.tokens[open_ti - 2].text(ctx.src) == "#"
                {
                    ti = open_ti - 2;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run every applicable rule over one file and apply suppressions.
pub fn check_file(path: &str, src: &str, options: CheckOptions) -> Vec<Finding> {
    let ctx = FileContext::new(path, src, options);
    check_file_ctx(&ctx)
}

/// Same as [`check_file`] over an already-built context, so callers that
/// also parse the file (the flow pipeline) lex only once.
pub fn check_file_ctx(ctx: &FileContext<'_>) -> Vec<Finding> {
    let path = ctx.path;
    let mut raw = Vec::new();
    rule_no_panic_hot_path(ctx, &mut raw);
    rule_no_wallclock(ctx, &mut raw);
    rule_no_unbounded_channel(ctx, &mut raw);
    rule_no_unbounded_ingest_buffer(ctx, &mut raw);
    rule_lock_across_submit(ctx, &mut raw);
    rule_no_silent_truncation(ctx, &mut raw);
    rule_budget_enforced_alloc(ctx, &mut raw);
    rule_no_unwrap_on_lock(ctx, &mut raw);
    rule_test_file_hygiene(ctx, &mut raw);
    rule_pub_fn_docs(ctx, &mut raw);

    // Suppression pass. A line-scoped `lint:allow` covers findings on its
    // own line and the line below (comment-above style).
    let mut by_line: HashMap<(u32, &str), bool> = HashMap::new();
    let mut file_wide: HashMap<&str, bool> = HashMap::new();
    let mut out = Vec::new();
    for s in &ctx.suppressions {
        if !s.has_reason {
            out.push(Finding {
                path: path.to_owned(),
                line: s.line,
                col: s.col,
                rule: "suppression-needs-reason",
                message: "lint:allow without a reason — state why the rule is safe to \
                          break here"
                    .to_owned(),
            });
        }
        for rule in &s.rules {
            let known = RULES.iter().any(|(id, _)| id == rule);
            if !known {
                out.push(Finding {
                    path: path.to_owned(),
                    line: s.line,
                    col: s.col,
                    rule: "suppression-needs-reason",
                    message: format!("lint:allow names unknown rule {rule:?}"),
                });
                continue;
            }
            if s.file_wide {
                file_wide.insert(rule_id(rule), true);
            } else {
                by_line.insert((s.line, rule_id(rule)), true);
                by_line.insert((s.line + 1, rule_id(rule)), true);
            }
        }
    }
    for f in raw {
        let suppressed = f.rule != "suppression-needs-reason"
            && (file_wide.contains_key(f.rule) || by_line.contains_key(&(f.line, f.rule)));
        if !suppressed {
            out.push(f);
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Map a user-supplied rule name to the interned static id.
pub(crate) fn rule_id(name: &str) -> &'static str {
    RULES.iter().map(|(id, _)| *id).find(|id| *id == name).unwrap_or("unknown")
}
