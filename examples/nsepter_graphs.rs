//! The NSEPter baseline (Fig. 2): merged diagnosis graphs and why they
//! become "virtually unreadable".
//!
//! Reproduces both panels: (a) a small graph merged around the first
//! incidence of diabetes (T90), rendered to SVG; (b) the crowding blow-up
//! when several hundred patients are shown at once, quantified by the E3
//! metrics and contrasted with the timeline design's linear footprint.
//!
//! ```text
//! cargo run --example nsepter_graphs [--patients N]
//! ```

use pastas_core::prelude::*;
use pastas_graph::{crowding, layout, merge_neighbors, merge_on_regex, DiGraph};
use pastas_viz::graphview::{render_graph, GraphViewOptions};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 3_000) as usize;
    let collection = generate_collection(SynthConfig::with_patients(patients), 16);

    // Fig. 2(a): a small diabetes graph.
    let diabetics: Vec<Vec<Code>> = collection
        .iter()
        .filter(|h| h.entries().iter().any(|e| e.code().is_some_and(|c| c.value == "T90")))
        .take(8)
        .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
        .collect();
    println!("Fig. 2(a): {} diabetes histories, merged around the first T90", diabetics.len());
    let mut small = DiGraph::from_sequences(&diabetics);
    let re = pastas_regex::Regex::new("T90").expect("regex");
    let merged = merge_on_regex(&mut small, &re);
    merge_neighbors(&mut small, &merged, 2);
    let small_layout = layout(&small);
    let m = crowding(&small, &small_layout);
    println!(
        "  nodes {}, edges {}, crossings {}, max edge weight {}",
        m.nodes, m.edges, m.crossings, small.max_edge_weight()
    );
    let svg = pastas_viz::svg::render(&render_graph(
        &small,
        &small_layout,
        &GraphViewOptions::default(),
    ));
    let path = std::env::temp_dir().join("pastas_nsepter_small.svg");
    std::fs::write(&path, svg).expect("write SVG");
    println!("  wrote {}", path.display());

    // Fig. 2(b): several hundred patients — the crowding table (E3).
    println!("\nFig. 2(b): crowding growth (NSEPter graph vs timeline rows)");
    println!(
        "{:>9} {:>8} {:>8} {:>11} {:>9} | {:>15}",
        "histories", "nodes", "edges", "crossings", "density", "timeline rows"
    );
    for n in [25usize, 100, 400, 800] {
        let seqs: Vec<Vec<Code>> = collection
            .iter()
            .take(n)
            .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
            .collect();
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &re);
        merge_neighbors(&mut g, &merged, 2);
        let l = layout(&g);
        let m = crowding(&g, &l);
        println!(
            "{:>9} {:>8} {:>8} {:>11} {:>9.2} | {:>15}",
            n, m.nodes, m.edges, m.crossings, m.density, n
        );
    }
    println!(
        "\nThe timeline design's footprint is one row per history (rightmost column):\n\
         linear, never crossing — the paper's motivation for abandoning the graph view."
    );
}
