//! The paper-scale cohort selection (experiment E5): **13,000 of 168,000**.
//!
//! §IV: "The prototype was used in the research project to select 13,000
//! patients from a data set of 168,000 patients based on predefined
//! characteristics." This example runs the same selection at full scale
//! and reports the cohort size, selectivity, and the indexed-vs-scan
//! latency ablation.
//!
//! The full run needs ~2 GB RAM and a few minutes of generation time;
//! scale down with `--patients`.
//!
//! ```text
//! cargo run --release --example cohort_selection_168k [--patients 168000]
//! ```

use pastas_core::prelude::*;
use pastas_query::index::select_scan;
use pastas_query::CodeIndex;
use std::time::Instant;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 168_000) as usize;
    let seed = arg("--seed", 2013);

    println!("Generating the {patients}-patient population (seed {seed}) …");
    let t0 = Instant::now();
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let stats = collection.stats();
    println!(
        "  {} patients, {} entries ({} events + {} intervals) in {:.1}s",
        stats.patients,
        stats.entries,
        stats.events,
        stats.intervals,
        t0.elapsed().as_secs_f64()
    );

    let footprint = MemoryFootprint::measure(&collection);
    println!("  {}", footprint.summary());

    println!("Building the inverted code index …");
    let t0 = Instant::now();
    let index = CodeIndex::build(&collection);
    println!(
        "  {} distinct codes indexed in {:.2}s",
        index.vocabulary_size(),
        t0.elapsed().as_secs_f64()
    );

    // The predefined characteristic: diabetes (T90/T89 in primary care,
    // E10/E11/E14 in hospital data).
    let query = QueryBuilder::new()
        .has_code("T90|T89|E1[014].*")
        .expect("valid regex")
        .build();

    let t0 = Instant::now();
    let indexed = index.select(&collection, &query);
    let t_indexed = t0.elapsed();

    let t0 = Instant::now();
    let scanned = select_scan(&collection, &query);
    let t_scan = t0.elapsed();

    assert_eq!(indexed, scanned, "index and scan must agree");
    println!("\n=== E5: cohort selection (paper: 13,000 of 168,000 = 7.7%) ===");
    println!(
        "selected {} of {} patients ({:.2}%)",
        indexed.len(),
        patients,
        100.0 * indexed.len() as f64 / patients as f64
    );
    println!(
        "latency: indexed {:.1} ms vs full scan {:.1} ms ({:.1}× speedup)",
        t_indexed.as_secs_f64() * 1e3,
        t_scan.as_secs_f64() * 1e3,
        t_scan.as_secs_f64() / t_indexed.as_secs_f64().max(1e-9)
    );

    // Parallel-vs-serial ratio on the indexed path (the parallel side uses
    // PASTAS_THREADS or the machine default; results are identical).
    let t0 = Instant::now();
    let serial = pastas_par::with_threads(1, || index.select(&collection, &query));
    let t_serial = t0.elapsed();
    assert_eq!(serial, indexed, "serial path must agree bit for bit");
    println!(
        "parallel ({} threads) {:.1} ms vs serial {:.1} ms ({:.2}× speedup)",
        pastas_par::thread_count(),
        t_indexed.as_secs_f64() * 1e3,
        t_serial.as_secs_f64() * 1e3,
        t_serial.as_secs_f64() / t_indexed.as_secs_f64().max(1e-9)
    );

    // Sanity: the cohort really is the diabetes cohort.
    let histories = collection.histories();
    let with_t90 = indexed
        .iter()
        .filter(|&&i| {
            histories[i as usize]
                .entries()
                .iter()
                .any(|e| e.code().is_some_and(|c| c.value.starts_with("T9") || c.value.starts_with("E1")))
        })
        .count();
    println!("verified: {with_t90} of {} selected histories carry a diabetes code", indexed.len());

    // The Shneiderman budget check on the interactive path.
    let budget_ok = t_indexed.as_secs_f64() < 0.1;
    println!(
        "Shneiderman 0.1 s budget on the indexed path: {}",
        if budget_ok { "MET" } else { "exceeded" }
    );
}
