//! Query-plan inspection and the planner's differential smoke test.
//!
//! ```text
//! cargo run --release --example plan_explain -- [--patients N] [--seed S]
//!     [--smoke] [--explain "QUERY"]
//! ```
//!
//! Default mode compiles and executes a few representative cohort
//! queries, printing each physical plan with per-operator candidate
//! counts and timings (`EXPLAIN ANALYZE` for the workbench). `--explain`
//! does the same for one query given in the query language. `--smoke` is
//! the CI stage: for a battery of query shapes — positive, negated,
//! counted, compound, disjunctive, demographic — it checks that the
//! planned result equals the full `select_scan`, that the acceptance
//! shape (`has ∧ lacks`) is served without a full-scan operator, and
//! exits non-zero on any mismatch.

use pastas_core::Workbench;
use pastas_query::index::select_scan;
use pastas_query::{parse_query, HistoryQuery, QueryPlan};
use pastas_synth::{generate_collection, SynthConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The battery of query-language shapes the smoke test runs. The pairs
/// are (text, must_be_index_served): `true` asserts the plan contains no
/// full-scan operator — posting-list set algebra end to end.
const SHAPES: &[(&str, bool)] = &[
    ("has(T90)", true),
    ("lacks(T90)", true),
    ("has(K.*) and lacks(T90)", true),
    ("has(T90|T89) and lacks(K74) and age(40..95)", true),
    ("has(T90) or has(R95)", true),
    ("count(K.*) >= 2", true),
    ("not (has(T90) and has(K74))", true),
    ("sex(F) and age(50..80)", false),
    ("has(K.*) or sex(F)", false),
];

fn main() {
    let patients = arg("--patients", 5_000) as usize;
    let seed = arg("--seed", 7);
    eprintln!("Generating {patients} patients (seed {seed}) …");
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let reference_date = collection
        .stats()
        .last
        .map(|dt| dt.date())
        .unwrap_or_else(|| pastas_time::Date::new(2013, 1, 1).expect("valid"));
    let workbench = Workbench::from_collection(collection);

    if flag("--smoke") {
        std::process::exit(run_smoke(&workbench, reference_date));
    }

    let queries: Vec<String> = match arg_str("--explain") {
        Some(text) => vec![text],
        None => ["has(T90)", "has(K.*) and lacks(T90)", "lacks(T90) and age(40..90)"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    };
    for text in queries {
        let query = match parse_query(&text, reference_date) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("bad query {text:?}: {e}");
                std::process::exit(2);
            }
        };
        explain_one(&workbench, &text, &query);
    }
}

fn explain_one(workbench: &Workbench, text: &str, query: &HistoryQuery) {
    let (positions, explain) = workbench.select_explain(query);
    println!("query: {text}");
    println!(
        "matched {} of {} — {}",
        positions.len(),
        workbench.collection().len(),
        if explain.used_full_scan() { "full scan" } else { "index-served" }
    );
    print!("{}", explain.render_text());
    println!();
}

/// Differential check: planner output == scan output for every shape,
/// with the index-served expectations honoured. Returns the exit code.
fn run_smoke(workbench: &Workbench, reference_date: pastas_time::Date) -> i32 {
    let collection = workbench.collection();
    let index = workbench.index();
    let mut failures = 0u32;
    for &(text, must_index) in SHAPES {
        let query = match parse_query(text, reference_date) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("  FAIL parse {text:?}: {e}");
                failures += 1;
                continue;
            }
        };
        let plan = QueryPlan::build(index, collection, &query);
        let planned = plan.execute(collection, index);
        let scanned = select_scan(collection, &query);
        if planned != scanned {
            eprintln!(
                "  FAIL {text:?}: planned {} != scanned {}\n{}",
                planned.len(),
                scanned.len(),
                plan.render()
            );
            failures += 1;
            continue;
        }
        if must_index && plan.uses_full_scan() {
            eprintln!("  FAIL {text:?}: expected index-served plan, got\n{}", plan.render());
            failures += 1;
            continue;
        }
        eprintln!(
            "  ok   {text} — {} matched, {}",
            planned.len(),
            if plan.uses_full_scan() { "scan" } else { "index" }
        );
    }
    if failures > 0 {
        eprintln!("PLANNER SMOKE: {failures} check(s) FAILED");
        1
    } else {
        eprintln!("PLANNER SMOKE: all checks passed");
        0
    }
}
