//! Query-plan inspection and the planner's differential smoke test.
//!
//! ```text
//! cargo run --release --example plan_explain -- [--patients N] [--seed S]
//!     [--shard-patients K] [--budget-ms B] [--smoke] [--smoke-temporal]
//!     [--explain "QUERY"]
//! ```
//!
//! Default mode compiles and executes a few representative cohort
//! queries, printing each physical plan with per-operator candidate
//! counts and timings (`EXPLAIN ANALYZE` for the workbench). `--explain`
//! does the same for one query given in the query language. `--smoke` is
//! the CI stage: for a battery of query shapes — positive, negated,
//! counted, compound, disjunctive, demographic — it checks that the
//! planned result equals the full `select_scan`, that the acceptance
//! shape (`has ∧ lacks`) is served without a full-scan operator, and
//! exits non-zero on any mismatch. `--shard-patients K` seals a store
//! arena per `K` patients (the sharded layout; align with the index's
//! 65,536-row shard width), and `--budget-ms B` additionally fails the
//! smoke when any index-served shape's planned execution exceeds `B`
//! milliseconds — the 1M-patient CI stage runs with `--budget-ms 100`.
//! `--smoke-temporal` runs the same differential discipline over
//! `seq(...)` temporal shapes: code-bearing patterns must plan to an
//! index prefilter feeding a `PatternScan` operator (never a full
//! scan) and must report automaton work through the execution stats,
//! while cover-free patterns must fall back to an honest full scan.

use pastas_core::Workbench;
use pastas_query::index::select_scan;
use pastas_query::{parse_query, HistoryQuery, QueryPlan};
use pastas_synth::{generate_collection, SynthConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The battery of query-language shapes the smoke test runs. The
/// triples are (text, must_be_index_served, budgeted): `must_index`
/// asserts the plan contains no full-scan operator — posting-list set
/// algebra end to end — and `budgeted` additionally holds the shape to
/// `--budget-ms`. Budgeted shapes are the pure set-algebra ones;
/// `count(K.*) >= 2` stays index-served but its Filter verifies every
/// candidate history (O(candidates) by construction), so a per-shape
/// millisecond cap would measure the collection, not the planner.
const SHAPES: &[(&str, bool, bool)] = &[
    ("has(T90)", true, true),
    ("lacks(T90)", true, true),
    ("has(K.*) and lacks(T90)", true, true),
    ("has(T90|T89) and lacks(K74) and age(40..95)", true, true),
    ("has(T90) or has(R95)", true, true),
    ("count(K.*) >= 2", true, false),
    ("not (has(T90) and has(K74))", true, true),
    ("sex(F) and age(50..80)", false, false),
    ("has(K.*) or sex(F)", false, false),
];

/// Temporal `seq(...)` shapes for `--smoke-temporal`. The second field
/// is `must_index`: shapes with at least one code-bearing step must be
/// served by an index prefilter feeding a `PatternScan`; shapes whose
/// steps carry no code cover (pure kind predicates) must plan to an
/// honest full scan rather than a pretend prefilter.
const TEMPORAL_SHAPES: &[(&str, bool)] = &[
    ("seq(T90 then K.*)", true),
    ("seq(K.* then[0d..365d] T90)", true),
    ("seq(T90 then[0d..3650d] medication then any)", true),
    ("seq(T90 then[-30d..90d] K.*)", true),
    ("seq(interval then any)", false),
];

fn main() {
    let patients = arg("--patients", 5_000) as usize;
    let seed = arg("--seed", 7);
    let shard_patients = arg("--shard-patients", 0) as usize;
    eprintln!("Generating {patients} patients (seed {seed}, shard_patients {shard_patients}) …");
    let config = SynthConfig { shard_patients, ..SynthConfig::with_patients(patients) };
    let collection = generate_collection(config, seed);
    let reference_date = collection
        .stats()
        .last
        .map(|dt| dt.date())
        .unwrap_or_else(|| pastas_time::Date::new(2013, 1, 1).expect("valid"));
    let workbench = Workbench::from_collection(collection);
    let fp = workbench.index().footprint();
    eprintln!(
        "index: {} shard(s), postings {} B compressed ({} B as Vec<u32>)",
        fp.shards, fp.postings_compressed_bytes, fp.postings_uncompressed_bytes_est
    );

    if flag("--smoke") {
        let budget_ms = arg("--budget-ms", 0);
        std::process::exit(run_smoke(&workbench, reference_date, budget_ms));
    }
    if flag("--smoke-temporal") {
        std::process::exit(run_temporal_smoke(&workbench, reference_date));
    }

    let queries: Vec<String> = match arg_str("--explain") {
        Some(text) => vec![text],
        None => ["has(T90)", "has(K.*) and lacks(T90)", "lacks(T90) and age(40..90)"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    };
    for text in queries {
        let query = match parse_query(&text, reference_date) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("bad query {text:?}: {e}");
                std::process::exit(2);
            }
        };
        explain_one(&workbench, &text, &query);
    }
}

fn explain_one(workbench: &Workbench, text: &str, query: &HistoryQuery) {
    let (positions, explain) = workbench.select_explain(query);
    println!("query: {text}");
    println!(
        "matched {} of {} — {}",
        positions.len(),
        workbench.collection().len(),
        if explain.used_full_scan() { "full scan" } else { "index-served" }
    );
    print!("{}", explain.render_text());
    println!();
}

/// Differential check: planner output == scan output for every shape,
/// with the index-served expectations honoured. A nonzero `budget_ms`
/// additionally caps the planned execution time of every budgeted
/// (pure set-algebra) shape, median of three runs. Returns the exit
/// code.
fn run_smoke(workbench: &Workbench, reference_date: pastas_time::Date, budget_ms: u64) -> i32 {
    let collection = workbench.collection();
    let index = workbench.index();
    let mut failures = 0u32;
    for &(text, must_index, budgeted) in SHAPES {
        let query = match parse_query(text, reference_date) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("  FAIL parse {text:?}: {e}");
                failures += 1;
                continue;
            }
        };
        let plan = QueryPlan::build(index, collection, &query);
        let planned = plan.execute(collection, index);
        let scanned = select_scan(collection, &query);
        if planned != scanned {
            eprintln!(
                "  FAIL {text:?}: planned {} != scanned {}\n{}",
                planned.len(),
                scanned.len(),
                plan.render()
            );
            failures += 1;
            continue;
        }
        if must_index && plan.uses_full_scan() {
            eprintln!("  FAIL {text:?}: expected index-served plan, got\n{}", plan.render());
            failures += 1;
            continue;
        }
        let mut budget_note = String::new();
        if budget_ms > 0 && budgeted {
            let mut times: Vec<f64> = (0..3)
                .map(|_| {
                    let t = std::time::Instant::now();
                    std::hint::black_box(plan.execute(collection, index));
                    t.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = times[1];
            if median > budget_ms as f64 {
                eprintln!(
                    "  FAIL {text:?}: planned execution {median:.1} ms over the \
                     {budget_ms} ms budget\n{}",
                    plan.render()
                );
                failures += 1;
                continue;
            }
            budget_note = format!(", {median:.1} ms (budget {budget_ms} ms)");
        }
        eprintln!(
            "  ok   {text} — {} matched, {}{budget_note}",
            planned.len(),
            if plan.uses_full_scan() { "scan" } else { "index" }
        );
    }
    if failures > 0 {
        eprintln!("PLANNER SMOKE: {failures} check(s) FAILED");
        1
    } else {
        eprintln!("PLANNER SMOKE: all checks passed");
        0
    }
}

/// Temporal differential check: every `seq(...)` shape's planned result
/// must equal the full `select_scan`, code-bearing shapes must execute
/// as an index-prefiltered `PatternScan` (no full-scan operator, nonzero
/// candidate / automaton-run stats), and cover-free shapes must plan to
/// an honest full scan. Returns the exit code.
fn run_temporal_smoke(workbench: &Workbench, reference_date: pastas_time::Date) -> i32 {
    let collection = workbench.collection();
    let index = workbench.index();
    let mut failures = 0u32;
    for &(text, must_index) in TEMPORAL_SHAPES {
        let query = match parse_query(text, reference_date) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("  FAIL parse {text:?}: {e}");
                failures += 1;
                continue;
            }
        };
        let plan = QueryPlan::build(index, collection, &query);
        let (planned, stats) = plan.execute_stats(collection, index);
        let scanned = select_scan(collection, &query);
        if planned != scanned {
            eprintln!(
                "  FAIL {text:?}: planned {} != scanned {}\n{}",
                planned.len(),
                scanned.len(),
                plan.render()
            );
            failures += 1;
            continue;
        }
        if must_index {
            if plan.uses_full_scan() {
                eprintln!("  FAIL {text:?}: expected a prefiltered plan, got\n{}", plan.render());
                failures += 1;
                continue;
            }
            if !plan.render().contains("PatternScan") {
                eprintln!(
                    "  FAIL {text:?}: expected a PatternScan operator, got\n{}",
                    plan.render()
                );
                failures += 1;
                continue;
            }
            if stats.pattern_candidates == 0 || stats.pattern_automaton_runs == 0 {
                eprintln!(
                    "  FAIL {text:?}: executed without reporting automaton work \
                     (candidates {}, runs {})",
                    stats.pattern_candidates, stats.pattern_automaton_runs
                );
                failures += 1;
                continue;
            }
        } else if !plan.uses_full_scan() {
            eprintln!(
                "  FAIL {text:?}: cover-free pattern should scan honestly, got\n{}",
                plan.render()
            );
            failures += 1;
            continue;
        }
        eprintln!(
            "  ok   {text} — {} matched, {}, {} candidate(s), {} automaton run(s)",
            planned.len(),
            if plan.uses_full_scan() { "scan" } else { "index" },
            stats.pattern_candidates,
            stats.pattern_automaton_runs
        );
    }
    if failures > 0 {
        eprintln!("TEMPORAL SMOKE: {failures} check(s) FAILED");
        1
    } else {
        eprintln!("TEMPORAL SMOKE: all checks passed");
        0
    }
}
