//! Serve a synthetic collection over HTTP: the workbench as a shared,
//! concurrent service.
//!
//! ```text
//! cargo run --release --example serve_cohorts -- [--patients N] [--seed S]
//!     [--addr HOST:PORT] [--threads T] [--smoke] [--smoke-ingest]
//!     [--smoke-analytics]
//! ```
//!
//! Default mode binds and serves until killed. `--smoke` instead binds an
//! OS-assigned loopback port, fires one request at every endpoint through
//! the in-crate client (checking statuses, a cache hit on the repeated
//! `/select`, and zero worker panics), shuts down gracefully, and exits
//! non-zero on any failure — the CI smoke stage. `--smoke-ingest` does the
//! same for the streaming path: one `POST /ingest` delta per source format
//! for a brand-new patient, a synchronous `POST /compact`, then checks that
//! the patient is selectable, has a timeline, and that the ingest gauges
//! read fully drained. `--smoke-analytics` exercises the materialized-
//! cohort lifecycle: `POST /cohort`, stats/timeline/SVG reads, an ingest
//! delta + compact that must turn the handle `410 Gone`, and a successful
//! re-materialization at the new version.

use pastas_ingest::json::Json;
use pastas_serve::{client, serve, ServerConfig};
use pastas_synth::{generate_collection, SynthConfig};
use std::time::{Duration, Instant};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let smoke = flag("--smoke");
    let smoke_ingest = flag("--smoke-ingest");
    let smoke_analytics = flag("--smoke-analytics");
    let any_smoke = smoke || smoke_ingest || smoke_analytics;
    let patients = arg("--patients", 168_000) as usize;
    let seed = arg("--seed", 7);
    let default_addr = if any_smoke { "127.0.0.1:0" } else { "127.0.0.1:7878" };
    let addr = arg_str("--addr", default_addr);

    eprintln!("Generating {patients} patients (seed {seed}) …");
    let t0 = Instant::now();
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let workbench = pastas_core::Workbench::from_collection(collection);
    eprintln!("Loaded in {:.1?}", t0.elapsed());

    let config = ServerConfig {
        addr,
        workers: arg("--threads", 0) as usize,
        ..ServerConfig::default()
    };
    let handle = serve(workbench, config).expect("bind");
    eprintln!("Serving on http://{}", handle.addr());
    eprintln!("  POST /select            body = query text, e.g. has(T90) and age(50..80)");
    eprintln!("  POST /cohort            body = query text -> frozen cohort handle");
    eprintln!("  GET  /cohort/c1/stats   ?k=20   (also /cohort/c1/timeline, /cohort/c1.svg)");
    eprintln!("  GET  /cohort.svg        ?w=900&h=500&overview=1");
    eprintln!("  GET  /cohort.txt        ?cols=100&rows=30");
    eprintln!("  GET  /timeline/P0000009");
    eprintln!("  POST /command           {{\"command\":\"sort\",\"key\":\"entry_count\"}}");
    eprintln!("  GET  /details           ?x=450&y=250");
    eprintln!("  GET  /metrics");

    if any_smoke {
        let mut failures = 0;
        if smoke {
            failures += run_smoke(handle.addr());
        }
        if smoke_ingest {
            failures += run_smoke_ingest(handle.addr());
        }
        if smoke_analytics {
            failures += run_smoke_analytics(handle.addr());
        }
        eprintln!("Shutting down …");
        handle.shutdown();
        if failures > 0 {
            eprintln!("SMOKE: {failures} check(s) FAILED");
            std::process::exit(1);
        }
        eprintln!("SMOKE: all checks passed");
        return;
    }

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Fire one request at every endpoint; return the failed-check count.
fn run_smoke(addr: std::net::SocketAddr) -> u32 {
    let timeout = Duration::from_secs(30);
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            eprintln!("  ok   {name}");
        } else {
            failures += 1;
            eprintln!("  FAIL {name}: {detail}");
        }
    };

    let mut conn = match client::Conn::connect(addr, timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  FAIL connect: {e}");
            return 1;
        }
    };

    // /select, twice: the repeat must be served from the response cache.
    let q = b"has(T90)";
    let first = conn.post("/select", q);
    let first_body = first.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    check(
        "POST /select",
        first.as_ref().is_ok_and(|r| r.status == 200) && first_body.contains("\"ids\""),
        format!("{first:?}"),
    );
    let second = conn.post("/select", q);
    check(
        "POST /select (repeat)",
        second.as_ref().is_ok_and(|r| r.status == 200 && r.body_str() == first_body),
        format!("{second:?}"),
    );

    // /select?explain=1 on a compound query with a negated code clause:
    // the executed plan must come back, and must be index-served.
    let explain = conn.post("/select?explain=1&count_only=1", b"has(K.*) and lacks(T90)");
    let explain_body = explain.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    check(
        "POST /select?explain=1",
        explain.as_ref().is_ok_and(|r| r.status == 200)
            && explain_body.contains("\"explain\"")
            && explain_body.contains("\"full_scan\":false"),
        format!("{explain_body:?}"),
    );

    let svg = conn.get("/cohort.svg?w=600&h=400");
    check(
        "GET /cohort.svg",
        svg.as_ref().is_ok_and(|r| r.status == 200 && r.body_str().contains("<svg")),
        format!("{:?}", svg.as_ref().map(|r| r.status)),
    );
    let txt = conn.get("/cohort.txt?cols=80&rows=20");
    check(
        "GET /cohort.txt",
        txt.as_ref().is_ok_and(|r| r.status == 200),
        format!("{:?}", txt.as_ref().map(|r| r.status)),
    );

    // A real patient id out of the /select response.
    let id = Json::parse(&first_body)
        .ok()
        .and_then(|doc| {
            doc.get("ids")
                .and_then(Json::as_array)
                .and_then(|ids| ids.first().and_then(Json::as_str).map(str::to_owned))
        })
        .unwrap_or_else(|| "P0000000".to_owned());
    let timeline = conn.get(&format!("/timeline/{id}"));
    check(
        "GET /timeline/{id}",
        timeline.as_ref().is_ok_and(|r| r.status == 200),
        format!("id {id}, {:?}", timeline.as_ref().map(|r| r.status)),
    );

    let cmd = conn.post("/command", br#"{"command":"sort","key":"entry_count"}"#);
    check(
        "POST /command",
        cmd.as_ref().is_ok_and(|r| r.status == 200 && r.body_str().contains("\"version\":2")),
        format!("{cmd:?}"),
    );

    let metrics = conn.get("/metrics");
    let doc = metrics
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| Json::parse(&r.body_str()).ok());
    let gauge = |doc: &Option<Json>, name: &str| {
        doc.as_ref().and_then(|d| d.get(name).and_then(Json::as_f64))
    };
    check(
        "GET /metrics",
        doc.is_some(),
        format!("{:?}", metrics.as_ref().map(|r| r.status)),
    );
    check(
        "response cache hit on repeated /select",
        gauge(&doc, "cache_hits").is_some_and(|v| v >= 1.0),
        format!("cache_hits = {:?}", gauge(&doc, "cache_hits")),
    );
    check(
        "zero worker panics",
        gauge(&doc, "worker_panics") == Some(0.0),
        format!("worker_panics = {:?}", gauge(&doc, "worker_panics")),
    );
    failures
}

/// Stream one delta per source format for a brand-new patient, compact,
/// and verify the patient became selectable; return the failed-check count.
fn run_smoke_ingest(addr: std::net::SocketAddr) -> u32 {
    let timeout = Duration::from_secs(30);
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            eprintln!("  ok   {name}");
        } else {
            failures += 1;
            eprintln!("  FAIL {name}: {detail}");
        }
    };

    let mut conn = match client::Conn::connect(addr, timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  FAIL connect: {e}");
            return 1;
        }
    };

    let count_of = |body: &str| {
        Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("count").and_then(Json::as_f64))
            .map(|v| v as u64)
    };
    let before = conn.post("/select?count_only=1", b"has(T90)");
    let before_count = before
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| count_of(&r.body_str()));
    check("POST /select (baseline count)", before_count.is_some(), format!("{before:?}"));

    // One increment per source format, all for patient NIN-0990001 —
    // an id far above anything the synthetic collection generates.
    let deltas: [(&str, &str); 5] = [
        ("persons", "nin;birth_date;sex\nNIN-0990001;1950-01-01;F\n"),
        (
            "claims",
            "claim_id;patient;date;provider;icpc;note\nX9;NIN-0990001;04.05.2013;GP;T90;\n",
        ),
        (
            "hospital",
            "episode_id,patient,admitted,discharged,icd10_main,care_level\n\
             E9,NIN-0990001,2013-06-01,2013-06-05,E11,inpatient\n",
        ),
        ("municipal", "patient|service|from|to\nNIN-0990001|home_care|2013-07-01|2013-09-01\n"),
        (
            "prescriptions",
            "patient\tdispensed\tatc\tddd\nNIN-0990001\t2013-05-04T12:00:00\tA10BA02\t30\n",
        ),
    ];
    for (format, body) in deltas {
        let resp = conn.post(&format!("/ingest?format={format}"), body.as_bytes());
        check(
            &format!("POST /ingest?format={format}"),
            resp.as_ref().is_ok_and(|r| {
                r.status == 202 && r.body_str().contains("\"accepted\":true")
            }),
            format!("{resp:?}"),
        );
    }

    // A synchronous compact applies every accepted batch and folds the
    // side-index; afterwards no residual debt may remain.
    let compact = conn.post("/compact", b"");
    check(
        "POST /compact",
        compact
            .as_ref()
            .is_ok_and(|r| r.status == 200 && r.body_str().contains("\"side_rows\":0")),
        format!("{compact:?}"),
    );

    let after = conn.post("/select?count_only=1", b"has(T90)");
    let after_count = after
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| count_of(&r.body_str()));
    check(
        "streamed patient joins the has(T90) cohort",
        matches!((before_count, after_count), (Some(b), Some(a)) if a == b + 1),
        format!("before {before_count:?}, after {after_count:?}"),
    );

    let timeline = conn.get("/timeline/P0990001");
    check(
        "GET /timeline for the streamed patient",
        timeline.as_ref().is_ok_and(|r| r.status == 200),
        format!("{:?}", timeline.as_ref().map(|r| r.status)),
    );

    let metrics = conn.get("/metrics");
    let doc = metrics
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| Json::parse(&r.body_str()).ok());
    let gauge = |name: &str| doc.as_ref().and_then(|d| d.get(name).and_then(Json::as_f64));
    check(
        "ingest gauges fully drained",
        gauge("side_index_rows") == Some(0.0)
            && gauge("ingest_queue_depth") == Some(0.0)
            && gauge("ingest_pending_entries") == Some(0.0)
            && gauge("compactions_total").is_some_and(|v| v >= 1.0)
            && gauge("worker_panics") == Some(0.0),
        format!(
            "side_index_rows {:?}, queue_depth {:?}, pending {:?}, compactions {:?}",
            gauge("side_index_rows"),
            gauge("ingest_queue_depth"),
            gauge("ingest_pending_entries"),
            gauge("compactions_total"),
        ),
    );
    failures
}

/// Materialize a cohort, read its histograms three ways, invalidate it
/// with an ingest + compact, and re-materialize at the new version;
/// return the failed-check count.
fn run_smoke_analytics(addr: std::net::SocketAddr) -> u32 {
    let timeout = Duration::from_secs(30);
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            eprintln!("  ok   {name}");
        } else {
            failures += 1;
            eprintln!("  FAIL {name}: {detail}");
        }
    };

    let mut conn = match client::Conn::connect(addr, timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  FAIL connect: {e}");
            return 1;
        }
    };

    let id_of = |body: &str| {
        Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("id").and_then(Json::as_str).map(str::to_owned))
    };

    // Freeze the selection under a handle.
    let made = conn.post("/cohort", b"has(T90)");
    let made_body = made.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    let id = id_of(&made_body);
    check(
        "POST /cohort",
        made.as_ref().is_ok_and(|r| r.status == 201) && id.is_some(),
        format!("{made_body:?}"),
    );
    let Some(id) = id else { return failures + 1 };

    // The three frozen-cohort reads.
    let stats = conn.get(&format!("/cohort/{id}/stats?k=10"));
    check(
        "GET /cohort/{id}/stats",
        stats.as_ref().is_ok_and(|r| {
            r.status == 200
                && r.body_str().contains("\"age_band\"")
                && r.body_str().contains("\"icd_chapter\"")
        }),
        format!("{:?}", stats.as_ref().map(|r| r.status)),
    );
    let timeline = conn.get(&format!("/cohort/{id}/timeline"));
    check(
        "GET /cohort/{id}/timeline",
        timeline
            .as_ref()
            .is_ok_and(|r| r.status == 200 && r.body_str().contains("\"months\":[")),
        format!("{:?}", timeline.as_ref().map(|r| r.status)),
    );
    let svg = conn.get(&format!("/cohort/{id}.svg?w=900&h=600"));
    check(
        "GET /cohort/{id}.svg",
        svg.as_ref().is_ok_and(|r| r.status == 200 && r.body_str().contains("<svg")),
        format!("{:?}", svg.as_ref().map(|r| r.status)),
    );

    // Publish a new version: the handle must go stale, not silently
    // answer against the superseded snapshot.
    let persons = "nin;birth_date;sex\nNIN-0990002;1947-03-02;M\n";
    let claims =
        "claim_id;patient;date;provider;icpc;note\nX10;NIN-0990002;04.05.2013;GP;T90;\n";
    let p = conn.post("/ingest?format=persons", persons.as_bytes());
    let c = conn.post("/ingest?format=claims", claims.as_bytes());
    check(
        "POST /ingest (delta for a new patient)",
        p.as_ref().is_ok_and(|r| r.status == 202) && c.as_ref().is_ok_and(|r| r.status == 202),
        format!("{:?} / {:?}", p.as_ref().map(|r| r.status), c.as_ref().map(|r| r.status)),
    );
    let compact = conn.post("/compact", b"");
    check(
        "POST /compact",
        compact.as_ref().is_ok_and(|r| r.status == 200),
        format!("{compact:?}"),
    );
    let gone = conn.get(&format!("/cohort/{id}/stats?k=10"));
    check(
        "stale handle answers 410 Gone with a re-materialize hint",
        gone.as_ref().is_ok_and(|r| {
            r.status == 410
                && r.body_str().contains("\"query\":\"has(T90)\"")
                && r.body_str().contains("re-materialize")
        }),
        format!("{gone:?}"),
    );

    // Re-materializing at the new version sees the streamed patient.
    let remade = conn.post("/cohort", b"has(T90)");
    let remade_body = remade.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    let count_of = |body: &str| {
        Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("count").and_then(Json::as_f64))
            .map(|v| v as u64)
    };
    check(
        "re-materialize picks up the delta",
        remade.as_ref().is_ok_and(|r| r.status == 201)
            && id_of(&remade_body).is_some_and(|fresh| fresh != id)
            && matches!(
                (count_of(&made_body), count_of(&remade_body)),
                (Some(b), Some(a)) if a == b + 1
            ),
        format!("was {made_body:?}, now {remade_body:?}"),
    );

    // The registry gauges made it to /metrics.
    let metrics = conn.get("/metrics");
    let doc = metrics
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| Json::parse(&r.body_str()).ok());
    let gauge = |name: &str| doc.as_ref().and_then(|d| d.get(name).and_then(Json::as_f64));
    check(
        "cohort registry gauges",
        gauge("cohort_registry_size") == Some(1.0)
            && gauge("cohort_registry_bytes").is_some_and(|v| v > 0.0)
            && gauge("cohort_materializations_total") == Some(2.0)
            && gauge("cohort_stale_hits_total") == Some(1.0),
        format!(
            "size {:?}, bytes {:?}, materializations {:?}, stale_hits {:?}",
            gauge("cohort_registry_size"),
            gauge("cohort_registry_bytes"),
            gauge("cohort_materializations_total"),
            gauge("cohort_stale_hits_total"),
        ),
    );
    failures
}
