//! Serve a synthetic collection over HTTP: the workbench as a shared,
//! concurrent service.
//!
//! ```text
//! cargo run --release --example serve_cohorts -- [--patients N] [--seed S]
//!     [--addr HOST:PORT] [--threads T] [--smoke]
//! ```
//!
//! Default mode binds and serves until killed. `--smoke` instead binds an
//! OS-assigned loopback port, fires one request at every endpoint through
//! the in-crate client (checking statuses, a cache hit on the repeated
//! `/select`, and zero worker panics), shuts down gracefully, and exits
//! non-zero on any failure — the CI smoke stage.

use pastas_ingest::json::Json;
use pastas_serve::{client, serve, ServerConfig};
use pastas_synth::{generate_collection, SynthConfig};
use std::time::{Duration, Instant};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let smoke = flag("--smoke");
    let patients = arg("--patients", 168_000) as usize;
    let seed = arg("--seed", 7);
    let default_addr = if smoke { "127.0.0.1:0" } else { "127.0.0.1:7878" };
    let addr = arg_str("--addr", default_addr);

    eprintln!("Generating {patients} patients (seed {seed}) …");
    let t0 = Instant::now();
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let workbench = pastas_core::Workbench::from_collection(collection);
    eprintln!("Loaded in {:.1?}", t0.elapsed());

    let config = ServerConfig {
        addr,
        workers: arg("--threads", 0) as usize,
        ..ServerConfig::default()
    };
    let handle = serve(workbench, config).expect("bind");
    eprintln!("Serving on http://{}", handle.addr());
    eprintln!("  POST /select            body = query text, e.g. has(T90) and age(50..80)");
    eprintln!("  GET  /cohort.svg        ?w=900&h=500&overview=1");
    eprintln!("  GET  /cohort.txt        ?cols=100&rows=30");
    eprintln!("  GET  /timeline/P0000009");
    eprintln!("  POST /command           {{\"command\":\"sort\",\"key\":\"entry_count\"}}");
    eprintln!("  GET  /details           ?x=450&y=250");
    eprintln!("  GET  /metrics");

    if smoke {
        let failures = run_smoke(handle.addr());
        eprintln!("Shutting down …");
        handle.shutdown();
        if failures > 0 {
            eprintln!("SMOKE: {failures} check(s) FAILED");
            std::process::exit(1);
        }
        eprintln!("SMOKE: all checks passed");
        return;
    }

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Fire one request at every endpoint; return the failed-check count.
fn run_smoke(addr: std::net::SocketAddr) -> u32 {
    let timeout = Duration::from_secs(30);
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            eprintln!("  ok   {name}");
        } else {
            failures += 1;
            eprintln!("  FAIL {name}: {detail}");
        }
    };

    let mut conn = match client::Conn::connect(addr, timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  FAIL connect: {e}");
            return 1;
        }
    };

    // /select, twice: the repeat must be served from the response cache.
    let q = b"has(T90)";
    let first = conn.post("/select", q);
    let first_body = first.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    check(
        "POST /select",
        first.as_ref().is_ok_and(|r| r.status == 200) && first_body.contains("\"ids\""),
        format!("{first:?}"),
    );
    let second = conn.post("/select", q);
    check(
        "POST /select (repeat)",
        second.as_ref().is_ok_and(|r| r.status == 200 && r.body_str() == first_body),
        format!("{second:?}"),
    );

    // /select?explain=1 on a compound query with a negated code clause:
    // the executed plan must come back, and must be index-served.
    let explain = conn.post("/select?explain=1&count_only=1", b"has(K.*) and lacks(T90)");
    let explain_body = explain.as_ref().map(|r| r.body_str().into_owned()).unwrap_or_default();
    check(
        "POST /select?explain=1",
        explain.as_ref().is_ok_and(|r| r.status == 200)
            && explain_body.contains("\"explain\"")
            && explain_body.contains("\"full_scan\":false"),
        format!("{explain_body:?}"),
    );

    let svg = conn.get("/cohort.svg?w=600&h=400");
    check(
        "GET /cohort.svg",
        svg.as_ref().is_ok_and(|r| r.status == 200 && r.body_str().contains("<svg")),
        format!("{:?}", svg.as_ref().map(|r| r.status)),
    );
    let txt = conn.get("/cohort.txt?cols=80&rows=20");
    check(
        "GET /cohort.txt",
        txt.as_ref().is_ok_and(|r| r.status == 200),
        format!("{:?}", txt.as_ref().map(|r| r.status)),
    );

    // A real patient id out of the /select response.
    let id = Json::parse(&first_body)
        .ok()
        .and_then(|doc| {
            doc.get("ids")
                .and_then(Json::as_array)
                .and_then(|ids| ids.first().and_then(Json::as_str).map(str::to_owned))
        })
        .unwrap_or_else(|| "P0000000".to_owned());
    let timeline = conn.get(&format!("/timeline/{id}"));
    check(
        "GET /timeline/{id}",
        timeline.as_ref().is_ok_and(|r| r.status == 200),
        format!("id {id}, {:?}", timeline.as_ref().map(|r| r.status)),
    );

    let cmd = conn.post("/command", br#"{"command":"sort","key":"entry_count"}"#);
    check(
        "POST /command",
        cmd.as_ref().is_ok_and(|r| r.status == 200 && r.body_str().contains("\"version\":2")),
        format!("{cmd:?}"),
    );

    let metrics = conn.get("/metrics");
    let doc = metrics
        .as_ref()
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| Json::parse(&r.body_str()).ok());
    let gauge = |doc: &Option<Json>, name: &str| {
        doc.as_ref().and_then(|d| d.get(name).and_then(Json::as_f64))
    };
    check(
        "GET /metrics",
        doc.is_some(),
        format!("{:?}", metrics.as_ref().map(|r| r.status)),
    );
    check(
        "response cache hit on repeated /select",
        gauge(&doc, "cache_hits").is_some_and(|v| v >= 1.0),
        format!("cache_hits = {:?}", gauge(&doc, "cache_hits")),
    );
    check(
        "zero worker panics",
        gauge(&doc, "worker_panics") == Some(0.0),
        format!("worker_panics = {:?}", gauge(&doc, "worker_panics")),
    );
    failures
}
