//! Personal web timelines (experiment E7): the pastas.no artefact.
//!
//! §Abstract: "We have also used the tool to produce interactive personal
//! health time-lines (for more than 10,000 individuals) on the web."
//! This example exports self-contained HTML pages for a batch of patients
//! and reports throughput and page sizes. The default batch is small so
//! the example finishes instantly; pass `--count 10000` for the paper
//! scale.
//!
//! ```text
//! cargo run --release --example personal_timeline [--count N] [--out DIR]
//! ```

use pastas_core::prelude::*;
use std::time::Instant;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

fn main() {
    let count = arg("--count", 50) as usize;
    let out_dir = arg_str("--out", &std::env::temp_dir().join("pastas_timelines").to_string_lossy());
    let seed = arg("--seed", 3);

    // Enough patients that `count` of them are chronically ill.
    let patients = (count * 8).max(500);
    println!("Generating {patients} patients; exporting timelines for {count} chronic patients …");
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let wb = Workbench::from_collection(collection);

    // The feedback study presented *selected* patients their trajectories.
    let chronic = QueryBuilder::new()
        .has_code("T90|K74|K77|K86|R95|P76")
        .expect("regex")
        .build();
    let ids: Vec<PatientId> = wb.select_ids(&chronic).into_iter().take(count).collect();
    assert!(!ids.is_empty(), "no chronic patients found — increase --count context");

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let t0 = Instant::now();
    let mut total_bytes = 0usize;
    for id in &ids {
        let page = wb.export_personal_timeline(*id).expect("selected ids exist");
        total_bytes += page.len();
        let path = std::path::Path::new(&out_dir).join(format!("{id}.html"));
        std::fs::write(path, page).expect("write page");
    }
    let dt = t0.elapsed().as_secs_f64();

    println!("\n=== E7: personal web timelines (paper: >10,000 individuals) ===");
    println!("exported {} pages in {:.2}s ({:.0} pages/s)", ids.len(), dt, ids.len() as f64 / dt);
    println!(
        "mean page size {:.1} KiB (self-contained: SVG + details, no external assets)",
        total_bytes as f64 / ids.len() as f64 / 1024.0
    );
    println!(
        "at this rate, the paper's 10,000 individuals would take {:.1}s",
        10_000.0 / (ids.len() as f64 / dt)
    );
    println!("pages written under {out_dir}");
}
