//! The patient-feedback study, simulated (experiment E6).
//!
//! §IV: trajectories of the 13,000 selected patients were presented to the
//! patients themselves; "92% could easily recognize their own trajectory,
//! 7% did not remember and 1% said everything was wrong." This example
//! reproduces the split under the default aggregation-error model and then
//! sweeps the error severity — the sensitivity analysis the paper lacks.
//!
//! ```text
//! cargo run --release --example recognition_study [--patients N]
//! ```

use pastas_core::prelude::*;
use pastas_core::RecognitionModel;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 30_000) as usize;
    let seed = arg("--seed", 2014);

    println!("Generating {patients} patients and selecting the chronic cohort …");
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let chronic = QueryBuilder::new()
        .has_code("T90|T89|K74|K77|K86|R95|P76")
        .expect("regex")
        .build();
    let cohort = collection.extract(|h| chronic.matches(h));
    println!(
        "  study cohort: {} patients ({:.1}% — the paper studied 13,000 of 168,000)",
        cohort.len(),
        100.0 * cohort.len() as f64 / patients as f64
    );

    let outcome = pastas_core::simulate_study(&cohort, &RecognitionModel::default(), seed);
    println!("\n=== E6: recognition study (paper: 92% / 7% / 1%) ===");
    println!("recognized       {:.1}%", 100.0 * outcome.recognized);
    println!("did not remember {:.1}%", 100.0 * outcome.not_remembered);
    println!("everything wrong {:.1}%", 100.0 * outcome.all_wrong);

    println!("\nSensitivity: recognition vs aggregation error severity");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "swap prob", "dropout", "recognized", "not remembered", "all wrong"
    );
    for severity in [0.0f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let model = RecognitionModel {
            record_swap_prob: 0.01 * severity,
            source_dropout: 0.01 * severity,
            ..RecognitionModel::default()
        };
        let o = pastas_core::simulate_study(&cohort, &model, seed + severity as u64);
        println!(
            "{:>11.1}% {:>11.1}% {:>11.1}% {:>13.1}% {:>11.1}%",
            100.0 * model.record_swap_prob,
            100.0 * model.source_dropout,
            100.0 * o.recognized,
            100.0 * o.not_remembered,
            100.0 * o.all_wrong
        );
    }
    println!(
        "\nReading: the paper's 92/7/1 is consistent with ~1% linkage error and\n\
         ~1% per-source dropout; recognition degrades roughly linearly in both."
    );
}
