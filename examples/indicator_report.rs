//! Statistical indicator report: the numbers next to the pictures.
//!
//! §I lists "statistical indicator analysis" among the established ways of
//! learning from EHR databases; §V positions the visualization as the
//! hypothesis-generation companion to exactly this kind of table. The
//! report computes standard utilization indicators for the whole
//! population and for selected chronic cohorts, side by side.
//!
//! ```text
//! cargo run --release --example indicator_report [--patients N]
//! ```

use pastas_core::indicators::{indicators, IndicatorPanel};
use pastas_core::prelude::*;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 20_000) as usize;
    let seed = arg("--seed", 29);
    println!("Generating {patients} patients (seed {seed}) …\n");
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let wb = Workbench::from_collection(collection);
    let from = Date::new(2013, 1, 1).expect("date");
    let to = Date::new(2015, 1, 1).expect("date");

    let cohorts: Vec<(&str, IndicatorPanel)> = vec![
        ("all", indicators(wb.collection(), from, to)),
        ("diabetes", panel(&wb, "T90|T89|E1[014].*", from, to)),
        ("heart failure", panel(&wb, "K77|I50.*", from, to)),
        ("COPD", panel(&wb, "R95|J44.*", from, to)),
        ("depression", panel(&wb, "P76|F3[23].*", from, to)),
    ];

    println!(
        "{:<28} {:>9} {:>8} {:>8} {:>10} {:>7} {:>9} {:>7} {:>7}",
        "indicator", "all", "diabetes", "HF", "COPD", "depr.", "", "", ""
    );
    let row = |label: &str, f: &dyn Fn(&IndicatorPanel) -> String| {
        let values: Vec<String> = cohorts.iter().map(|(_, p)| f(p)).collect();
        println!(
            "{:<28} {:>9} {:>8} {:>8} {:>10} {:>7}",
            label, values[0], values[1], values[2], values[3], values[4]
        );
    };
    row("patients", &|p| p.patients.to_string());
    row("GP contacts / py", &|p| format!("{:.2}", p.gp_contacts_per_py));
    row("specialist / py", &|p| format!("{:.2}", p.specialist_contacts_per_py));
    row("admissions / 1000 py", &|p| format!("{:.0}", p.admissions_per_1000py));
    row("mean LOS (days)", &|p| format!("{:.1}", p.mean_los_days));
    row("30-day readmission", &|p| format!("{:.1}%", 100.0 * p.readmission_rate));
    row("polypharmacy (≥5 ATC/90d)", &|p| format!("{:.1}%", 100.0 * p.polypharmacy_rate));
    row("municipal care", &|p| format!("{:.1}%", 100.0 * p.municipal_care_rate));

    println!(
        "\nReading: every chronic cohort multiplies the population baseline —\n\
         the utilization gradient the visualization makes explorable."
    );
}

fn panel(wb: &Workbench, pattern: &str, from: Date, to: Date) -> IndicatorPanel {
    let q = QueryBuilder::new().has_code(pattern).expect("regex").build();
    let cohort = wb.select(&q);
    indicators(cohort.collection(), from, to)
}
