//! Quickstart: the full PAsTAs pipeline in ~60 lines.
//!
//! Generates a small synthetic population, renders it through the four
//! heterogeneous source formats, aggregates them back (linkage + dedup +
//! validation), selects a cohort, aligns it, and renders both a terminal
//! preview and an SVG of the Fig. 1 view.
//!
//! ```text
//! cargo run --example quickstart [--patients N] [--seed S]
//! ```

use pastas_core::prelude::*;
use pastas_synth::emit::{emit, MessConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 400) as usize;
    let seed = arg("--seed", 42);

    // 1. A synthetic population, rendered as four heterogeneous sources.
    println!("Generating {patients} synthetic patients (seed {seed}) …");
    let population = generate_population(SynthConfig::with_patients(patients), seed);
    let raw = emit(&population, MessConfig::default());
    println!(
        "  sources: {} claims rows, {} hospital rows, {} municipal rows, {} rx rows",
        raw.claims.lines().count() - 1,
        raw.hospital.lines().count() - 1,
        raw.municipal.lines().count() - 1,
        raw.prescriptions.lines().count() - 1,
    );

    // 2. Aggregate them (the paper's title operation).
    let wb = Workbench::from_raw_sources(SourceTexts {
        persons: &raw.persons,
        claims: &raw.claims,
        hospital: &raw.hospital,
        municipal: &raw.municipal,
        prescriptions: &raw.prescriptions,
    });
    let q = wb.quality().expect("raw-source build has a report");
    println!(
        "  aggregated {} entries; dropped {} duplicates, {} pre-birth dates; \
         extracted {} note measurements",
        q.entries_loaded, q.duplicates_dropped, q.dropped_pre_birth, q.measurements_extracted
    );

    // 3. Cohort identification: the diabetes cohort (Fig. 4 headless).
    let query = QueryBuilder::new()
        .has_code("T90|T89")
        .expect("valid regex")
        .build();
    let mut cohort = wb.select(&query);
    println!(
        "  selected {} of {} patients ({:.1}%) — the paper selected 13,000 of 168,000 (7.7%)",
        cohort.collection().len(),
        wb.collection().len(),
        100.0 * cohort.collection().len() as f64 / wb.collection().len() as f64,
    );

    // 4. Align on the first diabetes code and render.
    let anchored = cohort.align_on_code("T90|T89").expect("valid regex");
    println!("  aligned {anchored} histories on their first diabetes code\n");

    println!("Terminal preview (aligned view, anchor rule at '│'):");
    print!("{}", cohort.render_ascii(110, 24));

    let svg = cohort.render_svg(1000.0, 600.0);
    let path = std::env::temp_dir().join("pastas_quickstart.svg");
    std::fs::write(&path, &svg).expect("write SVG");
    println!("\nWrote the Fig. 1-style SVG to {}", path.display());

    // 5. Details-on-demand for the first diabetic patient.
    if let Some(h) = cohort.collection().histories().first() {
        println!("\nFirst patient in the cohort ({}):", h.id());
        for e in h.entries().iter().take(6) {
            println!("  {}", e.describe());
        }
        if h.len() > 6 {
            println!("  … and {} more entries", h.len() - 6);
        }
    }
}
