//! Cohort exploration scenario: the research workflow of §IV.
//!
//! A health researcher explores heart-failure trajectories: select the
//! cohort, look for the "discharge → readmission within 30 days" temporal
//! pattern, align on the first heart-failure code, sort by utilization,
//! mine code-relation rules, and inspect the timeline — every operation of
//! the paper's workbench exercised on one realistic question.
//!
//! ```text
//! cargo run --example cohort_explorer [--patients N] [--seed S]
//! ```

use pastas_align::mining::mine_rules;
use pastas_core::prelude::*;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 5_000) as usize;
    let seed = arg("--seed", 7);

    println!("Generating {patients} patients (seed {seed}) …");
    let collection = generate_collection(SynthConfig::with_patients(patients), seed);
    let wb = Workbench::from_collection(collection);

    // --- Step 1: the heart-failure cohort -----------------------------
    let hf = QueryBuilder::new().has_code("K77|I50.*").expect("regex").build();
    let mut cohort = wb.select(&hf);
    println!(
        "Heart-failure cohort: {} patients ({:.2}% of the population)",
        cohort.collection().len(),
        100.0 * cohort.collection().len() as f64 / patients as f64
    );

    // --- Step 2: temporal pattern — early readmission ------------------
    let readmit = TemporalPattern::starting_with(EntryPredicate::IsInterval)
        .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);
    let readmitted: Vec<PatientId> = cohort
        .collection()
        .iter()
        .filter(|h| readmit.matches(h))
        .map(|h| h.id())
        .collect();
    println!(
        "Early readmission (two stays within 30 days): {} of {} HF patients ({:.1}%)",
        readmitted.len(),
        cohort.collection().len(),
        100.0 * readmitted.len() as f64 / cohort.collection().len().max(1) as f64
    );

    // --- Step 3: align on the first HF code, sort by utilization -------
    cohort.align_on_code("K77").expect("regex");
    println!("\nAligned view, ±24 months around the first K77 code:");
    print!("{}", cohort.render_ascii(110, 22));

    // --- Step 4: mine code relations around heart failure --------------
    let sequences: Vec<Vec<Code>> = cohort
        .collection()
        .iter()
        .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
        .collect();
    let rules = mine_rules(&sequences, 0.08, 0.3);
    println!("\nTop code-relation rules in the HF cohort (support ≥ 8%, confidence ≥ 30%):");
    println!("{:<10} {:<10} {:>8} {:>11} {:>6}", "earlier", "later", "support", "confidence", "lift");
    for r in rules.iter().take(8) {
        println!(
            "{:<10} {:<10} {:>7.1}% {:>10.1}% {:>6.2}",
            r.antecedent.value,
            r.consequent.value,
            100.0 * r.support,
            100.0 * r.confidence,
            r.lift
        );
    }

    // --- Step 5: conditions per the integration ontology ---------------
    if let Some(id) = readmitted.first() {
        println!(
            "\nReadmitted patient {} has ontology-derived conditions: {:?}",
            id,
            cohort.conditions_of(*id)
        );
    }

    let svg = cohort.render_svg(1100.0, 650.0);
    let path = std::env::temp_dir().join("pastas_hf_cohort.svg");
    std::fs::write(&path, svg).expect("write SVG");
    println!("\nWrote the aligned cohort SVG to {}", path.display());

    // --- Step 6: group similar trajectories together --------------------
    if cohort.collection().len() <= 300 {
        let assignment = cohort.sort_by_similarity(4);
        let mut sizes = std::collections::HashMap::new();
        for c in &assignment {
            *sizes.entry(*c).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<_> = sizes.into_iter().collect();
        sizes.sort();
        println!(
            "\nTrajectory clusters (alignment distance, average linkage): {:?}",
            sizes
        );
    }

    // --- Step 7: the Fails-style event chart of readmissions ------------
    use pastas_viz::eventchart::{collect_rows, render_event_chart, EventChartOptions};
    let rows = collect_rows(cohort.collection(), &readmit);
    let (chart, _) = render_event_chart(cohort.collection(), &rows, &EventChartOptions::default());
    let chart_path = std::env::temp_dir().join("pastas_readmission_chart.svg");
    std::fs::write(&chart_path, pastas_viz::svg::render(&chart)).expect("write SVG");
    println!(
        "Event chart: {} readmission hits, one row each → {}",
        rows.len(),
        chart_path.display()
    );

    // --- Step 8: extraction for downstream statistics --------------------
    let csv = to_csv(cohort.collection());
    let json = to_json(cohort.collection());
    let csv_path = std::env::temp_dir().join("pastas_hf_cohort.csv");
    let json_path = std::env::temp_dir().join("pastas_hf_cohort.json");
    std::fs::write(&csv_path, &csv).expect("write CSV");
    std::fs::write(&json_path, &json).expect("write JSON");
    let reloaded = from_json(&json).expect("own JSON round-trips");
    assert_eq!(reloaded.len(), cohort.collection().len());
    println!(
        "Extracted {} CSV rows and a JSON cohort (round-trip verified) → {} / {}",
        csv.lines().count() - 1,
        csv_path.display(),
        json_path.display()
    );
}
