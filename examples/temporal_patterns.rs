//! Temporal reasoning scenario: patterns, Allen constraints, the SPARQL
//! view of the ABox, and cohort statistics.
//!
//! Demonstrates the CNTRO-like layer the paper discusses (§II.D): gap-
//! constrained sequences ("readmitted within 30 days"), qualitative Allen
//! steps ("a stay *during* a home-care period"), conjunctive queries over
//! the materialized triple view, and the summary statistics a researcher
//! exports.
//!
//! ```text
//! cargo run --release --example temporal_patterns [--patients N]
//! ```

use pastas_core::prelude::*;
use pastas_ontology::integration::IntegrationOntology;
use pastas_ontology::sparql::{solve, Pattern};
use pastas_ontology::store::{Term, TripleStore};
use pastas_ontology::temporal::AllenRel;
use pastas_ontology::vocab::{ns, Vocabulary};
use pastas_query::stats;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let patients = arg("--patients", 8_000) as usize;
    let collection = generate_collection(SynthConfig::with_patients(patients), 12);
    println!("Cohort: {} patients, {} entries\n", patients, collection.stats().entries);

    // --- 1. Gap-constrained sequence: early readmission ----------------
    let readmit = TemporalPattern::starting_with(EntryPredicate::IsInterval)
        .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);
    let readmissions: usize = collection.iter().filter(|h| readmit.matches(h)).count();
    println!("Pattern A — two care episodes within 30 days: {readmissions} patients");

    // --- 2. Allen-constrained step: a hospital stay DURING home care ---
    let frail_admission = TemporalPattern::starting_with(EntryPredicate::Source(
        SourceKind::Hospital,
    ))
    .then_related(
        AllenRel::Contains, // the next entry contains the stay
        EntryPredicate::Source(SourceKind::Municipal),
    );
    let frail: Vec<PatientId> = collection
        .iter()
        .filter(|h| frail_admission.matches(h))
        .map(|h| h.id())
        .collect();
    println!(
        "Pattern B — hospital stay during a municipal-care period: {} patients",
        frail.len()
    );

    // --- 3. The SPARQL view: who has both a dispensing and a stay? -----
    let onto = IntegrationOntology::new();
    let mut store = TripleStore::new();
    let mut vocab = Vocabulary::new();
    for h in collection.iter().take(2_000) {
        onto.assert_history(h, &mut store, &mut vocab);
    }
    let c = |name: &str| Pattern::Const(Term::Resource(vocab.get(name).expect(name)));
    let solutions = solve(
        &store,
        &[
            (Pattern::Var(0), c(ns::RDF_TYPE), c("pastas-int:InpatientStay")),
            (Pattern::Var(0), c("pastas-int:ofPatient"), Pattern::Var(2)),
            (Pattern::Var(1), c(ns::RDF_TYPE), c("pastas-int:Dispensing")),
            (Pattern::Var(1), c("pastas-int:ofPatient"), Pattern::Var(2)),
        ],
    );
    let mut distinct: Vec<_> = solutions.iter().map(|b| b[&2]).collect();
    distinct.sort();
    distinct.dedup();
    println!(
        "SPARQL view — patients with an inpatient stay AND a dispensing \
         (first 2,000 patients, {} triples): {}",
        store.len(),
        distinct.len()
    );

    // --- 4. Cohort statistics -------------------------------------------
    let cfg = SynthConfig::with_patients(patients);
    println!("\nMonthly utilization (all entries):");
    let series = stats::monthly_utilization(&collection, cfg.window_start, cfg.window_end(), None);
    for chunk in series.chunks(6) {
        let row: Vec<String> =
            chunk.iter().map(|(m, n)| format!("{:04}-{:02}: {n:>6}", m.year(), m.month())).collect();
        println!("  {}", row.join("  "));
    }

    println!("\nEntries per source:");
    for (source, n) in stats::source_profile(&collection) {
        println!("  {source:<14} {n:>8}");
    }

    println!("\nTop codes by patient count:");
    for (code, n) in stats::code_frequency(&collection).into_iter().take(8) {
        println!("  {code:<8} {n:>6}");
    }

    println!("\nAge pyramid (decades):");
    let pyramid = stats::age_pyramid(&collection, cfg.window_start, 10);
    let max = pyramid.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for (band, n) in pyramid {
        let bar = "#".repeat(n * 50 / max);
        println!("  {band:>3}–{:<3} {n:>6} {bar}", band + 9);
    }
}
